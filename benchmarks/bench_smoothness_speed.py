"""Fig. 4 and §VII-speed benchmarks."""

from repro.experiments import fig4_smoothness, speed


def test_fig4_dimension_diversity(once):
    result = once(fig4_smoothness.run)
    by = {r["Dataset"]: r for r in result.rows}
    # the paper's motivating case: CESM-T is far rougher along height
    assert by["CESM-T"]["Roughest axis"] == "height"
    assert by["CESM-T"]["Rough/smooth"] > 5
    # periodic monthly datasets are roughest along time (the periodic win)
    assert by["Tsfc"]["Roughest axis"] == "time"


def test_speed_ordering(once):
    result = once(speed.run, "CESM-T")
    by = {r["Codec"]: r for r in result.rows}
    # paper §VII: CliZ comparable to SZ3, substantially faster than SPERR
    assert by["CliZ"]["Compress MB/s"] > 0.5 * by["SZ3"]["Compress MB/s"]
    assert by["CliZ"]["Compress MB/s"] > 3 * by["SPERR"]["Compress MB/s"]
    assert by["CliZ"]["Decompress MB/s"] > 3 * by["SPERR"]["Decompress MB/s"]
