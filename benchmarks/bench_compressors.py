"""Per-codec compression/decompression throughput on a fixed workload.

Not a paper table, but the §VII-C claim "CliZ has comparable compression
and decompression speeds [to SZ3]... substantially faster than SPERR" is a
throughput statement; this measures it on the reproduction.
"""

import numpy as np
import pytest

from repro import CliZ, QoZ, SPERR, SZ3, ZFP
from repro.datasets import load
from repro.experiments.common import rel_eb_to_abs

FIELD = load("CESM-T", shape=(13, 60, 120))
EB = rel_eb_to_abs(FIELD, 1e-3)
CODECS = {"cliz": CliZ, "sz3": SZ3, "qoz": QoZ, "zfp": ZFP, "sperr": SPERR}


@pytest.mark.parametrize("name", list(CODECS))
def test_compress_throughput(benchmark, name):
    comp = CODECS[name]()
    blob = benchmark.pedantic(
        comp.compress, args=(FIELD.data,), kwargs={"abs_eb": EB},
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert len(blob) < FIELD.data.nbytes


@pytest.mark.parametrize("name", list(CODECS))
def test_decompress_throughput(benchmark, name):
    comp = CODECS[name]()
    blob = comp.compress(FIELD.data, abs_eb=EB)
    dec = benchmark.pedantic(comp.decompress, args=(blob,),
                             rounds=2, iterations=1, warmup_rounds=0)
    assert dec.shape == FIELD.data.shape


def test_encoding_throughput(benchmark):
    """Huffman+LZ on a realistic skewed code stream (1M symbols)."""
    from repro.core.codec import encode_code_stream
    rng = np.random.default_rng(0)
    codes = np.where(rng.random(1_000_000) < 0.85, 32768,
                     32768 + rng.integers(-40, 41, 1_000_000))
    blob = benchmark.pedantic(encode_code_stream, args=(codes,),
                              rounds=2, iterations=1, warmup_rounds=0)
    assert len(blob) < codes.size
