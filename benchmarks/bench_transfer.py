"""Fig. 13 benchmark: matched-PSNR compression + WAN transfer simulation."""

from repro.experiments import fig13_transfer


def test_fig13_transfer(once):
    result = once(fig13_transfer.run, "SSH", 90.0, (256, 1024))
    rows = {(r["Codec"], r["Cores"]): r for r in result.rows}
    # compression times similar for CliZ/SZ3, ZFP slightly slower (paper)
    c, s, z = (rows[(k, 1024)]["Compress s"] for k in ("CLIZ", "SZ3", "ZFP"))
    assert abs(c - s) / s < 0.05
    assert z > c
    # CliZ's smaller files win the end-to-end race at every core count
    for cores in (256, 1024):
        assert rows[("CLIZ", cores)]["Total s"] < rows[("SZ3", cores)]["Total s"]
        assert rows[("CLIZ", cores)]["Total s"] < rows[("ZFP", cores)]["Total s"]
    # the paper's headline: tens of percent total-time reduction
    note_text = " ".join(result.notes)
    assert "reduction" in note_text
