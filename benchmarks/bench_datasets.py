"""Table III / Fig. 3 benchmarks: dataset generation and mask maps."""

from repro.datasets import load
from repro.experiments import fig3_maskmap, table3_datasets


def test_table3_inventory(once):
    result = once(table3_datasets.run)
    assert len(result.rows) == 6
    by_name = {r["Name"]: r for r in result.rows}
    assert by_name["SOILLIQ"]["Valid frac"] < 0.4  # ~70% of Earth is water
    assert by_name["SSH"]["Period"] == "Yes"
    assert by_name["Hurricane-T"]["Mask"] == "No"


def test_fig3_mask_categories(once):
    result = once(fig3_maskmap.run, "SSH")
    by = {r["Category"].split()[0]: r for r in result.rows}
    # all three of the paper's mask-map categories are present
    assert by["0"]["Points"] > 0
    assert by["positive"]["Regions"] >= 1 and by["positive"]["Points"] > 0
    assert by["negative"]["Regions"] >= 1


def test_generation_speed(benchmark):
    field = benchmark(load, "SSH")
    assert field.data.size > 100_000
