"""Benchmark configuration.

Heavy experiment harnesses run once per benchmark (pedantic mode); the
tuned-config cache in ``repro.experiments.common`` is shared across
benchmarks in a session so auto-tuning cost is paid once per (dataset, eb).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
