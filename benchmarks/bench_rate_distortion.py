"""Fig. 10 / Fig. 14 benchmarks: rate-distortion and matched-CR quality.

Regenerates the paper's central comparison on a reduced sweep (full sweeps
are produced by ``python -m repro.experiments.fig10_rate_distortion``) and
asserts the qualitative shape: CliZ leads the second-best compressor on the
mask/periodicity datasets, and at matched CR its SSIM is at least on par.
"""

import pytest

from repro.experiments import fig10_rate_distortion, fig14_visual_quality

REL_EBS = (1e-2, 1e-3, 1e-4)


@pytest.mark.parametrize("dataset", ["SSH", "CESM-T"])
def test_fig10_curves(once, dataset):
    curves = once(fig10_rate_distortion.collect_curves, dataset, REL_EBS)
    assert set(curves) == {"CliZ", "SZ3", "QoZ", "ZFP", "SPERR"}
    for curve in curves.values():
        pts = curve.sorted_by_rate()
        assert len(pts) == len(REL_EBS)
        # tighter bounds cost more bits and deliver more PSNR
        assert pts[0].psnr <= pts[-1].psnr + 1e-6
    cliz = curves["CliZ"]
    mid = sorted(p.psnr for p in cliz.points)[1]
    cliz_cr = cliz.ratio_at_psnr(mid)
    if dataset == "SSH":
        # headline shape: CliZ beats everyone at the matched middle PSNR
        second = max(c.ratio_at_psnr(mid) for n, c in curves.items() if n != "CliZ")
        assert cliz_cr > second, f"CliZ {cliz_cr} vs second-best {second} on {dataset}"
    else:
        # CESM-T has no mask/periodicity; CliZ's edge is the layout search.
        # It must beat the prediction-based second best; on our synthetic
        # field SPERR is unusually wavelet-friendly (see EXPERIMENTS.md) so
        # we only require CliZ to stay within 25% of the overall best.
        pred_second = max(curves[n].ratio_at_psnr(mid) for n in ("SZ3", "QoZ"))
        assert cliz_cr > pred_second
        overall = max(c.ratio_at_psnr(mid) for n, c in curves.items() if n != "CliZ")
        assert cliz_cr > 0.75 * overall


def test_fig14_matched_cr_quality(once):
    result = once(fig14_visual_quality.run, "SSH", 25.0)
    rows = {r["Compressor"]: r for r in result.rows}
    # CliZ reaches the target ratio; mask-unaware baselines may saturate
    # below it (fill-region floor), which only flatters them here
    assert rows["CliZ"]["CR"] == pytest.approx(25.0, rel=0.5)
    for name, row in rows.items():
        assert row["CR"] <= 25.0 * 1.5, name
    assert rows["CliZ"]["SSIM"] >= max(rows["SZ3"]["SSIM"], rows["QoZ"]["SSIM"]) - 1e-6
