"""Extension benchmarks: strategy interactions and the entropy stage."""

from repro.experiments import interactions
from repro.experiments.ablations import entropy_stage_ablation


def test_interaction_matrix(once):
    result = once(interactions.run, "SSH")
    assert len(result.rows) == 8
    crs = {(r["Mask"], r["Periodicity"], r["Layout"] != "012"): r["CR"] for r in result.rows}
    # every strategy on beats every strategy off
    assert crs[("Yes", "Yes", True)] > crs[("No", "No", False)] * 3
    # the mask matters more when periodicity is off (D5's overlap)
    mask_alone = crs[("Yes", "No", False)] / crs[("No", "No", False)]
    mask_given_periodic = crs[("Yes", "Yes", False)] / crs[("No", "Yes", False)]
    assert mask_alone > mask_given_periodic


def test_entropy_stage(once):
    result = once(entropy_stage_ablation, "SSH")
    by = {r["Stage"]: r["Bytes"] for r in result.rows}
    # LZ never hurts Huffman; the range coder is at worst ~Huffman-sized
    assert by["Huffman + LZ"] <= by["Huffman"]
    assert by["Range coder"] <= by["Huffman"] * 1.02
