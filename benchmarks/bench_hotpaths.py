"""Hot-path micro-benchmarks: Huffman encode/decode, BitWriter, LZ.

Measures throughput of the vectorized kernels against their scalar
reference paths and writes the results to ``BENCH_hotpaths.json``. Run
from the repository root::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py [--smoke] [--out FILE]

``--smoke`` shrinks the streams so the script doubles as a CI health
check (a few seconds); the full run sizes match the acceptance criterion
for the vectorized Huffman decoder: a 200k-symbol stream over a 64-entry
alphabet with an SZ3-like skewed code distribution must decode >= 5x
faster than the scalar loop.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.encoding.bitstream import BitWriter  # noqa: E402
from repro.encoding.huffman import HuffmanCode  # noqa: E402
from repro.encoding.lz import lz_compress, lz_decompress  # noqa: E402


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _streams(n: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    return {
        # The acceptance stream: 64-entry alphabet, 90% zeros — the shape of
        # SZ3/CliZ quantization codes on a well-predicted field.
        "skewed64": np.where(rng.random(n) < 0.9, 0, rng.integers(1, 64, n)),
        "uniform256": rng.integers(0, 256, n),
        "gauss_codes": np.abs(np.round(rng.standard_normal(n) * 3)).astype(np.int64),
    }


def bench_huffman(n: int, reps: int) -> list[dict]:
    rows = []
    for name, symbols in _streams(n).items():
        symbols = np.asarray(symbols, dtype=np.int64)
        code = HuffmanCode.from_symbols(symbols)
        writer = BitWriter()
        code.encode(symbols, writer)
        data = writer.getvalue()
        nbytes = symbols.size * 8  # int64 payload

        def encode():
            w = BitWriter()
            code.encode(symbols, w)
            w.getvalue()

        t_enc = _best(encode, reps)
        t_dec_vec = _best(lambda: code.decode_vectorized(data, symbols.size), reps)
        t_dec_scalar = _best(lambda: code.decode_scalar(data, symbols.size), max(1, reps // 2))

        dec_v, _ = code.decode_vectorized(data, symbols.size)
        dec_s, _ = code.decode_scalar(data, symbols.size)
        assert np.array_equal(dec_v, symbols) and np.array_equal(dec_s, symbols)

        rows.append({
            "kernel": "huffman",
            "stream": name,
            "n_symbols": int(symbols.size),
            "alphabet": int(symbols.max()) + 1,
            "encode_ms": round(t_enc * 1e3, 3),
            "encode_mb_s": round(nbytes / t_enc / 1e6, 1),
            "decode_vec_ms": round(t_dec_vec * 1e3, 3),
            "decode_vec_mb_s": round(nbytes / t_dec_vec / 1e6, 1),
            "decode_scalar_ms": round(t_dec_scalar * 1e3, 3),
            "decode_scalar_mb_s": round(nbytes / t_dec_scalar / 1e6, 1),
            "decode_speedup": round(t_dec_scalar / t_dec_vec, 2),
        })
    return rows


def bench_bitwriter(n: int, reps: int) -> list[dict]:
    rng = np.random.default_rng(1)
    lengths = np.where(rng.random(n) < 0.9, 1, rng.integers(2, 17, n)).astype(np.uint8)
    codes = rng.integers(0, 1 << 16, n).astype(np.uint64)
    codes &= (np.uint64(1) << lengths.astype(np.uint64)) - np.uint64(1)

    def run():
        w = BitWriter()
        w.write_varwidth(codes, lengths)
        w.getvalue()

    t = _best(run, reps)
    total_bits = int(lengths.sum(dtype=np.int64))
    return [{
        "kernel": "bitwriter.write_varwidth",
        "stream": "skewed-lengths",
        "n_codes": int(n),
        "ms": round(t * 1e3, 3),
        "mbits_s": round(total_bits / t / 1e6, 1),
    }]


def bench_lz(n: int, reps: int) -> list[dict]:
    rng = np.random.default_rng(2)
    syms = np.where(rng.random(n) < 0.9, 0, rng.integers(1, 64, n))
    code = HuffmanCode.from_symbols(syms)
    w = BitWriter()
    code.encode(syms, w)
    cases = {
        "huffman_output": w.getvalue(),
        "zero_runs": bytes(min(n, 4 * n // 4)),
        "text": b"the quick brown fox jumps over the lazy dog " * max(1, n // 45),
    }
    rows = []
    for name, payload in cases.items():
        blob = lz_compress(payload)
        assert lz_decompress(blob) == payload
        t_c = _best(lambda: lz_compress(payload), reps)
        t_d = _best(lambda: lz_decompress(blob), reps)
        rows.append({
            "kernel": "lz",
            "stream": name,
            "in_bytes": len(payload),
            "out_bytes": len(blob),
            "ratio": round(len(payload) / len(blob), 2),
            "compress_ms": round(t_c * 1e3, 3),
            "compress_mb_s": round(len(payload) / t_c / 1e6, 1),
            "decompress_ms": round(t_d * 1e3, 3),
            "decompress_mb_s": round(len(payload) / t_d / 1e6, 1),
        })
    return rows


def write_metrics_jsonl(results: dict, path) -> int:
    """Flatten benchmark rows into the shared metrics-JSONL schema.

    Each measured quantity becomes one gauge named
    ``bench.<kernel>.<stream>.<field>``, so ``BENCH_*.json`` trajectories
    and live pipeline telemetry can be ingested by the same tooling
    (``repro.obs.sinks.load_jsonl`` + ``validate_metrics_line``).
    """
    from repro.obs import MetricsRegistry, JsonlSink

    registry = MetricsRegistry()
    for kernel_rows in (results["huffman"], results["bitwriter"], results["lz"]):
        for row in kernel_rows:
            base = f"bench.{row['kernel']}.{row['stream']}"
            for key, value in row.items():
                if key in ("kernel", "stream") or not isinstance(value, (int, float)):
                    continue
                registry.gauge(f"{base}.{key}").set(value)
    return JsonlSink(path).write(registry.records())


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny streams + 1 rep: a fast CI health check")
    ap.add_argument("--out", default=None,
                    help="output JSON path (default: BENCH_hotpaths.json next "
                         "to this script's repository root)")
    ap.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="also write the measurements as metrics JSONL "
                         "(same schema as the pipelines' --metrics-out)")
    args = ap.parse_args(argv)

    n = 20_000 if args.smoke else 200_000
    reps = 1 if args.smoke else 5

    results = {
        "config": {"n_symbols": n, "reps": reps, "smoke": bool(args.smoke)},
        "huffman": bench_huffman(n, reps),
        "bitwriter": bench_bitwriter(n, reps),
        "lz": bench_lz(n, reps),
    }

    for row in results["huffman"]:
        print(f"huffman/{row['stream']:12s} encode {row['encode_mb_s']:8.1f} MB/s  "
              f"decode(vec) {row['decode_vec_mb_s']:8.1f} MB/s  "
              f"decode(scalar) {row['decode_scalar_mb_s']:8.1f} MB/s  "
              f"speedup {row['decode_speedup']:5.2f}x")
    for row in results["bitwriter"]:
        print(f"{row['kernel']}: {row['mbits_s']} Mbit/s")
    for row in results["lz"]:
        print(f"lz/{row['stream']:16s} ratio {row['ratio']:6.2f}  "
              f"compress {row['compress_mb_s']:7.1f} MB/s  "
              f"decompress {row['decompress_mb_s']:7.1f} MB/s")

    out_path = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json")
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.metrics_out:
        n = write_metrics_jsonl(results, args.metrics_out)
        print(f"wrote {n} metric lines -> {args.metrics_out}")

    if not args.smoke:
        skewed = next(r for r in results["huffman"] if r["stream"] == "skewed64")
        if skewed["decode_speedup"] < 5.0:
            print(f"WARNING: skewed64 decode speedup {skewed['decode_speedup']}x "
                  "is below the 5x acceptance target", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
