"""Fig. 5 benchmark + bin-classification design ablations (λ, j/k)."""

from repro.experiments import fig5_quantbins
from repro.experiments.ablations import group_count_sweep, lambda_sweep


def test_fig5_bins_follow_topography(once):
    result = once(fig5_quantbins.run, "CESM-T")
    cross_height = [r["Bin-map correlation"] for r in result.rows
                    if "terrain" not in r["Pair"]]
    # bin maps at different heights correlate (paper's Fig. 5 observation)
    assert all(c > 0 for c in cross_height)
    assert max(cross_height) > 0.3


def test_lambda_sweep(once):
    result = once(lambda_sweep, "CESM-T")
    crs = {r["λ"]: r["CR"] for r in result.rows}
    # λ=0.4 (Theorem 2) must be within 5% of the best sweep value
    assert crs[0.4] > 0.95 * max(crs.values())


def test_group_count_sweep(once):
    result = once(group_count_sweep, "CESM-T")
    crs = {(r["j"], r["k"]): r["CR"] for r in result.rows}
    # paper §VI-E: going beyond j=k=1 buys nothing significant
    assert crs[(2, 2)] < 1.05 * crs[(1, 1)]
    assert crs[(2, 1)] < 1.05 * crs[(1, 1)]
