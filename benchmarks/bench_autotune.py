"""Fig. 11 / Fig. 12 / Table IV benchmarks: auto-tuning behaviour."""

import pytest

from repro.experiments import fig11_sampling_time, fig12_sampling_cr, table4_sampling_pipeline


def test_fig11_sampling_time(once):
    result = once(fig11_sampling_time.run, ("SSH", "CESM-T"), (0.01, 0.1))
    rows = {(r["Dataset"], r["Sampling rate"]): r for r in result.rows}
    # SSH is periodic: 192 pipelines; CESM-T: 96 (paper §VII-C2)
    assert rows[("SSH", 0.01)]["Pipelines"] == 192
    assert rows[("CESM-T", 0.01)]["Pipelines"] == 96
    # higher rate costs more time
    assert rows[("CESM-T", 0.1)]["Tuning time s"] > rows[("CESM-T", 0.01)]["Tuning time s"]


def test_fig12_ordering_preserved(once):
    result = once(fig12_sampling_cr.run, "SSH", (0.1, 0.01), 1e-3, 4)
    for row in result.rows:
        assert row["Spearman rho vs true"] > 0.5
        assert row["Loss %"] < 30


def test_table4_loss_grows_as_rate_shrinks(once):
    result = once(table4_sampling_pipeline.run, "SSH", (1.0, 0.01, 0.001))
    losses = [r["Loss %"] for r in result.rows]
    assert losses[0] == pytest.approx(0.0)
    assert all(l < 35 for l in losses)
    # the tuner keeps finding the period regardless of rate (paper Table IV)
    assert all(r["Periodicity"] == 12 for r in result.rows)
