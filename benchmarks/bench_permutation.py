"""Fig. 6 / Fig. 7 benchmarks: mask-aware fitting and layout diversity."""

from repro.experiments import fig6_maskfit, fig7_permutation


def test_fig6_maskfit_accuracy(once):
    result = once(fig6_maskfit.run, "Tsfc")
    t1, zero_fill, use_fill = (r["Mean |err|"] for r in result.rows)
    assert t1 < zero_fill < use_fill


def test_fig7_layout_spread(once):
    result = once(fig7_permutation.run, "CESM-T")
    rates = [r["Bit rate"] for r in result.rows]
    assert len(rates) == 24  # 6 sequences x 4 fusions (paper Fig. 7)
    assert rates == sorted(rates)
    # the layout choice must matter (paper shows tall and short frustums)
    assert rates[-1] / rates[0] > 1.1
