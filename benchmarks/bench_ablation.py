"""Table V / Table VI benchmarks: strategy ablations."""

from repro.experiments import table5_ablation_ssh, table6_ablation_hurricane


def test_table5_ssh_ablation(once):
    result = once(table5_ablation_ssh.run, "SSH")
    rows = {r["Condition"]: r for r in result.rows}
    # periodicity is the dominant strategy on SSH (paper: +34%; ours larger)
    assert rows["no periodicity"]["CR Improvement %"] > 20
    # mask-aware prediction helps
    assert rows["no mask"]["CR Improvement %"] > 0
    # permutation/fusion helps
    assert rows["no permutation/fusion"]["CR Improvement %"] > 0
    # classification is small either way (paper: +4.4% on SSH, -0.3% on
    # Hurricane; our synthetic fields put it within a few percent of zero)
    assert abs(rows["no classification"]["CR Improvement %"]) < 10


def test_table6_hurricane_ablation(once):
    result = once(table6_ablation_hurricane.run, "Hurricane-T")
    rows = {r["Condition"]: r for r in result.rows}
    # random layout must be worse than the tuned one
    assert rows["random permutation/fusion"]["CR Improvement %"] > 0
    # classification is within noise on Hurricane-T (paper: -0.34%)
    assert abs(rows["no classification"]["CR Improvement %"]) < 10
