"""End-to-end codec benchmark: MB/s per codec per synthetic dataset.

Where ``bench_hotpaths.py`` measures isolated kernels (Huffman, BitWriter,
LZ), this script measures the *full* compress/decompress pipeline of each
registered codec on the paper's synthetic climate datasets, including a
per-stage breakdown from the obs profiler. Results are committed to
``BENCH_codec.json``; CI re-runs the smoke variant and fails on >20%
regression against the committed baseline. Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_codec.py [--smoke] [--out FILE]
        [--baseline FILE] [--tolerance 0.2]
        [--append-trajectory LABEL] [--set-smoke-baseline]

Workflow (see ``docs/BENCHMARKS.md``):

* refresh the committed baseline after an intentional perf change::

      PYTHONPATH=src python benchmarks/bench_codec.py \
          --append-trajectory "PR N: what changed"
      PYTHONPATH=src python benchmarks/bench_codec.py --smoke --set-smoke-baseline

* gate a change locally the way CI does::

      PYTHONPATH=src python benchmarks/bench_codec.py --smoke \
          --out /tmp/bench_codec_smoke.json --baseline BENCH_codec.json

The regression gate normalizes for machine speed: every (codec, dataset,
direction) row is compared as a current/baseline ratio, the median ratio
is taken as the machine-speed factor, and only rows slower than
``(1 - tolerance) * median`` fail. A uniformly slower CI runner therefore
passes; a single codec path that regressed does not.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import compressor_for, decompress  # noqa: E402
from repro.datasets.registry import load  # noqa: E402
from repro.utils.profiling import (  # noqa: E402
    disable_profiling,
    enable_profiling,
    get_profile,
)

REL_EB = 1e-3
DEFAULT_CODECS = ("cliz", "sz3", "zfp", "bitgroom")

# (registry name, full-run generator kwargs, smoke generator kwargs).
# Shapes are scaled-down stand-ins for the paper's Table III dims, sized so
# a full run finishes in ~1 minute on a laptop and smoke in a few seconds.
DATASET_SPECS = [
    ("SSH", {"shape": (48, 40, 252)}, {"shape": (16, 16, 48)}),
    ("CESM-T", {"shape": (26, 120, 240)}, {"shape": (13, 45, 90)}),
    ("Hurricane-T", {"shape": (50, 140, 140)}, {"shape": (13, 50, 50)}),
]


def _best(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _stage_breakdown(fn) -> dict[str, float]:
    """Run ``fn`` once under the obs profiler; return ms per stage path."""
    enable_profiling()
    try:
        fn()
        records = get_profile()
    finally:
        disable_profiling()
    return {rec.path: round(rec.seconds * 1e3, 2) for rec in records}


def bench_one(codec: str, ds_name: str, field, reps: int) -> dict:
    comp = compressor_for(codec)
    kwargs: dict = {"rel_eb": REL_EB}
    if field.mask is not None:
        kwargs["mask"] = field.mask
    data = field.data
    nbytes = data.nbytes

    blob = comp.compress(data, **kwargs)  # warm-up + ratio + roundtrip check
    out = decompress(blob)
    assert out.shape == data.shape, f"{codec}/{ds_name}: bad roundtrip shape"

    t_c = _best(lambda: comp.compress(data, **kwargs), reps)
    t_d = _best(lambda: decompress(blob), reps)
    return {
        "codec": codec,
        "dataset": ds_name,
        "shape": list(data.shape),
        "nbytes": int(nbytes),
        "ratio": round(nbytes / len(blob), 2),
        "compress_ms": round(t_c * 1e3, 1),
        "compress_mb_s": round(nbytes / t_c / 1e6, 2),
        "decompress_ms": round(t_d * 1e3, 1),
        "decompress_mb_s": round(nbytes / t_d / 1e6, 2),
        "stages": {
            "compress": _stage_breakdown(lambda: comp.compress(data, **kwargs)),
            "decompress": _stage_breakdown(lambda: decompress(blob)),
        },
    }


def run_bench(codecs: list[str], smoke: bool, reps: int) -> list[dict]:
    rows = []
    for ds_name, full_kwargs, smoke_kwargs in DATASET_SPECS:
        field = load(ds_name, **(smoke_kwargs if smoke else full_kwargs))
        for codec in codecs:
            row = bench_one(codec, ds_name, field, reps)
            print(f"{codec:10s} {ds_name:12s} ratio {row['ratio']:6.2f}  "
                  f"compress {row['compress_mb_s']:7.2f} MB/s  "
                  f"decompress {row['decompress_mb_s']:7.2f} MB/s")
            rows.append(row)
    return rows


# ---------------------------------------------------------------------- #
# Regression gate.

def _row_key(row: dict) -> tuple[str, str]:
    return (row["codec"], row["dataset"])


def check_regression(current: list[dict], baseline: list[dict],
                     tolerance: float) -> list[str]:
    """Compare throughput rows; return a list of failure messages.

    Ratios (current/baseline) are normalized by their median so a
    uniformly faster/slower machine does not trip the gate; any single
    row slower than ``(1 - tolerance) * median`` is a regression. The
    verdict itself lives in
    :func:`repro.obs.report.normalized_regressions` — the same code
    ``repro obs diff`` runs, so the offline CLI reproduces this gate.
    """
    from repro.obs.report import normalized_regressions

    base_by_key = {_row_key(r): r for r in baseline}
    ratios: list[tuple[str, float]] = []
    for row in current:
        base = base_by_key.get(_row_key(row))
        if base is None:
            continue
        for metric in ("compress_mb_s", "decompress_mb_s"):
            if base.get(metric) and row.get(metric):
                label = f"{row['codec']}/{row['dataset']}/{metric}"
                ratios.append((label, row[metric] / base[metric]))
    return normalized_regressions(ratios, tolerance)


def _baseline_rows(doc: dict, smoke: bool) -> list[dict]:
    """Pick the comparable section of a committed baseline document."""
    if smoke and isinstance(doc.get("smoke_baseline"), dict):
        return doc["smoke_baseline"].get("results", [])
    return doc.get("results", [])


def write_metrics_jsonl(rows: list[dict], path) -> int:
    """Flatten rows into the shared metrics-JSONL gauge schema."""
    from repro.obs import JsonlSink, MetricsRegistry

    registry = MetricsRegistry()
    for row in rows:
        base = f"bench.codec.{row['codec']}.{row['dataset']}"
        for key in ("ratio", "compress_ms", "compress_mb_s",
                    "decompress_ms", "decompress_mb_s"):
            registry.gauge(f"{base}.{key}").set(row[key])
    return JsonlSink(path).write(registry.records())


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny datasets: a fast CI health check")
    ap.add_argument("--codecs", default=",".join(DEFAULT_CODECS),
                    help=f"comma-separated codec list (default: {','.join(DEFAULT_CODECS)})")
    ap.add_argument("--reps", type=int, default=None,
                    help="timing repetitions, best-of (default: 3)")
    ap.add_argument("--out", default=None,
                    help="output JSON path (default: BENCH_codec.json at the "
                         "repository root)")
    ap.add_argument("--baseline", default=None, metavar="FILE",
                    help="gate against this committed baseline JSON; exits "
                         "non-zero on regression beyond --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed per-row slowdown vs the machine-normalized "
                         "baseline (default 0.20)")
    ap.add_argument("--append-trajectory", default=None, metavar="LABEL",
                    help="merge into an existing --out file: append this "
                         "labeled result set to its 'trajectory' list")
    ap.add_argument("--set-smoke-baseline", action="store_true",
                    help="store this run under 'smoke_baseline' in the --out "
                         "file (for the CI gate); implies --smoke")
    ap.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="also write the rows as metrics JSONL")
    args = ap.parse_args(argv)

    smoke = bool(args.smoke or args.set_smoke_baseline)
    reps = args.reps if args.reps is not None else 3
    codecs = [c.strip() for c in args.codecs.split(",") if c.strip()]
    config = {"codecs": codecs, "rel_eb": REL_EB, "reps": reps, "smoke": smoke}

    rows = run_bench(codecs, smoke, reps)

    out_path = Path(args.out) if args.out else (
        Path(__file__).resolve().parent.parent / "BENCH_codec.json")
    doc: dict = {}
    if out_path.exists() and (args.append_trajectory or args.set_smoke_baseline):
        doc = json.loads(out_path.read_text())
    if args.set_smoke_baseline:
        doc["smoke_baseline"] = {"config": config, "results": rows}
    else:
        doc["config"] = config
        doc["results"] = rows
        if args.append_trajectory:
            doc.setdefault("trajectory", []).append(
                {"label": args.append_trajectory, "config": config, "results": rows})
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.metrics_out:
        n = write_metrics_jsonl(rows, args.metrics_out)
        print(f"wrote {n} metric lines -> {args.metrics_out}")

    if args.baseline:
        baseline_doc = json.loads(Path(args.baseline).read_text())
        failures = check_regression(rows, _baseline_rows(baseline_doc, smoke),
                                    args.tolerance)
        if failures:
            for msg in failures:
                print(f"REGRESSION: {msg}", file=sys.stderr)
            return 1
        print(f"regression gate passed against {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
