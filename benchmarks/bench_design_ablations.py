"""Remaining design-choice ablations: eb split, LZ stage, fitting."""

from repro import CliZ
from repro.core import PipelineConfig
from repro.datasets import load
from repro.experiments.ablations import lz_stage_ablation, template_ratio_sweep
from repro.experiments.common import rel_eb_to_abs


def test_template_eb_ratio(once):
    result = once(template_ratio_sweep, "SSH")
    crs = {r["template share"]: r["CR"] for r in result.rows}
    # the 0.1 default must be within 10% of the best split tried
    assert crs[0.1] > 0.9 * max(crs.values())


def test_lz_stage_pays_for_itself(once):
    result = once(lz_stage_ablation, "SSH")
    rows = {r["Stage"]: r["Bytes"] for r in result.rows}
    assert rows["Huffman + LZ"] <= rows["Huffman only"]


def test_fitting_choice_matters(once):
    """Linear vs cubic is a real trade-off the tuner must arbitrate."""
    field = load("CESM-T", shape=(13, 60, 120))
    eb = rel_eb_to_abs(field, 1e-3)

    def both():
        out = {}
        for fitting in ("linear", "cubic"):
            cfg = PipelineConfig.default(3).with_(fitting=fitting)
            out[fitting] = len(CliZ(cfg).compress(field.data, abs_eb=eb))
        return out

    sizes = once(both)
    assert sizes["linear"] != sizes["cubic"]
