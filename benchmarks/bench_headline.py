"""Headline benchmark: CliZ vs second best across all six datasets."""

from repro.experiments import headline


def test_headline_advantage(once):
    result = once(headline.run, ("SSH", "SOILLIQ", "Tsfc", "Hurricane-T"))
    rows = {r["Dataset"]: r for r in result.rows}
    # big wins where the paper reports them: masked + periodic datasets
    assert rows["SSH"]["Advantage %"] > 100
    assert rows["SOILLIQ"]["Advantage %"] > 100
    assert rows["Tsfc"]["Advantage %"] > 20
    # Hurricane-T offers CliZ no extra structure (paper Table VI): parity
    assert rows["Hurricane-T"]["Advantage %"] > -10
    for row in rows.values():
        assert row["CliZ PSNR"] > 50  # same error-bound family as baselines
