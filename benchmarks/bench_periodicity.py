"""Fig. 8 / Fig. 9 benchmarks: period detection and residual smoothness."""

from repro.experiments import fig8_period_fft, fig9_residual


def test_fig8_spectra_peak_at_fundamental(once):
    result = once(fig8_period_fft.run, "SSH", 10)
    n_time = 252
    expected_f = n_time // 12
    for row in result.rows:
        assert row["Peak f"] == expected_f
        assert row["Peak amp"] > 20 * row["Median amp"]
    assert "detected period = 12" in result.notes[0]


def test_fig9_residual_smoother(once):
    result = once(fig9_residual.run, "SSH")
    orig, resid = result.rows
    for key in orig:
        if key == "Data":
            continue
        assert resid[key] < orig[key] / 5, key
