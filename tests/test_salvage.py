"""Corruption-tolerant decode: container v2 CRCs, salvage mode, v1 compat."""

import pathlib
import zlib

import numpy as np
import pytest

from repro import decompress
from repro.encoding.container import (
    Container,
    CorruptStreamError,
    SalvageReport,
    VERSION,
)
from repro.io.rcdf import RcdfDataset, read_rcdf
from repro.parallel import compress_chunked, decompress_chunked

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def field(shape=(24, 16, 12), seed=1234):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return (sum(np.sin(g) for g in grids)
            + 0.01 * rng.standard_normal(shape)).astype(np.float64)


def corrupt_section(blob: bytes, name: str) -> bytes:
    """Flip bytes inside section ``name``'s payload in the serialized blob."""
    payload = Container.from_bytes(blob).section(name)
    idx = blob.index(payload)
    buf = bytearray(blob)
    for off in (1, len(payload) // 2, len(payload) - 2):
        buf[idx + off] ^= 0xFF
    return bytes(buf)


class TestContainerV2:
    def test_writes_version_2_with_section_crcs(self):
        c = Container("demo", {"k": 1})
        c.add_section("a", b"payload-a")
        blob = c.to_bytes()
        assert blob[4] == VERSION == 2
        # per-section CRC sits right after the payload
        idx = blob.index(b"payload-a")
        stored = int.from_bytes(blob[idx + 9 : idx + 13], "little")
        assert stored == zlib.crc32(b"payload-a")

    def test_roundtrip(self):
        c = Container("demo", {"k": 1})
        c.add_section("a", b"aaaa")
        c.add_section("b", b"")
        out = Container.from_bytes(c.to_bytes())
        assert out.version == 2 and not out.salvaged
        assert out.section("a") == b"aaaa" and out.section("b") == b""

    def test_strict_rejects_payload_corruption(self):
        c = Container("demo")
        c.add_section("a", b"x" * 64)
        blob = bytearray(c.to_bytes())
        blob[blob.index(b"x" * 64) + 5] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            Container.from_bytes(bytes(blob))

    def test_salvage_isolates_corrupt_section(self):
        c = Container("demo")
        c.add_section("good", b"g" * 32)
        c.add_section("bad", b"b" * 32)
        blob = corrupt_section(c.to_bytes(), "bad")
        out = Container.from_bytes(blob, salvage=True)
        assert out.salvaged
        assert out.section("good") == b"g" * 32
        assert "bad" in out.corrupt_sections
        with pytest.raises(CorruptStreamError):
            out.section("bad")

    def test_salvage_truncated_tail(self):
        c = Container("demo")
        c.add_section("first", b"f" * 32)
        c.add_section("second", b"s" * 32)
        blob = c.to_bytes()[: -40]  # cut into the second section
        with pytest.raises((CorruptStreamError, EOFError)):
            Container.from_bytes(blob)
        out = Container.from_bytes(blob, salvage=True)
        assert out.section("first") == b"f" * 32
        assert not out.has_section("second")
        assert "<tail>" in out.corrupt_sections

    def test_duplicate_section_strict_raises_salvage_keeps_first(self):
        c = Container("demo")
        c.add_section("a", b"one")
        c.add_section("b", b"two")
        blob = bytearray(c.to_bytes())
        i = bytes(blob).index(b"\x01b\x03two")
        blob[i + 1] = ord("a")  # rename section 'b' -> 'a' (a duplicate)
        body = bytes(blob[:-4])
        blob = body + zlib.crc32(body).to_bytes(4, "little")
        with pytest.raises(CorruptStreamError, match="duplicate"):
            Container.from_bytes(blob)
        out = Container.from_bytes(blob, salvage=True)
        assert out.section("a") == b"one"

    def test_header_must_parse_even_in_salvage(self):
        c = Container("demo", {"k": 1})
        blob = bytearray(c.to_bytes())
        idx = bytes(blob).index(b'{"k":1}')
        blob[idx] = 0xFF
        with pytest.raises(CorruptStreamError):
            Container.from_bytes(bytes(blob), salvage=True)

    def test_bad_magic_and_version(self):
        c = Container("demo")
        blob = bytearray(c.to_bytes())
        with pytest.raises(CorruptStreamError):
            Container.from_bytes(b"XXXX" + bytes(blob[4:]))
        blob[4] = 99
        with pytest.raises(CorruptStreamError, match="version"):
            Container.from_bytes(bytes(blob), salvage=True)


class TestV1Compat:
    """Blobs written before per-section CRCs must keep decoding (version 1)."""

    def test_chunked_v1_fixture_decodes(self):
        blob = (FIXTURES / "chunked_v1.rz").read_bytes()
        assert blob[4] == 1
        expected = np.load(FIXTURES / "chunked_v1_expected.npy")
        assert np.array_equal(decompress(blob), expected)

    def test_chunked_v1_fixture_salvage_mode(self):
        blob = (FIXTURES / "chunked_v1.rz").read_bytes()
        out, report = decompress_chunked(blob, salvage=True)
        assert report.ok and report.total == 4
        assert np.array_equal(out, np.load(FIXTURES / "chunked_v1_expected.npy"))

    def test_rcdf_v1_fixture_reads(self):
        ds = read_rcdf(FIXTURES / "rcdf_v1.rcdf")
        expected = np.load(FIXTURES / "rcdf_v1_temp_expected.npy")
        assert np.array_equal(ds.get("temp").data, expected)
        assert ds.get("ids").data.dtype == np.int32

    def test_v1_has_no_section_crc_so_bitrot_hits_global_crc(self):
        blob = bytearray((FIXTURES / "chunked_v1.rz").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises((CorruptStreamError, EOFError)):
            decompress(bytes(blob))


class TestChunkedSalvage:
    def test_clean_blob_reports_ok(self):
        blob = compress_chunked(field(), "sz3", n_chunks=4, abs_eb=1e-3)
        out, report = decompress_chunked(blob, salvage=True)
        assert isinstance(report, SalvageReport)
        assert report.ok and report.total == 4
        assert np.array_equal(out, decompress_chunked(blob))

    def test_corrupt_chunk_nan_filled_rest_intact(self):
        data = field()
        blob = compress_chunked(data, "sz3", axis=0, n_chunks=4, abs_eb=1e-3)
        clean = decompress_chunked(blob)
        bad = corrupt_section(blob, "chunk2")
        with pytest.raises(CorruptStreamError):
            decompress_chunked(bad)
        out, report = decompress_chunked(bad, salvage=True)
        assert report.failed_names == ["chunk2"]
        assert report.failures[0].stage == "crc"
        # chunk2 covers rows 12..18 of the 24-row axis (4 equal chunks)
        assert np.isnan(out[12:18]).all()
        assert np.array_equal(out[:12], clean[:12])
        assert np.array_equal(out[18:], clean[18:])

    def test_truncated_blob_salvages_leading_chunks(self):
        blob = compress_chunked(field(), "sz3", n_chunks=4, abs_eb=1e-3)
        clean = decompress_chunked(blob)
        cut = blob[: int(len(blob) * 0.6)]
        out, report = decompress_chunked(cut, salvage=True)
        assert not report.ok
        assert np.isnan(out).any()
        recovered = ~np.isnan(out)
        assert np.array_equal(out[recovered], clean[recovered])

    def test_integer_chunks_zero_filled_with_note(self):
        data = np.arange(240, dtype=np.int32).reshape(24, 10)
        blob = compress_chunked(data, "bitgroom", n_chunks=4, abs_eb=1.0)
        bad = corrupt_section(blob, "chunk1")
        out, report = decompress_chunked(bad, salvage=True)
        if np.issubdtype(out.dtype, np.integer):
            assert (out[6:12] == 0).all()
            assert any("zero-filled" in n for n in report.notes)

    def test_fault_injected_corruption_surfaces_in_salvage(self):
        data = field()
        blob = compress_chunked(data, "sz3", n_chunks=4, abs_eb=1e-3,
                                faults="seed=5;bitflip:only=1:n=3")
        out, report = decompress_chunked(blob, salvage=True)
        assert report.failed_names == ["chunk1"]
        assert np.isnan(out[6:12]).all()

    def test_report_serializes(self):
        blob = compress_chunked(field(), "sz3", n_chunks=2, abs_eb=1e-3)
        _, report = decompress_chunked(corrupt_section(blob, "chunk0"),
                                       salvage=True)
        d = report.to_dict()
        assert d["recovered"] == 1 and d["total"] == 2 and not d["ok"]
        assert "chunk0" in report.summary()


class TestChunkedHeaderValidation:
    def _blob_with_header(self, **overrides):
        blob = compress_chunked(field(shape=(8, 6, 4)), "sz3", n_chunks=2,
                                abs_eb=1e-3)
        c = Container.from_bytes(blob)
        c.header.update(overrides)
        rebuilt = Container(c.codec, c.header)
        for name in c.section_names:
            rebuilt.add_section(name, c.section(name))
        return rebuilt.to_bytes()

    @pytest.mark.parametrize("overrides", [
        {"n_chunks": 0}, {"n_chunks": "2"}, {"n_chunks": True},
        {"shape": []}, {"shape": [8, -6, 4]}, {"shape": "nope"},
        {"axis": 7}, {"axis": -1}, {"axis": None},
        {"n_chunks": 100},  # more chunks than the split axis has rows
    ])
    def test_tampered_header_fails_clearly(self, overrides):
        blob = self._blob_with_header(**overrides)
        with pytest.raises(CorruptStreamError):
            decompress_chunked(blob)

    def test_not_chunked_codec_rejected(self):
        c = Container("other")
        with pytest.raises(ValueError, match="not a chunked stream"):
            decompress_chunked(c.to_bytes())


class TestRcdfSalvage:
    def _dataset(self):
        rng = np.random.default_rng(7)
        ds = RcdfDataset(attrs={"title": "t"})
        ds.create_dimension("y", 16)
        ds.create_dimension("x", 12)
        ds.add_variable("temp", ("y", "x"),
                        rng.normal(280, 5, (16, 12)).astype(np.float32),
                        codec="sz3", abs_eb=1e-3)
        ds.add_variable("ids", ("y", "x"),
                        np.arange(192, dtype=np.int32).reshape(16, 12))
        return ds

    def test_corrupt_variable_salvaged(self):
        ds = self._dataset()
        blob = ds.to_bytes()
        payload = Container.from_bytes(blob).section("var:temp")
        bad = bytearray(blob)
        bad[blob.index(payload) + 4] ^= 0xFF
        bad = bytes(bad)
        with pytest.raises((CorruptStreamError, EOFError)):
            RcdfDataset.from_bytes(bad).get("temp")
        out = RcdfDataset.from_bytes(bad, salvage=True)
        assert out.salvage_report.failed_names == ["temp"]
        assert np.isnan(out.get("temp").data).all()
        assert out.get("temp").data.shape == (16, 12)
        assert np.array_equal(out.get("ids").data, ds.get("ids").data)

    def test_clean_dataset_salvage_report_ok(self):
        out = RcdfDataset.from_bytes(self._dataset().to_bytes(), salvage=True)
        assert out.salvage_report.ok and out.salvage_report.total == 2

    def test_blank_variable_keeps_metadata(self):
        ds = self._dataset()
        blob = ds.to_bytes()
        payload = Container.from_bytes(blob).section("var:temp")
        bad = bytearray(blob)
        bad[blob.index(payload) + 4] ^= 0xFF
        out = RcdfDataset.from_bytes(bytes(bad), salvage=True)
        var = out.get("temp")
        assert var.dims == ("y", "x") and var.codec == "sz3"
        assert var.abs_eb == 1e-3

    def test_read_rcdf_salvage_flag(self, tmp_path):
        path = tmp_path / "d.rcdf"
        path.write_bytes(self._dataset().to_bytes())
        ds = read_rcdf(path, salvage=True)
        assert ds.salvage_report.ok
