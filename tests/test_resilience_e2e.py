"""End-to-end resilience acceptance: one scenario, every defence at once.

A single seeded fault spec injects (a) one hard worker crash, (b) bit rot
in one stored chunk, and (c) a WAN outage + delivery drops. The pipeline
must: finish compressing via retries, salvage-decompress everything except
the NaN-filled corrupt chunk (with an accurate report), report the
retransmits in the transfer stats — and reproduce identical deterministic
telemetry counts when the same seed is run again.
"""

import numpy as np
import pytest

from repro import obs
from repro.faults import parse_fault_spec
from repro.parallel import compress_chunked, compress_many, decompress_chunked
from repro.transfer import WanLink, simulate_globus

SPEC = "seed=77;crash:only=1;bitflip:only=2:n=3;outage:at=1:dur=2;drop:p=1:max=2:backoff=0.1"

#: Counters that must be byte-identical across same-seed runs. (Scheduling-
#: dependent ones — parallel.retries, crash_requeues — are deliberately
#: excluded; see docs/ROBUSTNESS.md.)
DETERMINISTIC_COUNTERS = (
    "faults.crash_planned", "faults.bitflip_injected",
    "parallel.jobs_ok", "parallel.job_failures",
    "salvage.reads", "salvage.chunks_failed", "salvage.chunks_recovered",
    "wan.retransmits", "wan.bytes_sent", "wan.forced_completions",
)


def field(shape=(24, 16, 12), seed=1234):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return sum(np.sin(g) for g in grids) + 0.01 * rng.standard_normal(shape)


def run_scenario(workers):
    """One full compress -> salvage -> transfer pass under SPEC faults."""
    data = field()
    faults = parse_fault_spec(SPEC)
    run = obs.start_run(tags={"scenario": "resilience-e2e"})
    try:
        # compress survives the injected worker crash via retries; the
        # bitflip clause rots chunk 2 on its way into the container
        blob = compress_chunked(data, "sz3", axis=0, n_chunks=4, abs_eb=1e-3,
                                workers=workers, retries=2, retry_backoff=0.0,
                                faults=faults)
        out, report = decompress_chunked(blob, salvage=True)
        result = simulate_globus(
            "cliz", n_cores=4, uncompressed_bytes=1_000_000,
            compressed_bytes=[len(blob)] * 4,
            link=WanLink(bandwidth=50_000.0), faults=faults)
    finally:
        obs.end_run()
    snap = run.metrics.snapshot()
    counters = {k: snap[k]["value"] for k in DETERMINISTIC_COUNTERS if k in snap}
    return data, out, report, result, counters


class TestResilienceEndToEnd:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_scenario(workers=2)

    def test_compression_survives_worker_crash(self, scenario):
        _, out, _, _, counters = scenario
        assert counters["faults.crash_planned"] == 1
        assert counters["faults.bitflip_injected"] == 1
        # 4 compress jobs + 3 decode jobs succeed; the rotted chunk passes
        # its section CRC (the flip predates container assembly) and fails
        # as exactly one deterministic decode job during salvage
        assert counters["parallel.jobs_ok"] == 7
        assert counters["parallel.job_failures"] == 1

    def test_salvage_isolates_exactly_the_rotted_chunk(self, scenario):
        data, out, report, _, _ = scenario
        assert report.failed_names == ["chunk2"]
        assert report.total == 4 and not report.ok
        # chunk 2 of 4 equal chunks over 24 rows = rows 12..18
        assert np.isnan(out[12:18]).all()
        good = np.r_[0:12, 18:24]
        assert np.abs(out[good] - data[good]).max() <= 1e-3 + 1e-12

    def test_transfer_reports_outage_and_retransmits(self, scenario):
        _, _, _, result, counters = scenario
        assert result.retransmits == 4  # drop:p=1:max=2 — each file once
        assert result.goodput == pytest.approx(0.5)
        assert result.outage_time > 0
        assert counters["wan.retransmits"] == 4

    def test_same_seed_reproduces_telemetry_exactly(self, scenario):
        """The acceptance bar: identical deterministic counters on re-run."""
        *_, first = scenario
        *_, again = run_scenario(workers=2)
        assert first == again

    def test_serial_and_pool_agree_on_deterministic_counters(self, scenario):
        """Fault planning is scheduling-independent: a serial run sees the
        same planned faults, salvage outcome, and WAN stats as the pool."""
        *_, pool_counters = scenario
        *_, serial_counters = run_scenario(workers=None)
        assert pool_counters == serial_counters


class TestManyFilesResilience:
    def test_compress_many_completes_with_crash_and_rot(self):
        rng = np.random.default_rng(0)
        arrays = [rng.normal(0, 1, (16, 12)).astype(np.float32)
                  for _ in range(4)]
        results = compress_many(arrays, "sz3", abs_eb=1e-2, retries=2,
                                retry_backoff=0.0, strict=False,
                                faults="seed=77;crash:only=1;bitflip:only=2")
        assert all(r.ok for r in results)
        assert results[1].attempts > 1  # the crash cost a retry
        # blob 2 was rotted after compression: it must fail cleanly
        from repro import decompress
        from repro.encoding.container import DECODE_ERRORS

        for i, r in enumerate(results):
            if i == 2:
                with pytest.raises(DECODE_ERRORS):
                    decompress(r.value)
            else:
                assert decompress(r.value).shape == (16, 12)
