"""Tests for the stage profiler and its pipeline/CLI integration."""

import numpy as np
import pytest

from repro.core.compressor import CliZ
from repro.utils.profiling import (
    disable_profiling,
    enable_profiling,
    format_profile,
    get_profile,
    profile_stage,
    profiling_enabled,
    reset_profile,
)


@pytest.fixture(autouse=True)
def _clean_profiler():
    disable_profiling()
    reset_profile()
    yield
    disable_profiling()
    reset_profile()


class TestProfileStage:
    def test_disabled_is_noop(self):
        with profile_stage("x"):
            pass
        assert get_profile() == []

    def test_records_time_and_calls(self):
        enable_profiling()
        for _ in range(3):
            with profile_stage("stage"):
                pass
        (rec,) = get_profile()
        assert rec.path == "stage"
        assert rec.calls == 3
        assert rec.seconds >= 0.0

    def test_nested_paths(self):
        enable_profiling()
        with profile_stage("outer"):
            with profile_stage("inner"):
                pass
            with profile_stage("inner"):
                pass
        paths = {r.path: r for r in get_profile()}
        assert set(paths) == {"outer", "outer/inner"}
        assert paths["outer/inner"].calls == 2
        assert paths["outer/inner"].depth == 1

    def test_bytes_accumulate(self):
        enable_profiling()
        with profile_stage("s", nbytes=10):
            pass
        with profile_stage("s", nbytes=5):
            pass
        (rec,) = get_profile()
        assert rec.nbytes == 15

    def test_exception_still_recorded(self):
        enable_profiling()
        with pytest.raises(RuntimeError):
            with profile_stage("boom"):
                raise RuntimeError("x")
        (rec,) = get_profile()
        assert rec.path == "boom" and rec.calls == 1
        # the stack unwound: the next stage is top-level again
        with profile_stage("after"):
            pass
        assert {r.path for r in get_profile()} == {"boom", "after"}

    def test_enable_clears_previous(self):
        enable_profiling()
        with profile_stage("a"):
            pass
        enable_profiling()
        assert get_profile() == []
        assert profiling_enabled()

    def test_tree_order_parent_first(self):
        enable_profiling()
        with profile_stage("compress"):
            with profile_stage("quantize"):
                pass
            with profile_stage("encode"):
                with profile_stage("huffman"):
                    pass
        paths = [r.path for r in get_profile()]
        assert paths == [
            "compress",
            "compress/quantize",
            "compress/encode",
            "compress/encode/huffman",
        ]

    def test_format_profile(self):
        enable_profiling()
        with profile_stage("compress", nbytes=1000):
            with profile_stage("quantize"):
                pass
        text = format_profile()
        lines = text.splitlines()
        assert "stage" in lines[0] and "MB/s" in lines[0]
        assert any("compress" in ln for ln in lines)
        assert any("quantize" in ln for ln in lines)

    def test_format_empty(self):
        assert "no profile" in format_profile()

    def test_format_zero_duration_with_bytes(self):
        """A 0-duration stage with bytes must not crash on the MB/s column."""
        from repro.obs import get_run

        enable_profiling()
        run = get_run()
        run.record_span("instant", t_start=0.0, dur=0.0, nbytes=1024)
        text = format_profile()
        line = next(ln for ln in text.splitlines() if "instant" in ln)
        assert "inf" in line
        assert "1024" in line

    def test_format_zero_bytes_shows_dash(self):
        enable_profiling()
        with profile_stage("empty"):
            pass
        line = next(ln for ln in format_profile().splitlines() if "empty" in ln)
        assert line.rstrip().endswith("-")


class TestThreadSafety:
    def test_two_threads_profile_independently(self):
        """Regression: the old module-global stack interleaved under threads,
        producing bogus cross-thread parent/child paths."""
        import threading

        enable_profiling()
        barrier = threading.Barrier(2)
        errors = []

        def worker(name):
            try:
                for _ in range(30):
                    with profile_stage(f"{name}.outer"):
                        barrier.wait(timeout=10)
                        with profile_stage(f"{name}.inner"):
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        paths = {r.path: r for r in get_profile()}
        assert set(paths) == {"a.outer", "a.outer/a.inner",
                              "b.outer", "b.outer/b.inner"}
        assert all(r.calls == 30 for r in paths.values())


class TestPipelineIntegration:
    def test_cliz_roundtrip_produces_stages(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((16, 20)).astype(np.float64)
        comp = CliZ()
        enable_profiling()
        blob = comp.compress(data, abs_eb=1e-3)
        paths = {r.path for r in get_profile()}
        assert "compress" in paths
        assert "compress/predict+quantize" in paths
        assert "compress/encode.codes" in paths
        assert any(p.endswith("lz.compress") for p in paths)

        enable_profiling()  # reset, profile the decode side
        out = comp.decompress(blob)
        assert np.allclose(out, data, atol=1e-3)
        paths = {r.path for r in get_profile()}
        assert "decompress" in paths
        assert "decompress/decode.codes" in paths
        assert "decompress/reconstruct" in paths

    def test_disabled_costs_nothing_and_collects_nothing(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((8, 8))
        CliZ().compress(data, abs_eb=1e-3)
        assert get_profile() == []


class TestCLIProfileFlag:
    def test_compress_profile_flag(self, tmp_path, capsys):
        from repro.cli import main

        rng = np.random.default_rng(2)
        src = tmp_path / "a.npy"
        dst = tmp_path / "a.rz"
        np.save(src, rng.standard_normal((12, 12)))
        rc = main(["compress", str(src), str(dst), "--abs-eb", "1e-3", "--profile"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "per-stage profile" in captured.err
        assert "compress" in captured.err

        out = tmp_path / "a_out.npy"
        rc = main(["decompress", str(dst), str(out), "--profile"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "per-stage profile" in captured.err
        assert "decompress" in captured.err
