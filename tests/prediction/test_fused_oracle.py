"""Differential tests: fused predict+quantize vs the two-pass oracle.

The fused fast path (:func:`interp_compress` on unmasked data) must be
*bit-identical* to :func:`interp_compress_reference` — same code stream,
same unpredictable values, same reconstruction, same auto-fit choices —
across every layout, fitting mode, and masked/unmasked combination.
This mirrors the PR 1 pattern of fuzzing the vectorized Huffman decoder
against its retained scalar oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dims import apply_layout, enumerate_layouts
from repro.prediction import (
    InterpSpec,
    interp_compress,
    interp_compress_reference,
    interp_decompress,
)

FITTINGS = ("linear", "cubic", "auto")


def smooth_field(shape, seed=0, noise=0.02):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    out = sum(np.sin(g * (i + 1)) for i, g in enumerate(grids))
    return np.asarray(out + noise * rng.standard_normal(shape), dtype=np.float64)


def assert_identical(data, eb, spec, mask=None):
    fused = interp_compress(data, eb, spec, mask=mask)
    oracle = interp_compress_reference(data, eb, spec, mask=mask)
    np.testing.assert_array_equal(fused.codes, oracle.codes)
    np.testing.assert_array_equal(fused.unpredictable, oracle.unpredictable)
    np.testing.assert_array_equal(fused.reconstructed, oracle.reconstructed)
    assert fused.fit_choices == oracle.fit_choices
    # and the stream decodes back to the (shared) reconstruction
    choices = fused.fit_choices if spec.fitting == "auto" else None
    dec = interp_decompress(data.shape, eb, spec, fused.codes,
                            fused.unpredictable, mask=mask,
                            fit_choices=choices)
    np.testing.assert_array_equal(dec, fused.reconstructed)
    return fused


class TestAllLayouts:
    """Every 3D (perm, fusion) layout: the shapes the CliZ tuner explores."""

    @pytest.mark.parametrize("fitting", FITTINGS)
    def test_every_layout_matches_oracle(self, fitting):
        data = smooth_field((12, 10, 14), seed=1)
        for layout in enumerate_layouts(3):
            laid = apply_layout(data, layout)
            spec = InterpSpec(order=tuple(range(laid.ndim)), fitting=fitting)
            assert_identical(laid, 1e-3, spec)

    def test_permuted_orders_match_oracle(self):
        data = smooth_field((9, 16, 11), seed=2)
        for order in [(0, 1, 2), (2, 1, 0), (1, 2, 0)]:
            spec = InterpSpec(order=order, fitting="cubic")
            assert_identical(data, 1e-3, spec)


class TestMaskedUnmasked:
    @pytest.mark.parametrize("fitting", FITTINGS)
    def test_unmasked(self, fitting):
        data = smooth_field((17, 23), seed=3)
        spec = InterpSpec(order=(0, 1), fitting=fitting)
        assert_identical(data, 1e-3, spec)

    @pytest.mark.parametrize("fitting", FITTINGS)
    def test_masked(self, fitting):
        data = smooth_field((17, 23), seed=4)
        rng = np.random.default_rng(4)
        mask = rng.random(data.shape) > 0.3
        spec = InterpSpec(order=(0, 1), fitting=fitting)
        assert_identical(data, 1e-3, spec, mask=mask)

    def test_unpredictable_heavy_stream(self):
        """Tiny eb + heavy noise: lots of escapes, both paths agree."""
        rng = np.random.default_rng(5)
        data = rng.standard_normal((31, 18)) * 100.0
        spec = InterpSpec(order=(0, 1), fitting="cubic")
        fused = assert_identical(data, 1e-9, spec)
        assert fused.unpredictable.size > 0

    def test_nonfinite_values_escape_identically(self):
        data = smooth_field((16, 12), seed=6)
        data[3, 4] = np.inf
        data[7, 7] = np.nan
        spec = InterpSpec(order=(0, 1), fitting="cubic")
        fused = assert_identical(data, 1e-3, spec)
        assert fused.unpredictable.size >= 2


class TestGeometryEdges:
    """Shapes that stress the interior/edge row split of the fast path."""

    @pytest.mark.parametrize("shape", [
        (1,), (2,), (3,), (4,), (5,), (7,), (8,), (9,), (16,), (17,),
        (1, 1), (1, 9), (2, 2), (3, 1, 4), (5, 6, 7, 2),
    ])
    def test_small_and_degenerate_shapes(self, shape):
        data = smooth_field(shape, seed=7)
        for fitting in FITTINGS:
            spec = InterpSpec(order=tuple(range(len(shape))), fitting=fitting)
            assert_identical(data, 1e-3, spec)

    def test_level_eb_factors_and_radius(self):
        data = smooth_field((33, 14), seed=8)
        spec = InterpSpec(order=(0, 1), fitting="cubic",
                          level_eb_factors=(0.25, 0.5), radius=64)
        assert_identical(data, 1e-3, spec)


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(1, 24), min_size=1, max_size=3).map(tuple),
    fitting=st.sampled_from(FITTINGS),
    seed=st.integers(0, 2**16),
    log_eb=st.integers(-6, -1),
    masked=st.booleans(),
)
def test_fuzz_fused_matches_oracle(shape, fitting, seed, log_eb, masked):
    rng = np.random.default_rng(seed)
    data = smooth_field(shape, seed=seed, noise=0.1)
    mask = None
    if masked:
        mask = rng.random(shape) > 0.25
    spec = InterpSpec(order=tuple(range(len(shape))), fitting=fitting)
    assert_identical(data, 10.0 ** log_eb, spec, mask=mask)
