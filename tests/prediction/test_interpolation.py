"""Tests for the multigrid interpolation engine (compress/decompress)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction import (
    InterpSpec,
    interp_compress,
    interp_decompress,
    interpolation_steps,
    max_level,
)


def smooth_field(shape, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    out = sum(np.sin(g * (i + 1)) for i, g in enumerate(grids))
    if noise:
        out = out + noise * rng.standard_normal(shape)
    return np.asarray(out, dtype=np.float64)


def roundtrip(data, eb, spec, mask=None):
    res = interp_compress(data, eb, spec, mask=mask)
    dec = interp_decompress(
        data.shape, eb, spec, res.codes, res.unpredictable,
        mask=mask, fit_choices=res.fit_choices or None,
    )
    return res, dec


class TestMaxLevel:
    @pytest.mark.parametrize("shape,expected", [
        ((1,), 0), ((2,), 1), ((3,), 2), ((4,), 2), ((5,), 3),
        ((1024,), 10), ((3, 1025), 11),
    ])
    def test_values(self, shape, expected):
        assert max_level(shape) == expected

    def test_steps_deterministic(self):
        s1 = list(interpolation_steps((7, 9), (0, 1)))
        s2 = list(interpolation_steps((7, 9), (0, 1)))
        assert s1 == s2
        assert len(s1) == 2 * max_level((7, 9))


class TestSpecValidation:
    def test_bad_fitting_rejected(self):
        with pytest.raises(ValueError):
            InterpSpec(order=(0,), fitting="quartic")

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            InterpSpec(order=(0, 0))

    def test_bad_eb_factor_rejected(self):
        with pytest.raises(ValueError):
            InterpSpec(order=(0,), level_eb_factors=(1.5,))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interp_compress(np.zeros((3, 3)), 0.1, InterpSpec(order=(0,)))


class TestRoundtrip:
    @pytest.mark.parametrize("shape", [(17,), (16,), (9, 13), (8, 8), (5, 7, 11), (4, 5, 6, 7)])
    def test_error_bound_all_dims(self, shape):
        data = smooth_field(shape, noise=0.05)
        eb = 1e-3
        spec = InterpSpec(order=tuple(range(len(shape))))
        res, dec = roundtrip(data, eb, spec)
        assert np.abs(dec - data).max() <= eb
        np.testing.assert_allclose(dec, res.reconstructed)
        assert res.codes.size == data.size

    def test_single_point(self):
        data = np.array([42.0])
        res, dec = roundtrip(data, 0.5, InterpSpec(order=(0,)))
        assert abs(dec[0] - 42.0) <= 0.5

    def test_two_points(self):
        data = np.array([1.0, 2.0])
        res, dec = roundtrip(data, 0.1, InterpSpec(order=(0,)))
        assert np.abs(dec - data).max() <= 0.1

    @pytest.mark.parametrize("fitting", ["linear", "cubic", "auto"])
    def test_fittings(self, fitting):
        data = smooth_field((21, 34), noise=0.02)
        eb = 5e-4
        spec = InterpSpec(order=(0, 1), fitting=fitting)
        res, dec = roundtrip(data, eb, spec)
        assert np.abs(dec - data).max() <= eb

    def test_auto_requires_fit_choices_at_decode(self):
        data = smooth_field((9, 9))
        spec = InterpSpec(order=(0, 1), fitting="auto")
        res = interp_compress(data, 0.01, spec)
        with pytest.raises(ValueError):
            interp_decompress(data.shape, 0.01, spec, res.codes, res.unpredictable)

    @pytest.mark.parametrize("order", [(0, 1, 2), (2, 1, 0), (1, 2, 0)])
    def test_dimension_orders(self, order):
        data = smooth_field((6, 10, 14), noise=0.01)
        eb = 1e-3
        res, dec = roundtrip(data, eb, InterpSpec(order=order))
        assert np.abs(dec - data).max() <= eb

    def test_order_changes_code_stream(self):
        """Different dimension orders genuinely change the prediction plan."""
        data = smooth_field((8, 12, 16), noise=0.05, seed=3)
        r1 = interp_compress(data, 1e-3, InterpSpec(order=(0, 1, 2)))
        r2 = interp_compress(data, 1e-3, InterpSpec(order=(2, 1, 0)))
        assert not np.array_equal(r1.codes, r2.codes)

    def test_level_eb_factors_tighten_coarse_levels(self):
        data = smooth_field((33, 33), noise=0.02)
        eb = 1e-3
        spec = InterpSpec(order=(0, 1), level_eb_factors=(0.25, 0.5))
        res, dec = roundtrip(data, eb, spec)
        assert np.abs(dec - data).max() <= eb

    def test_constant_field_is_all_zero_bins(self):
        data = np.full((16, 16), 7.25)
        spec = InterpSpec(order=(0, 1))
        res = interp_compress(data, 0.01, spec)
        bins = res.codes - spec.radius
        # rounding of the anchor can ripple ±1 bins; nothing larger, and the
        # overwhelming majority predict exactly
        assert np.abs(bins[1:]).max() <= 1
        assert (bins == 0).mean() > 0.75

    def test_rough_data_still_bounded(self):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((25, 31)) * 100
        eb = 0.5
        res, dec = roundtrip(data, eb, InterpSpec(order=(0, 1)))
        assert np.abs(dec - data).max() <= eb

    def test_wrong_stream_length_rejected(self):
        data = smooth_field((9, 9))
        spec = InterpSpec(order=(0, 1))
        res = interp_compress(data, 0.01, spec)
        with pytest.raises(ValueError):
            interp_decompress(data.shape, 0.01, spec, res.codes[:-5], res.unpredictable)


class TestMask:
    def test_masked_roundtrip_bound_on_valid_points(self):
        data = smooth_field((18, 22), noise=0.03)
        mask = np.ones(data.shape, dtype=bool)
        mask[4:9, 6:15] = False
        data = data.copy()
        data[~mask] = 2.0 ** 122  # CESM-style huge fill values
        eb = 1e-3
        spec = InterpSpec(order=(0, 1))
        res, dec = roundtrip(data, eb, spec, mask=mask)
        assert np.abs(dec - data)[mask].max() <= eb
        assert (dec[~mask] == 0.0).all()

    def test_stream_length_equals_valid_count(self):
        data = smooth_field((13, 17))
        rng = np.random.default_rng(1)
        mask = rng.random(data.shape) > 0.4
        res = interp_compress(data, 1e-3, InterpSpec(order=(0, 1)), mask=mask)
        assert res.codes.size == int(mask.sum())

    def test_fill_values_do_not_poison_neighbours(self):
        """A huge fill value adjacent to valid data must not blow up bins.

        Without mask-aware coefficients the 2^122 neighbour would dominate
        every nearby prediction; with them, nearby bins stay small.
        """
        data = smooth_field((32, 32), noise=0.01)
        mask = np.ones(data.shape, dtype=bool)
        mask[:, 16:] = False
        poisoned = data.copy()
        poisoned[~mask] = 2.0 ** 122
        eb = 1e-3
        res = interp_compress(poisoned, eb, InterpSpec(order=(0, 1)), mask=mask)
        # all valid-point bins must be finite and small-ish; none unpredictable
        assert res.unpredictable.size <= 1  # at most the anchor
        bins = np.abs(res.codes - 32768)
        assert np.percentile(bins[bins < 32768], 99) < 1000

    def test_anchor_masked(self):
        data = smooth_field((9, 9))
        mask = np.ones(data.shape, dtype=bool)
        mask[0, 0] = False
        eb = 1e-3
        res, dec = roundtrip(data, eb, InterpSpec(order=(0, 1)), mask=mask)
        assert np.abs(dec - data)[mask].max() <= eb
        assert dec[0, 0] == 0.0

    def test_sparse_mask(self):
        data = smooth_field((15, 15))
        mask = np.zeros(data.shape, dtype=bool)
        mask[::4, ::3] = True
        eb = 1e-3
        res, dec = roundtrip(data, eb, InterpSpec(order=(0, 1)), mask=mask)
        assert np.abs(dec - data)[mask].max() <= eb


class TestCompressionQuality:
    def test_smooth_data_mostly_zero_bins(self):
        data = smooth_field((40, 60))
        res = interp_compress(data, 1e-3, InterpSpec(order=(0, 1)))
        bins = res.codes - 32768
        assert (bins == 0).mean() > 0.5

    def test_cubic_beats_linear_on_smooth_data(self):
        data = smooth_field((50, 70))
        eb = 1e-4
        def cost(fitting):
            res = interp_compress(data, eb, InterpSpec(order=(0, 1), fitting=fitting))
            f = np.bincount(res.codes)
            p = f[f > 0] / res.codes.size
            return float(-(p * np.log2(p)).sum())
        assert cost("cubic") < cost("linear")

    def test_smooth_dim_last_is_cheaper(self):
        """The paper's dimension-permutation claim: predict most along the
        smoothest dimension. dim0 here is rough, dim1 smooth."""
        rng = np.random.default_rng(0)
        rough = rng.standard_normal(48)[:, None]
        smooth = np.sin(np.linspace(0, 4, 256))[None, :]
        data = rough + smooth
        eb = 1e-3
        def entropy(order):
            res = interp_compress(data, eb, InterpSpec(order=order))
            f = np.bincount(res.codes)
            p = f[f > 0] / res.codes.size
            return float(-(p * np.log2(p)).sum())
        # order (0,1): dim1 (smooth) predicted most -> cheaper
        assert entropy((0, 1)) < entropy((1, 0))


@given(
    st.tuples(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=12)),
    st.floats(min_value=1e-5, max_value=1.0),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["linear", "cubic", "auto"]),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_property(shape, eb, seed, fitting):
    """For arbitrary small fields, specs and bounds: decode == encode-side
    reconstruction and the bound holds."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape) * 10
    spec = InterpSpec(order=(0, 1), fitting=fitting)
    res = interp_compress(data, eb, spec)
    dec = interp_decompress(shape, eb, spec, res.codes, res.unpredictable,
                            fit_choices=res.fit_choices or None)
    assert np.abs(dec - data).max() <= eb
    np.testing.assert_array_equal(dec, res.reconstructed)


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_masked_roundtrip_property(seed):
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(3, 14)), int(rng.integers(3, 14)))
    data = rng.standard_normal(shape) * 5
    mask = rng.random(shape) > 0.3
    if not mask.any():
        mask[0, 0] = True
    eb = float(rng.uniform(1e-4, 0.5))
    spec = InterpSpec(order=(0, 1))
    res = interp_compress(data, eb, spec, mask=mask)
    dec = interp_decompress(shape, eb, spec, res.codes, res.unpredictable, mask=mask)
    assert res.codes.size == int(mask.sum())
    assert np.abs(dec - data)[mask].max() <= eb
