"""Tests for Theorem-1 coefficient tables (mask-aware fitting)."""

import itertools

import numpy as np
import pytest

from repro.prediction.coefficients import (
    CUBIC_OFFSETS,
    CUBIC_TABLE,
    LINEAR_TABLE,
    cubic_coefficients,
    linear_coefficients,
)


def lagrange_at_zero(nodes):
    """Lagrange basis evaluated at x=0 for the given nodes."""
    out = []
    for i, xi in enumerate(nodes):
        num = 1.0
        den = 1.0
        for j, xj in enumerate(nodes):
            if i == j:
                continue
            num *= -xj
            den *= xi - xj
        out.append(num / den)
    return np.array(out)


class TestPaperTables:
    def test_formula_1_all_valid(self):
        """Table I: the classic cubic stencil (-1/16, 9/16, 9/16, -1/16)."""
        np.testing.assert_allclose(
            CUBIC_TABLE[0b1111], [-1 / 16, 9 / 16, 9 / 16, -1 / 16]
        )

    @pytest.mark.parametrize("validity,expected", [
        ((0, 1, 1, 1), (0, 3 / 8, 3 / 4, -1 / 8)),
        ((1, 0, 1, 1), (1 / 8, 0, 9 / 8, -1 / 4)),
        ((1, 1, 0, 1), (-1 / 4, 9 / 8, 0, 1 / 8)),
        ((1, 1, 1, 0), (-1 / 8, 3 / 4, 3 / 8, 0)),
    ])
    def test_table_ii_three_valid(self, validity, expected):
        """Table II: quadratic degradation with one masked reference."""
        np.testing.assert_allclose(cubic_coefficients(np.array(validity)), expected)

    def test_all_invalid_predicts_zero(self):
        np.testing.assert_allclose(CUBIC_TABLE[0b0000], [0, 0, 0, 0])

    def test_single_valid_is_constant_fit(self):
        for i in range(4):
            code = 1 << (3 - i)
            coeffs = CUBIC_TABLE[code]
            expected = np.zeros(4)
            expected[i] = 1.0
            np.testing.assert_allclose(coeffs, expected)


class TestLagrangeProperty:
    @pytest.mark.parametrize("code", range(1, 16))
    def test_cubic_coefficients_are_lagrange_basis(self, code):
        """Theorem 1's product formula equals polynomial interpolation at 0."""
        validity = [(code >> (3 - j)) & 1 for j in range(4)]
        nodes = [CUBIC_OFFSETS[j] for j in range(4) if validity[j]]
        expected = np.zeros(4)
        expected[np.array(validity, dtype=bool)] = lagrange_at_zero(nodes)
        np.testing.assert_allclose(CUBIC_TABLE[code], expected, atol=1e-12)

    @pytest.mark.parametrize("code", range(1, 16))
    def test_exact_on_polynomials(self, code):
        """Coefficients reproduce any polynomial of degree < #valid exactly."""
        validity = np.array([(code >> (3 - j)) & 1 for j in range(4)], dtype=bool)
        n_valid = int(validity.sum())
        rng = np.random.default_rng(code)
        poly = rng.normal(size=n_valid)  # degree n_valid - 1
        vals = np.polyval(poly, CUBIC_OFFSETS.astype(float))
        pred = float(CUBIC_TABLE[code] @ np.where(validity, vals, 0.0))
        truth = float(np.polyval(poly, 0.0))
        np.testing.assert_allclose(pred, truth, atol=1e-9)

    def test_coefficients_sum_to_one_when_any_valid(self):
        """Affine invariance: constant fields predict exactly."""
        for code in range(1, 16):
            assert abs(CUBIC_TABLE[code].sum() - 1.0) < 1e-12


class TestLinearTable:
    def test_both_valid_is_average(self):
        np.testing.assert_allclose(LINEAR_TABLE[0b11], [0.5, 0.5])

    def test_one_valid_copies(self):
        np.testing.assert_allclose(LINEAR_TABLE[0b10], [1.0, 0.0])
        np.testing.assert_allclose(LINEAR_TABLE[0b01], [0.0, 1.0])

    def test_none_valid_zero(self):
        np.testing.assert_allclose(LINEAR_TABLE[0b00], [0.0, 0.0])

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            cubic_coefficients(np.ones(3))
        with pytest.raises(ValueError):
            linear_coefficients(np.ones(3))
