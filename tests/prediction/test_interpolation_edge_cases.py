"""Edge-case tests for the interpolation engine beyond the basic roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction import InterpSpec, interp_compress, interp_decompress
from repro.prediction.interpolation import traversal_indices
from repro.quantization.linear import UNPREDICTABLE


def roundtrip(data, eb, spec, mask=None):
    res = interp_compress(data, eb, spec, mask=mask)
    dec = interp_decompress(data.shape, eb, spec, res.codes, res.unpredictable,
                            mask=mask, fit_choices=res.fit_choices or None)
    return res, dec


class TestDegenerateShapes:
    @pytest.mark.parametrize("shape", [(1,), (1, 1), (1, 7), (7, 1), (1, 1, 9), (2, 1, 2)])
    def test_unit_axes(self, shape):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(shape)
        res, dec = roundtrip(data, 0.01, InterpSpec(order=tuple(range(len(shape)))))
        assert np.abs(dec - data).max() <= 0.01

    def test_power_of_two_plus_minus_one(self):
        for n in (15, 16, 17, 31, 32, 33):
            data = np.sin(np.arange(n) / 3.0)
            res, dec = roundtrip(data, 1e-4, InterpSpec(order=(0,)))
            assert np.abs(dec - data).max() <= 1e-4, n

    def test_extreme_aspect_ratio(self):
        rng = np.random.default_rng(1)
        data = np.cumsum(rng.standard_normal((2, 500)), axis=1)
        res, dec = roundtrip(data, 1e-3, InterpSpec(order=(0, 1)))
        assert np.abs(dec - data).max() <= 1e-3


class TestNumericalExtremes:
    def test_tiny_values_tiny_bound(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((9, 9)) * 1e-20
        eb = 1e-24
        res, dec = roundtrip(data, eb, InterpSpec(order=(0, 1)))
        assert np.abs(dec - data).max() <= eb

    def test_huge_values(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((9, 9)) * 1e20
        eb = 1e16
        res, dec = roundtrip(data, eb, InterpSpec(order=(0, 1)))
        assert np.abs(dec - data).max() <= eb

    def test_mixed_sign_offsets(self):
        data = np.array([[1e10, -1e10], [-1e10, 1e10]], dtype=np.float64)
        res, dec = roundtrip(data, 1.0, InterpSpec(order=(0, 1)))
        assert np.abs(dec - data).max() <= 1.0

    def test_radius_two_forces_unpredictables(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((8, 8)) * 100
        spec = InterpSpec(order=(0, 1), radius=2)
        res, dec = roundtrip(data, 1e-9, spec)
        assert (res.codes == UNPREDICTABLE).mean() > 0.9
        np.testing.assert_array_equal(dec, data)  # everything stored exactly


class TestLevelEbFactors:
    def test_tighter_coarse_levels_reduce_rmse(self):
        rng = np.random.default_rng(5)
        data = np.cumsum(np.cumsum(rng.standard_normal((33, 33)), 0), 1)
        eb = 0.5
        plain = interp_compress(data, eb, InterpSpec(order=(0, 1)))
        tight = interp_compress(data, eb, InterpSpec(order=(0, 1),
                                                     level_eb_factors=(0.1, 0.2, 0.5)))
        rmse_plain = np.sqrt(((plain.reconstructed - data) ** 2).mean())
        rmse_tight = np.sqrt(((tight.reconstructed - data) ** 2).mean())
        assert rmse_tight < rmse_plain

    def test_factors_shorter_than_levels_ok(self):
        data = np.sin(np.arange(100) / 5.0)
        spec = InterpSpec(order=(0,), level_eb_factors=(0.5,))
        res, dec = roundtrip(data, 1e-3, spec)
        assert np.abs(dec - data).max() <= 1e-3


class TestMaskEdgeCases:
    def test_single_valid_point(self):
        data = np.full((6, 6), 3.5)
        mask = np.zeros((6, 6), dtype=bool)
        mask[3, 4] = True
        res, dec = roundtrip(data, 0.1, InterpSpec(order=(0, 1)), mask=mask)
        assert res.codes.size == 1
        assert abs(dec[3, 4] - 3.5) <= 0.1

    def test_checkerboard_mask(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((12, 12))
        mask = (np.add.outer(np.arange(12), np.arange(12)) % 2).astype(bool)
        res, dec = roundtrip(data, 0.05, InterpSpec(order=(0, 1)), mask=mask)
        assert np.abs(dec - data)[mask].max() <= 0.05

    def test_mask_row_of_valid(self):
        data = np.sin(np.arange(64) / 4.0)[None, :] * np.ones((8, 1))
        mask = np.zeros((8, 64), dtype=bool)
        mask[4] = True
        res, dec = roundtrip(data, 1e-3, InterpSpec(order=(0, 1)), mask=mask)
        assert np.abs(dec - data)[mask].max() <= 1e-3


class TestTraversal:
    def test_full_cover_without_mask(self):
        for shape in [(7,), (5, 9), (3, 4, 5)]:
            idx = traversal_indices(shape, tuple(range(len(shape))))
            assert sorted(idx.tolist()) == list(range(int(np.prod(shape))))

    def test_masked_cover(self):
        rng = np.random.default_rng(7)
        shape = (6, 8)
        mask = rng.random(shape) > 0.4
        mask[0, 0] = True
        idx = traversal_indices(shape, (0, 1), mask)
        assert sorted(idx.tolist()) == sorted(np.flatnonzero(mask.ravel()).tolist())

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_cover_property(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 5))
        shape = tuple(int(rng.integers(1, 9)) for _ in range(ndim))
        order = tuple(rng.permutation(ndim).tolist())
        idx = traversal_indices(shape, order)
        assert sorted(idx.tolist()) == list(range(int(np.prod(shape))))
