"""Tests for the Lorenzo reference predictor/compressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prediction import (
    lorenzo_compress,
    lorenzo_decompress,
    lorenzo_prediction_errors,
)


class TestPredictionErrors:
    def test_1d_is_first_difference(self):
        data = np.array([1.0, 3.0, 6.0, 10.0])
        np.testing.assert_allclose(lorenzo_prediction_errors(data), [2, 3, 4])

    def test_2d_exact_on_bilinear(self):
        """First-order Lorenzo reproduces any bilinear surface exactly."""
        y, x = np.mgrid[0:10, 0:12]
        data = 2.0 + 0.5 * x + 1.5 * y
        np.testing.assert_allclose(lorenzo_prediction_errors(data), 0, atol=1e-12)

    def test_3d_exact_on_trilinear(self):
        z, y, x = np.mgrid[0:5, 0:6, 0:7]
        data = 1.0 + x + 2 * y + 3 * z
        np.testing.assert_allclose(lorenzo_prediction_errors(data), 0, atol=1e-12)

    def test_shape(self):
        assert lorenzo_prediction_errors(np.zeros((5, 7))).shape == (4, 6)


class TestCompressor:
    @pytest.mark.parametrize("shape", [(30,), (9, 11), (4, 5, 6)])
    def test_roundtrip_bound(self, shape):
        rng = np.random.default_rng(0)
        data = np.cumsum(rng.standard_normal(shape), axis=-1)
        eb = 0.01
        codes, unpred, rec = lorenzo_compress(data, eb)
        assert np.abs(rec - data).max() <= eb
        dec = lorenzo_decompress(shape, eb, codes, unpred)
        np.testing.assert_array_equal(dec, rec)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            lorenzo_compress(np.zeros(300_000), 0.1)

    def test_stream_length_mismatch_rejected(self):
        codes, unpred, _ = lorenzo_compress(np.zeros((4, 4)), 0.1)
        with pytest.raises(ValueError):
            lorenzo_decompress((4, 5), 0.1, codes, unpred)


@given(st.integers(min_value=0, max_value=2**31), st.floats(min_value=1e-3, max_value=1.0))
@settings(max_examples=20, deadline=None)
def test_roundtrip_property(seed, eb):
    rng = np.random.default_rng(seed)
    shape = (int(rng.integers(2, 9)), int(rng.integers(2, 9)))
    data = rng.standard_normal(shape) * 3
    codes, unpred, rec = lorenzo_compress(data, eb)
    dec = lorenzo_decompress(shape, eb, codes, unpred)
    assert np.abs(dec - data).max() <= eb
    np.testing.assert_array_equal(dec, rec)
