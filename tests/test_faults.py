"""Tests for the deterministic fault-injection framework (repro.faults)."""

import pytest

from repro.faults import (
    FaultInjector,
    FaultSpecError,
    JobFaults,
    LinkFaults,
    parse_fault_spec,
)


class TestSpecParsing:
    def test_full_grammar(self):
        inj = parse_fault_spec("seed=42;crash:p=0.3;bitflip:p=1:n=2;outage:at=5:dur=2")
        assert inj.seed == 42
        kinds = [k for k, _ in inj.clauses]
        assert kinds == ["crash", "bitflip", "outage"]

    def test_defaults_filled_in(self):
        inj = parse_fault_spec("crash")
        _, params = inj.clauses[0]
        assert params["p"] == 1.0 and params["attempts"] == 1

    def test_int_params_coerced(self):
        inj = parse_fault_spec("bitflip:n=3")
        assert inj.clauses[0][1]["n"] == 3
        assert isinstance(inj.clauses[0][1]["n"], int)

    @pytest.mark.parametrize("bad", [
        "", "   ", "seed=abc", "frobnicate", "crash:wat=1",
        "bitflip:n", "slow:delay=fast",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            parse_fault_spec("nope")

    def test_describe_roundtrips(self):
        inj = parse_fault_spec("seed=7;crash:p=0.5;outage:at=3:dur=1")
        again = parse_fault_spec(inj.describe())
        assert again.seed == inj.seed
        assert again.clauses == inj.clauses


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = parse_fault_spec("seed=9;crash:p=0.5;slow:p=0.5:delay=0.01")
        b = parse_fault_spec("seed=9;crash:p=0.5;slow:p=0.5:delay=0.01")
        for i in range(50):
            assert a.job_faults("chunk", i) == b.job_faults("chunk", i)

    def test_different_seed_differs(self):
        a = parse_fault_spec("seed=1;crash:p=0.5")
        b = parse_fault_spec("seed=2;crash:p=0.5")
        decisions_a = [a.job_faults("s", i).crash_attempts for i in range(64)]
        decisions_b = [b.job_faults("s", i).crash_attempts for i in range(64)]
        assert decisions_a != decisions_b

    def test_probability_roughly_respected(self):
        inj = parse_fault_spec("seed=3;crash:p=0.25")
        hits = sum(inj.job_faults("s", i).any for i in range(1000))
        assert 150 < hits < 350

    def test_corrupt_blob_reproducible(self):
        inj = parse_fault_spec("seed=5;bitflip:n=4")
        blob = bytes(range(256)) * 4
        out1, ev1 = inj.corrupt_blob(blob, "k")
        out2, ev2 = inj.corrupt_blob(blob, "k")
        assert out1 == out2 and ev1 == ev2
        assert out1 != blob and len(ev1[0]["bits"]) == 4


class TestOnlyPinning:
    def test_crash_only_one_job(self):
        inj = parse_fault_spec("seed=0;crash:only=3")
        planned = [inj.job_faults("s", i).crash_attempts for i in range(6)]
        assert planned == [0, 0, 0, 1, 0, 0]

    def test_bitflip_only_one_blob(self):
        inj = parse_fault_spec("seed=0;bitflip:only=1")
        blob = b"x" * 100
        same, ev0 = inj.corrupt_blob(blob, "k0", index=0)
        hit, ev1 = inj.corrupt_blob(blob, "k1", index=1)
        assert same == blob and ev0 == []
        assert hit != blob and ev1[0]["fault"] == "bitflip"

    def test_only_requires_index(self):
        """Pinned clauses never fire when the caller has no subject index."""
        inj = parse_fault_spec("seed=0;truncate:only=2")
        out, events = inj.corrupt_blob(b"y" * 50, "whole-blob")
        assert out == b"y" * 50 and events == []


class TestBlobCorruption:
    def test_truncate_keeps_fraction(self):
        inj = parse_fault_spec("seed=1;truncate:frac=0.25")
        out, events = inj.corrupt_blob(b"z" * 100, "k")
        assert len(out) == 25
        assert events[0] == {"fault": "truncate", "key": "k", "kept": 25}

    def test_no_storage_clauses_no_change(self):
        inj = parse_fault_spec("seed=1;crash;outage")
        out, events = inj.corrupt_blob(b"abc", "k")
        assert out == b"abc" and events == []

    def test_empty_blob_survives(self):
        inj = parse_fault_spec("seed=1;bitflip;truncate")
        out, _ = inj.corrupt_blob(b"", "k")
        assert out == b""


class TestLinkFaults:
    def test_collapse_from_spec(self):
        inj = parse_fault_spec("seed=4;outage:at=2:dur=3;outage:at=10:dur=1;drop:p=0.5")
        lf = inj.link_faults()
        assert lf.outages == ((2.0, 5.0), (10.0, 11.0))
        assert lf.drop_p == 0.5 and lf.seed == 4

    def test_no_wan_clauses_gives_none(self):
        assert parse_fault_spec("seed=4;crash").link_faults() is None

    def test_drop_deterministic_and_bounded(self):
        lf = LinkFaults(drop_p=1.0, max_attempts=3, seed=1)
        assert lf.dropped(0, 1) and lf.dropped(0, 2)
        assert not lf.dropped(0, 3)  # exhausted: deliver anyway

    def test_retransmit_backoff_doubles(self):
        lf = LinkFaults(backoff=0.5)
        assert [lf.retransmit_delay(a) for a in (1, 2, 3)] == [0.5, 1.0, 2.0]

    @pytest.mark.parametrize("kwargs", [
        {"drop_p": 1.5}, {"max_attempts": 0}, {"backoff": -1},
        {"outages": ((3.0, 1.0),)},
    ])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LinkFaults(**kwargs)


class TestJobFaults:
    def test_any_flag(self):
        assert not JobFaults().any
        assert JobFaults(crash_attempts=1).any
        assert JobFaults(delay=0.1).any


class TestOffendingTokenErrors:
    """Spec errors must name the clause token that failed, not just a kind."""

    @pytest.mark.parametrize("spec, token", [
        ("crash:p=0.5;slw:delay=1", "'slw:delay=1'"),
        ("seed=xyz;crash", "'seed=xyz'"),
        ("stall:dely=1", "'stall:dely=1'"),
        ("bloberr:op=sideways", "'bloberr:op=sideways'"),
        ("abort:p=high", "'abort:p=high'"),
        ("crash:p", "'crash:p'"),
    ])
    def test_error_names_offending_token(self, spec, token):
        with pytest.raises(FaultSpecError, match="offending token") as exc:
            parse_fault_spec(spec)
        assert token in str(exc.value)

    def test_unknown_kind_lists_valid_kinds(self):
        with pytest.raises(FaultSpecError) as exc:
            parse_fault_spec("frobnicate:p=1")
        message = str(exc.value)
        for kind in ("crash", "stall", "bloberr", "abort"):
            assert kind in message


class TestServiceFaults:
    def test_new_kinds_parse_with_defaults(self):
        inj = parse_fault_spec("seed=5;stall;bloberr;abort")
        params = dict(inj.clauses)
        assert params["stall"]["delay"] == 0.25
        assert params["bloberr"]["op"] == "any"
        assert params["abort"]["p"] == 1.0

    def test_handler_delay_deterministic(self):
        inj = parse_fault_spec("seed=5;stall:p=0.5:delay=0.3")
        delays = [inj.handler_delay(i) for i in range(50)]
        assert delays == [inj.handler_delay(i) for i in range(50)]
        assert set(delays) == {0.0, 0.3}

    def test_blob_error_respects_op_filter(self):
        inj = parse_fault_spec("seed=5;bloberr:p=1:op=write")
        assert inj.blob_error("write", 0)
        assert not inj.blob_error("read", 0)
        any_op = parse_fault_spec("seed=5;bloberr:p=1")
        assert any_op.blob_error("read", 0) and any_op.blob_error("write", 0)

    def test_abort_pinned_with_only(self):
        inj = parse_fault_spec("seed=5;abort:p=1:only=2")
        assert [inj.abort_request(i) for i in range(4)] == \
            [False, False, True, False]

    def test_no_service_clauses_are_inert(self):
        inj = parse_fault_spec("seed=5;crash:p=1")
        assert inj.handler_delay(0) == 0.0
        assert not inj.blob_error("read", 0)
        assert not inj.abort_request(0)

    def test_shard_kill_is_pure_and_seed_pinned(self):
        inj = parse_fault_spec("seed=9;shardkill:p=1")
        victim = inj.shard_kill(0, n_shards=2)
        assert victim in (0, 1)
        # pure: same (seed, index, n_shards) -> same victim, every time
        assert all(parse_fault_spec("seed=9;shardkill:p=1")
                   .shard_kill(0, n_shards=2) == victim for _ in range(5))
        # a different seed is free to condemn the other shard
        other = parse_fault_spec("seed=21;shardkill:p=1").shard_kill(0, 2)
        assert other in (0, 1)

    def test_shard_kill_explicit_target_wins(self):
        inj = parse_fault_spec("seed=9;shardkill:p=1:shard=1")
        assert inj.shard_kill(0, n_shards=4) == 1
        assert inj.shard_kill(7, n_shards=4) == 1  # pinned at every step
        # the pin is taken modulo the fleet size
        assert parse_fault_spec("seed=9;shardkill:p=1:shard=5") \
            .shard_kill(0, n_shards=2) == 1

    def test_shard_kill_gated_by_probability_and_only(self):
        never = parse_fault_spec("seed=9;shardkill:p=0")
        assert all(never.shard_kill(i, 2) is None for i in range(10))
        pinned = parse_fault_spec("seed=9;shardkill:p=1:only=3")
        hits = [pinned.shard_kill(i, 2) is not None for i in range(5)]
        assert hits == [False, False, False, True, False]

    def test_shard_kill_rejects_empty_fleet(self):
        inj = parse_fault_spec("seed=9;shardkill:p=1")
        with pytest.raises(ValueError):
            inj.shard_kill(0, n_shards=0)

    def test_without_shardkill_clause_nothing_dies(self):
        inj = parse_fault_spec("seed=9;stall:p=1")
        assert inj.shard_kill(0, n_shards=2) is None
