"""RCDF variables through every registered codec."""

import numpy as np
import pytest

from repro import COMPRESSORS
from repro.io import RcdfDataset

BOUNDED = [n for n, c in COMPRESSORS.items() if getattr(c, "pointwise_bound", True)]
UNBOUNDED = [n for n in COMPRESSORS if n not in BOUNDED]


def make(codec):
    ds = RcdfDataset()
    ds.create_dimension("y", 20)
    ds.create_dimension("x", 24)
    rng = np.random.default_rng(0)
    data = (np.sin(np.arange(20) / 3.0)[:, None]
            + np.cos(np.arange(24) / 4.0)[None, :]
            + 0.01 * rng.standard_normal((20, 24))).astype(np.float32)
    ds.add_variable("v", ("y", "x"), data, codec=codec, abs_eb=1e-2)
    return ds, data


@pytest.mark.parametrize("codec", BOUNDED)
def test_bounded_codecs_in_rcdf(codec):
    ds, data = make(codec)
    back = RcdfDataset.from_bytes(ds.to_bytes()).get("v")
    err = np.abs(back.data.astype(np.float64) - data.astype(np.float64)).max()
    assert err <= 1e-2 + 1e-6, codec
    assert back.codec == codec


@pytest.mark.parametrize("codec", UNBOUNDED)
def test_unbounded_codecs_in_rcdf(codec):
    """TTHRESH/BitGrooming are RMSE/precision-targeted; still round-trip."""
    ds, data = make(codec)
    back = RcdfDataset.from_bytes(ds.to_bytes()).get("v")
    rmse = float(np.sqrt(((back.data.astype(np.float64) - data) ** 2).mean()))
    assert rmse <= 1e-2, codec


def test_mixed_codec_archive():
    ds = RcdfDataset()
    ds.create_dimension("y", 16)
    ds.create_dimension("x", 16)
    rng = np.random.default_rng(1)
    base = np.outer(np.sin(np.arange(16) / 3), np.ones(16)).astype(np.float32)
    for i, codec in enumerate(("cliz", "sz3", "zfp", "sperr")):
        ds.add_variable(f"v{i}", ("y", "x"), base + np.float32(i),
                        codec=codec, abs_eb=1e-2)
    ds.add_variable("coords", ("x",), np.arange(16.0))
    back = RcdfDataset.from_bytes(ds.to_bytes())
    assert len(back.variable_names) == 5
    for i in range(4):
        got = back.get(f"v{i}").data
        assert np.abs(got - (base + i)).max() <= 1e-2 + 1e-6
