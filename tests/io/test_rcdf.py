"""Tests for the RCDF dataset container (the paper's NetCDF future work)."""

import numpy as np
import pytest

from repro.datasets import load
from repro.io import RcdfDataset, read_rcdf, write_rcdf


def make_dataset():
    ds = RcdfDataset(attrs={"title": "test archive", "model": "synthetic"})
    ds.create_dimension("lat", 12)
    ds.create_dimension("lon", 16)
    ds.create_dimension("time", 24)
    rng = np.random.default_rng(0)
    temp = (np.sin(np.linspace(0, 3, 12))[:, None, None]
            + 0.5 * np.cos(np.linspace(0, 2, 16))[None, :, None]
            + np.sin(2 * np.pi * np.arange(24) / 12)[None, None, :]
            + 0.01 * rng.standard_normal((12, 16, 24))).astype(np.float32)
    ds.add_variable("temp", ("lat", "lon", "time"), temp,
                    attrs={"units": "K", "axes": "lat,lon,time"},
                    codec="sz3", rel_eb=1e-3)
    ds.add_variable("lat", ("lat",), np.linspace(-60, 60, 12))
    return ds, temp


class TestSchema:
    def test_duplicate_dimension_rejected(self):
        ds = RcdfDataset()
        ds.create_dimension("x", 4)
        with pytest.raises(ValueError):
            ds.create_dimension("x", 5)

    def test_nonpositive_dimension_rejected(self):
        with pytest.raises(ValueError):
            RcdfDataset().create_dimension("x", 0)

    def test_undeclared_dimension_rejected(self):
        ds = RcdfDataset()
        with pytest.raises(ValueError):
            ds.add_variable("v", ("ghost",), np.zeros(3))

    def test_size_mismatch_rejected(self):
        ds = RcdfDataset()
        ds.create_dimension("x", 4)
        with pytest.raises(ValueError):
            ds.add_variable("v", ("x",), np.zeros(5))

    def test_duplicate_variable_rejected(self):
        ds = RcdfDataset()
        ds.create_dimension("x", 3)
        ds.add_variable("v", ("x",), np.zeros(3))
        with pytest.raises(ValueError):
            ds.add_variable("v", ("x",), np.zeros(3))

    def test_lossy_without_bound_rejected(self):
        ds = RcdfDataset()
        ds.create_dimension("x", 3)
        with pytest.raises(ValueError):
            ds.add_variable("v", ("x",), np.zeros(3), codec="sz3")

    def test_bad_attr_type_rejected(self):
        with pytest.raises(TypeError):
            RcdfDataset(attrs={"arr": np.zeros(3)})

    def test_dims_rank_mismatch_rejected(self):
        ds = RcdfDataset()
        ds.create_dimension("x", 3)
        with pytest.raises(ValueError):
            ds.add_variable("v", ("x", "x"), np.zeros(3))


class TestRoundtrip:
    def test_bytes_roundtrip(self):
        ds, temp = make_dataset()
        ds2 = RcdfDataset.from_bytes(ds.to_bytes())
        assert ds2.dimensions == {"lat": 12, "lon": 16, "time": 24}
        assert ds2.attrs["title"] == "test archive"
        assert set(ds2.variable_names) == {"temp", "lat"}
        # lossless variable is exact
        np.testing.assert_array_equal(ds2.get("lat").data, np.linspace(-60, 60, 12))
        # lossy variable honours its relative bound
        got = ds2.get("temp").data
        eb = 1e-3 * (temp.max() - temp.min())
        assert np.abs(got.astype(np.float64) - temp.astype(np.float64)).max() <= eb + 1e-6
        assert got.dtype == np.float32
        assert ds2.get("temp").attrs["units"] == "K"

    def test_file_roundtrip(self, tmp_path):
        ds, _ = make_dataset()
        path = tmp_path / "archive.rcdf"
        write_rcdf(path, ds)
        ds2 = read_rcdf(path)
        assert "temp" in ds2
        assert ds2.get("temp").data.shape == (12, 16, 24)

    def test_lazy_decode(self):
        ds, _ = make_dataset()
        ds2 = RcdfDataset.from_bytes(ds.to_bytes())
        assert "temp" in ds2._pending
        ds2.get("temp")
        assert "temp" not in ds2._pending

    def test_missing_variable_keyerror(self):
        ds, _ = make_dataset()
        with pytest.raises(KeyError):
            ds.get("nope")

    def test_compression_actually_happens(self):
        ds, temp = make_dataset()
        blob = ds.to_bytes()
        assert len(blob) < temp.nbytes


class TestCfConventions:
    def test_missing_value_derives_mask(self):
        ds = RcdfDataset()
        ds.create_dimension("y", 10)
        ds.create_dimension("x", 12)
        data = np.outer(np.arange(10.0), np.ones(12)).astype(np.float32)
        data[:3] = np.float32(9.96921e36)
        var = ds.add_variable("ssh", ("y", "x"), data,
                              attrs={"missing_value": 9.96921e36},
                              codec="cliz", rel_eb=1e-3)
        mask = var.derive_mask()
        assert mask is not None
        assert (~mask[:3]).all() and mask[3:].all()
        ds2 = RcdfDataset.from_bytes(ds.to_bytes())
        got = ds2.get("ssh").data
        # fill values come back exactly; valid region within bound
        assert (got[:3] == np.float32(9.96921e36)).all()
        span = data[3:].max() - data[3:].min()
        assert np.abs(got[3:] - data[3:]).max() <= 1e-3 * span + 1e-6

    def test_all_fill_variable_rejected(self):
        ds = RcdfDataset()
        ds.create_dimension("x", 4)
        var = ds.add_variable("v", ("x",), np.full(4, 5.0),
                              attrs={"missing_value": 5.0}, codec="sz3", rel_eb=1e-3)
        with pytest.raises(ValueError):
            var.derive_mask()

    def test_axes_attribute_feeds_tuner(self):
        ds, _ = make_dataset()
        kwargs = ds.get("temp").tuner_kwargs()
        assert kwargs == {"time_axis": 2, "horiz_axes": (0, 1)}

    def test_axes_default_from_dims(self):
        ds = RcdfDataset()
        ds.create_dimension("time", 6)
        ds.create_dimension("lat", 4)
        ds.create_dimension("lon", 5)
        var = ds.add_variable("v", ("time", "lat", "lon"), np.zeros((6, 4, 5)))
        assert var.tuner_kwargs() == {"time_axis": 0, "horiz_axes": (1, 2)}


class TestEndToEnd:
    def test_full_climate_archive(self, tmp_path):
        """Write a real synthetic dataset through the CliZ codec and read back."""
        field = load("Tsfc", shape=(24, 20, 48))
        ds = RcdfDataset(attrs={"source": "repro synthetic CESM"})
        for name, size in zip(("lat", "lon", "time"), field.shape):
            ds.create_dimension(name, size)
        ds.add_variable("tsfc", ("lat", "lon", "time"), field.data,
                        attrs={"missing_value": float(field.fill_value),
                               "axes": "lat,lon,time"},
                        codec="cliz", rel_eb=1e-3)
        path = tmp_path / "tsfc.rcdf"
        write_rcdf(path, ds)
        back = read_rcdf(path).get("tsfc")
        vals = field.data[field.mask]
        eb = 1e-3 * (vals.max() - vals.min())
        err = np.abs(back.data.astype(np.float64) - field.data.astype(np.float64))
        assert err[field.mask].max() <= eb + 1e-6
        assert (back.data[~field.mask] == field.data[~field.mask]).all()
