"""Tests for the error-bounded linear quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import DEFAULT_RADIUS, UNPREDICTABLE, LinearQuantizer


class TestConstruction:
    @pytest.mark.parametrize("eb", [0.0, -1.0, np.nan, np.inf])
    def test_bad_error_bound_rejected(self, eb):
        with pytest.raises(ValueError):
            LinearQuantizer(eb)

    def test_bad_radius_rejected(self):
        with pytest.raises(ValueError):
            LinearQuantizer(0.1, radius=1)

    def test_alphabet_size(self):
        assert LinearQuantizer(0.1, radius=16).alphabet_size == 32


class TestQuantize:
    def test_error_bound_always_honoured(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 100, 10000)
        preds = values + rng.normal(0, 5, 10000)
        q = LinearQuantizer(0.01)
        codes, rec = q.quantize(values, preds)
        assert np.abs(rec - values).max() <= 0.01

    def test_perfect_prediction_gives_center_code(self):
        q = LinearQuantizer(0.5)
        codes, rec = q.quantize(np.array([3.0]), np.array([3.0]))
        assert codes[0] == DEFAULT_RADIUS
        assert rec[0] == 3.0

    def test_large_residual_escapes_to_unpredictable(self):
        q = LinearQuantizer(1e-6, radius=8)
        codes, rec = q.quantize(np.array([1e6]), np.array([0.0]))
        assert codes[0] == UNPREDICTABLE
        assert rec[0] == 1e6  # exact

    def test_nonfinite_prediction_escapes(self):
        q = LinearQuantizer(0.1)
        codes, rec = q.quantize(np.array([1.0]), np.array([np.inf]))
        assert codes[0] == UNPREDICTABLE
        assert rec[0] == 1.0

    def test_huge_masked_style_values_stay_finite(self):
        """Values like 2^122 (CESM fill values) must not crash or emit NaN."""
        q = LinearQuantizer(0.1)
        codes, rec = q.quantize(np.array([2.0 ** 122]), np.array([0.0]))
        assert codes[0] == UNPREDICTABLE
        assert np.isfinite(rec[0])

    def test_code_range(self):
        rng = np.random.default_rng(1)
        values = rng.normal(0, 10, 1000)
        q = LinearQuantizer(0.05, radius=256)
        codes, _ = q.quantize(values, np.zeros(1000))
        assert codes.min() >= 0
        assert codes.max() < 512


class TestDequantize:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        values = rng.normal(0, 3, 500)
        preds = values + rng.normal(0, 0.5, 500)
        q = LinearQuantizer(0.02)
        codes, rec = q.quantize(values, preds)
        unpred = values[codes == UNPREDICTABLE]
        rec2 = q.dequantize(codes, preds, unpred)
        np.testing.assert_allclose(rec2, rec)

    def test_missing_unpredictables_raise(self):
        q = LinearQuantizer(1e-9, radius=4)
        codes, _ = q.quantize(np.array([100.0, 200.0]), np.zeros(2))
        assert (codes == UNPREDICTABLE).all()
        with pytest.raises(ValueError):
            q.dequantize(codes, np.zeros(2), np.array([100.0]))

    def test_count_unpredictable(self):
        q = LinearQuantizer(1e-9, radius=4)
        codes, _ = q.quantize(np.array([100.0, 0.0]), np.zeros(2))
        assert q.count_unpredictable(codes) == 1


@given(st.floats(min_value=1e-8, max_value=1e3),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=60, deadline=None)
def test_bound_property(eb, seed):
    """For any eb and data, |x - x̂| <= eb pointwise after quantization."""
    rng = np.random.default_rng(seed)
    values = rng.normal(0, 10, 200) * rng.choice([1, 1e4, 1e-4], 200)
    preds = values + rng.normal(0, 2, 200)
    q = LinearQuantizer(eb, radius=64)
    codes, rec = q.quantize(values, preds)
    assert np.abs(rec - values).max() <= eb
    unpred = values[codes == UNPREDICTABLE]
    rec2 = q.dequantize(codes, preds, unpred)
    np.testing.assert_allclose(rec2, rec)
