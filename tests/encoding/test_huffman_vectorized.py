"""Differential tests: vectorized Huffman decoder vs the scalar oracle.

The batched NumPy kernel (``decode_vectorized``) must be bit-identical to
the scalar loop (``decode_scalar``) on every stream — same symbols, same
final bit position, and the same ``EOFError`` on corrupt/truncated input.
"""

import numpy as np
import pytest

from repro.encoding.bitstream import BitWriter
from repro.encoding.huffman import HuffmanCode


def _encode(symbols, alphabet=None):
    symbols = np.asarray(symbols, dtype=np.int64)
    code = HuffmanCode.from_symbols(symbols, alphabet)
    writer = BitWriter()
    code.encode(symbols, writer)
    return code, writer.getvalue()


def _assert_differential(symbols, alphabet=None, bit_offset=0, pad=b""):
    symbols = np.asarray(symbols, dtype=np.int64)
    code, data = _encode(symbols, alphabet)
    data = pad + data if bit_offset else data
    ref, end_ref = code.decode_scalar(data, symbols.size, bit_offset)
    vec, end_vec = code.decode_vectorized(data, symbols.size, bit_offset)
    assert np.array_equal(ref, symbols)
    assert np.array_equal(vec, ref)
    assert end_vec == end_ref
    assert vec.dtype == np.int64
    return code, data


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_alphabets(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3000, 60_000))
        alphabet = int(rng.integers(2, 700))
        _assert_differential(rng.integers(0, alphabet, n))

    @pytest.mark.parametrize("p_zero", [0.5, 0.9, 0.99, 0.999])
    def test_skewed(self, p_zero):
        rng = np.random.default_rng(int(p_zero * 1000))
        n = 50_000
        syms = np.where(rng.random(n) < p_zero, 0, rng.integers(1, 64, n))
        _assert_differential(syms)

    def test_geometric_and_zipf(self):
        rng = np.random.default_rng(7)
        _assert_differential(np.minimum(rng.geometric(0.3, 30_000) - 1, 40))
        _assert_differential(np.minimum(rng.zipf(1.5, 30_000), 1000) - 1)

    def test_single_symbol_codebook(self):
        # Degenerate 1-symbol alphabet: every codeword is the same 1-bit code.
        _assert_differential(np.full(10_000, 3), alphabet=4)

    def test_two_symbol_extreme_skew(self):
        rng = np.random.default_rng(11)
        _assert_differential((rng.random(40_000) < 0.001).astype(np.int64))

    def test_equal_length_codebook(self):
        # Uniform frequencies => all codewords the same length => the
        # closed-form equal-length fast path.
        rng = np.random.default_rng(13)
        _assert_differential(rng.integers(0, 256, 30_000))

    def test_bit_offset(self):
        rng = np.random.default_rng(17)
        syms = rng.integers(0, 50, 20_000)
        code, data = _encode(syms)
        shifted = b"\xa5" + data  # full spare byte => bit_offset 8
        ref, end_ref = code.decode_scalar(shifted, syms.size, 8)
        vec, end_vec = code.decode_vectorized(shifted, syms.size, 8)
        assert np.array_equal(vec, ref)
        assert end_vec == end_ref

    def test_small_stream_identical(self):
        # Below the dispatch threshold decode() uses the scalar loop; the
        # vectorized kernel must still agree when called directly.
        rng = np.random.default_rng(19)
        _assert_differential(rng.integers(0, 10, 300))

    def test_dispatcher_matches_both(self):
        rng = np.random.default_rng(23)
        syms = np.where(rng.random(30_000) < 0.9, 0, rng.integers(1, 32, 30_000))
        code, data = _encode(syms)
        out, end = code.decode(data, syms.size)
        ref, end_ref = code.decode_scalar(data, syms.size)
        assert np.array_equal(out, ref)
        assert end == end_ref


class TestTruncation:
    def _truncation_case(self, symbols):
        code, data = _encode(symbols)
        n = len(symbols)
        for cut in (0, 1, len(data) // 4, len(data) // 2, len(data) - 1):
            with pytest.raises(EOFError):
                code.decode_scalar(data[:cut], n)
            with pytest.raises(EOFError):
                code.decode_vectorized(data[:cut], n)

    def test_truncated_skewed(self):
        rng = np.random.default_rng(29)
        n = 30_000
        self._truncation_case(np.where(rng.random(n) < 0.9, 0, rng.integers(1, 64, n)))

    def test_truncated_uniform(self):
        rng = np.random.default_rng(31)
        self._truncation_case(rng.integers(0, 256, 20_000))

    def test_truncated_single_symbol(self):
        self._truncation_case(np.full(10_000, 1))

    def test_over_read_raises(self):
        # Ask for more symbols than the stream holds.
        rng = np.random.default_rng(37)
        syms = rng.integers(0, 16, 5000)
        code, data = _encode(syms)
        with pytest.raises(EOFError):
            code.decode_vectorized(data, syms.size + 1000)
        with pytest.raises(EOFError):
            code.decode_scalar(data, syms.size + 1000)

    def test_empty_request_is_fine(self):
        rng = np.random.default_rng(41)
        syms = rng.integers(0, 16, 5000)
        code, data = _encode(syms)
        out, end = code.decode_vectorized(data, 0)
        assert out.size == 0 and end == 0

    def test_garbage_bytes(self):
        # Random bytes decoded against a sparse codebook must either decode
        # identically in both kernels or raise EOFError in both.
        rng = np.random.default_rng(43)
        syms = np.where(rng.random(20_000) < 0.95, 0, rng.integers(1, 300, 20_000))
        code, _ = _encode(syms)
        for trial in range(5):
            blob = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
            try:
                ref, end_ref = code.decode_scalar(blob, 8000)
            except EOFError:
                with pytest.raises(EOFError):
                    code.decode_vectorized(blob, 8000)
            else:
                vec, end_vec = code.decode_vectorized(blob, 8000)
                assert np.array_equal(vec, ref)
                assert end_vec == end_ref
