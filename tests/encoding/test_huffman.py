"""Tests for canonical length-limited Huffman coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitWriter
from repro.encoding.huffman import MAX_CODE_LENGTH, HuffmanCode


def roundtrip(symbols, alphabet=None):
    symbols = np.asarray(symbols, dtype=np.int64)
    code = HuffmanCode.from_symbols(symbols, alphabet)
    w = BitWriter()
    code.encode(symbols, w)
    decoded, pos = code.decode(w.getvalue(), symbols.size)
    np.testing.assert_array_equal(decoded, symbols)
    assert pos == w.bit_length
    return code, w


class TestConstruction:
    def test_single_symbol_alphabet(self):
        code = HuffmanCode.from_frequencies(np.array([0, 10, 0]))
        assert code.lengths[1] == 1
        assert code.lengths[0] == 0 and code.lengths[2] == 0

    def test_two_symbols_get_one_bit(self):
        code = HuffmanCode.from_frequencies(np.array([5, 5]))
        assert list(code.lengths) == [1, 1]
        assert sorted(code.codes[:2]) == [0, 1]

    def test_skewed_frequencies_shorter_code_for_frequent(self):
        freqs = np.array([1000, 10, 10, 10, 10])
        code = HuffmanCode.from_frequencies(freqs)
        assert code.lengths[0] == min(code.lengths[code.lengths > 0])

    def test_kraft_inequality_holds(self):
        rng = np.random.default_rng(1)
        freqs = rng.integers(0, 1000, 300)
        code = HuffmanCode.from_frequencies(freqs)
        used = code.lengths[code.lengths > 0].astype(int)
        assert sum(2.0 ** -used) <= 1.0 + 1e-12

    def test_length_limit_enforced_on_pathological_freqs(self):
        # Fibonacci-like frequencies force deep unrestricted trees.
        freqs = [1, 1]
        for _ in range(40):
            freqs.append(freqs[-1] + freqs[-2])
        code = HuffmanCode.from_frequencies(np.array(freqs))
        assert int(code.lengths.max()) <= MAX_CODE_LENGTH
        used = code.lengths[code.lengths > 0].astype(int)
        assert sum(2.0 ** -used) <= 1.0 + 1e-12

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCode.from_frequencies(np.array([-1, 2]))

    def test_canonical_codes_are_prefix_free(self):
        rng = np.random.default_rng(2)
        freqs = rng.integers(1, 50, 64)
        code = HuffmanCode.from_frequencies(freqs)
        entries = [(int(code.codes[s]), int(code.lengths[s])) for s in range(64)]
        for i, (c1, l1) in enumerate(entries):
            for j, (c2, l2) in enumerate(entries):
                if i == j:
                    continue
                lo = min(l1, l2)
                assert (c1 >> (l1 - lo)) != (c2 >> (l2 - lo)), "prefix collision"


class TestEncodeDecode:
    def test_simple_roundtrip(self):
        roundtrip([0, 1, 2, 1, 0, 0, 0, 3])

    def test_empty_stream(self):
        code = HuffmanCode.from_frequencies(np.array([1, 1]))
        w = BitWriter()
        code.encode(np.array([], dtype=np.int64), w)
        decoded, pos = code.decode(b"", 0)
        assert decoded.size == 0 and pos == 0

    def test_single_repeated_symbol(self):
        roundtrip(np.full(1000, 7), alphabet=8)

    def test_unknown_symbol_rejected_at_encode(self):
        code = HuffmanCode.from_frequencies(np.array([1, 0, 1]))
        with pytest.raises(ValueError):
            code.encode(np.array([1]), BitWriter())

    def test_decode_with_offset(self):
        symbols = np.array([0, 1, 0, 2, 2])
        code = HuffmanCode.from_symbols(symbols)
        w = BitWriter()
        w.write(0b1011, 4)  # leading junk
        code.encode(symbols, w)
        decoded, _ = code.decode(w.getvalue(), len(symbols), bit_offset=4)
        np.testing.assert_array_equal(decoded, symbols)

    def test_truncated_stream_raises(self):
        symbols = np.arange(32).repeat(3)
        code = HuffmanCode.from_symbols(symbols)
        w = BitWriter()
        code.encode(symbols, w)
        data = w.getvalue()[: max(1, w.bit_length // 16)]
        with pytest.raises(EOFError):
            code.decode(data, symbols.size)

    def test_expected_bits_matches_actual(self):
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 16, 5000)
        code = HuffmanCode.from_symbols(symbols)
        w = BitWriter()
        code.encode(symbols, w)
        freqs = np.bincount(symbols, minlength=16)
        assert code.expected_bits(freqs) == w.bit_length

    def test_large_skewed_stream_compresses(self):
        """SZ3-like bin stream: mostly zeros -> close to 1 bit/symbol."""
        rng = np.random.default_rng(4)
        symbols = np.where(rng.random(20000) < 0.9, 0, rng.integers(1, 64, 20000))
        code, w = roundtrip(symbols)
        assert w.bit_length < 0.45 * 8 * symbols.size  # well under 1 byte each


class TestSerialization:
    def test_roundtrip_table(self):
        rng = np.random.default_rng(5)
        symbols = rng.integers(0, 500, 3000)
        code = HuffmanCode.from_symbols(symbols)
        blob = code.serialize()
        code2, pos = HuffmanCode.deserialize(blob)
        assert pos == len(blob)
        np.testing.assert_array_equal(code2.lengths, code.lengths)
        np.testing.assert_array_equal(code2.codes, code.codes)

    def test_sparse_alphabet_table_is_compact(self):
        # alphabet 2^16 but only 8 symbols used: table must stay tiny.
        freqs = np.zeros(65536, dtype=np.int64)
        freqs[[0, 1, 100, 5000, 32768, 60000, 65534, 65535]] = 10
        code = HuffmanCode.from_frequencies(freqs)
        assert len(code.serialize()) < 64

    def test_empty_code_serialization(self):
        code = HuffmanCode(np.zeros(4, dtype=np.uint8))
        code2, _ = HuffmanCode.deserialize(code.serialize())
        assert code2.alphabet_size == 4
        assert not code2.lengths.any()

    def test_truncated_table_raises(self):
        symbols = np.arange(100)
        code = HuffmanCode.from_symbols(symbols)
        blob = code.serialize()
        with pytest.raises(EOFError):
            HuffmanCode.deserialize(blob[: len(blob) // 2])


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=2000))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(symbol_list):
    """Huffman encode/decode is lossless for arbitrary symbol streams."""
    roundtrip(symbol_list)


@given(st.integers(min_value=2, max_value=400), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_serialized_table_roundtrip_property(alphabet, seed):
    rng = np.random.default_rng(seed)
    freqs = rng.integers(0, 100, alphabet)
    freqs[rng.integers(0, alphabet)] += 1  # ensure at least one symbol
    code = HuffmanCode.from_frequencies(freqs)
    code2, _ = HuffmanCode.deserialize(code.serialize())
    np.testing.assert_array_equal(code2.lengths, code.lengths)
