"""Tests for RLE bitmaps/runs, the container format, and multi-Huffman coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.container import Container
from repro.encoding.multihuffman import (
    decode_grouped,
    encode_grouped,
    grouped_cost_bits,
    single_cost_bits,
)
from repro.encoding.rle import decode_runs, encode_runs, pack_bitmap, unpack_bitmap


class TestBitmap:
    def test_empty(self):
        out = unpack_bitmap(pack_bitmap(np.zeros(0, dtype=bool)))
        assert out.size == 0

    def test_all_true(self):
        bits = np.ones(1000, dtype=bool)
        np.testing.assert_array_equal(unpack_bitmap(pack_bitmap(bits)), bits)

    def test_shape_restored(self):
        bits = np.zeros((8, 9), dtype=bool)
        bits[2:5, 3:7] = True
        out = unpack_bitmap(pack_bitmap(bits), shape=(8, 9))
        np.testing.assert_array_equal(out, bits)

    def test_coherent_mask_compresses_well(self):
        """Land/ocean masks have long runs: must compress far below 1 bit/px."""
        y, x = np.mgrid[0:200, 0:300]
        mask = (np.sin(x / 40.0) + np.cos(y / 30.0)) > 0
        blob = pack_bitmap(mask)
        assert len(blob) * 8 < mask.size // 4

    @given(st.lists(st.booleans(), max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, bools):
        bits = np.array(bools, dtype=bool)
        np.testing.assert_array_equal(unpack_bitmap(pack_bitmap(bits)), bits)


class TestRuns:
    def test_roundtrip(self):
        vals = np.array([0, 0, 0, 2, 2, 1, 1, 1, 1, 5])
        np.testing.assert_array_equal(decode_runs(encode_runs(vals)), vals)

    def test_empty(self):
        assert decode_runs(encode_runs(np.array([], dtype=np.int64))).size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_runs(np.array([-1]))

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        vals = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(decode_runs(encode_runs(vals)), vals)


class TestContainer:
    def test_roundtrip_with_sections(self):
        c = Container("cliz", {"shape": [3, 4], "eb": 0.01})
        c.add_section("bins", b"\x01\x02\x03")
        c.add_section("mask", b"")
        blob = c.to_bytes()
        c2 = Container.from_bytes(blob)
        assert c2.codec == "cliz"
        assert c2.header == {"shape": [3, 4], "eb": 0.01}
        assert c2.section("bins") == b"\x01\x02\x03"
        assert c2.section("mask") == b""
        assert c2.section_names == ["bins", "mask"]

    def test_peek_codec(self):
        blob = Container("sperr").to_bytes()
        assert Container.peek_codec(blob) == "sperr"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            Container.from_bytes(b"XXXX\x01")

    def test_duplicate_section_rejected(self):
        c = Container("x")
        c.add_section("a", b"1")
        with pytest.raises(ValueError):
            c.add_section("a", b"2")

    def test_missing_section_keyerror(self):
        c = Container("x")
        with pytest.raises(KeyError):
            c.section("nope")

    def test_truncated_section_raises(self):
        c = Container("x")
        c.add_section("a", b"12345678")
        blob = c.to_bytes()
        with pytest.raises((EOFError, ValueError)):
            Container.from_bytes(blob[:-4])

    def test_crc_detects_corruption(self):
        c = Container("x", {"k": 1})
        c.add_section("a", b"payload-bytes")
        blob = bytearray(c.to_bytes())
        blob[10] ^= 0xFF
        with pytest.raises(ValueError, match="checksum"):
            Container.from_bytes(bytes(blob))

    def test_crc_detects_truncation(self):
        c = Container("x")
        c.add_section("a", b"12345678")
        blob = c.to_bytes()
        with pytest.raises((EOFError, ValueError)):
            Container.from_bytes(blob[: len(blob) // 2])

    def test_binary_payload_preserved(self):
        rng = np.random.default_rng(0)
        payload = rng.integers(0, 256, 10000, dtype=np.uint8).tobytes()
        c = Container("x")
        c.add_section("blob", payload)
        assert Container.from_bytes(c.to_bytes()).section("blob") == payload


class TestMultiHuffman:
    def test_two_group_roundtrip(self):
        rng = np.random.default_rng(0)
        symbols = rng.integers(0, 32, 5000)
        groups = (rng.random(5000) < 0.5).astype(np.int64)
        blob = encode_grouped(symbols, groups, 2)
        decoded, pos = decode_grouped(blob, groups)
        np.testing.assert_array_equal(decoded, symbols)
        assert pos == len(blob)

    def test_empty_group_allowed(self):
        symbols = np.array([1, 2, 3])
        groups = np.zeros(3, dtype=np.int64)
        blob = encode_grouped(symbols, groups, 3)
        decoded, _ = decode_grouped(blob, groups)
        np.testing.assert_array_equal(decoded, symbols)

    def test_empty_input(self):
        blob = encode_grouped(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 2)
        decoded, _ = decode_grouped(blob, np.array([], dtype=np.int64))
        assert decoded.size == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            encode_grouped(np.array([1, 2]), np.array([0]), 1)

    def test_out_of_range_group_rejected(self):
        with pytest.raises(ValueError):
            encode_grouped(np.array([1]), np.array([5]), 2)

    def test_wrong_group_map_at_decode_rejected(self):
        symbols = np.array([1, 2, 3, 4])
        groups = np.array([0, 0, 1, 1])
        blob = encode_grouped(symbols, groups, 2)
        with pytest.raises(ValueError):
            decode_grouped(blob, np.array([0, 1, 1, 1]))

    def test_grouping_helps_on_mixed_distributions(self):
        """Two populations with different peaks: split trees beat one tree.

        This is exactly the paper's quantization-bin dispersion scenario.
        """
        rng = np.random.default_rng(1)
        n = 20000
        g = (rng.random(n) < 0.5).astype(np.int64)
        a = np.clip(np.round(rng.normal(0, 0.7, n)), -3, 3).astype(np.int64) + 8
        b = np.clip(np.round(rng.normal(6, 0.7, n)), 3, 9).astype(np.int64) + 8
        symbols = np.where(g == 0, a, b)
        single = single_cost_bits(symbols)
        grouped = grouped_cost_bits(symbols, g, 2)
        assert grouped < single

    def test_cost_includes_map_charge(self):
        symbols = np.zeros(100, dtype=np.int64)
        groups = np.zeros(100, dtype=np.int64)
        base = grouped_cost_bits(symbols, groups, 1)
        charged = grouped_cost_bits(symbols, groups, 1, map_bits_per_entry=2.0, n_map_entries=50)
        assert charged == base + 100.0

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, seed, n_groups):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 500))
        symbols = rng.integers(0, 64, n)
        groups = rng.integers(0, n_groups, n)
        blob = encode_grouped(symbols, groups, n_groups)
        decoded, _ = decode_grouped(blob, groups)
        np.testing.assert_array_equal(decoded, symbols)
