"""Tests for the LZ77 lossless backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.lz import lz_compress, lz_decompress


class TestRoundtrip:
    @pytest.mark.parametrize("data", [
        b"",
        b"a",
        b"abc",
        b"aaaaaaaaaaaaaaaaaaaaaaaa",
        b"abcd" * 100,
        bytes(range(256)) * 4,
        b"\x00" * 10000,
    ])
    def test_exact_roundtrip(self, data):
        assert lz_decompress(lz_compress(data)) == data

    def test_random_bytes_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 50000, dtype=np.uint8).tobytes()
        assert lz_decompress(lz_compress(data)) == data

    def test_overlapping_match_semantics(self):
        # 'abc' repeated: matches overlap their own output.
        data = b"abcabcabcabcabcabcabcabcabcabc"
        assert lz_decompress(lz_compress(data)) == data

    def test_long_runs_chain_tokens(self):
        data = b"x" * 100000
        blob = lz_compress(data)
        assert lz_decompress(blob) == data
        assert len(blob) < 3000


class TestCompressionBehaviour:
    def test_repetitive_data_shrinks(self):
        data = b"climate-data-" * 2000
        assert len(lz_compress(data)) < len(data) // 10

    def test_incompressible_data_bounded_expansion(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        assert len(lz_compress(data)) <= len(data) + 6

    def test_zero_heavy_huffman_stream_shrinks(self):
        """The actual use case: residual redundancy in entropy-coded data."""
        rng = np.random.default_rng(2)
        data = bytes(np.where(rng.random(30000) < 0.95, 0, rng.integers(0, 256, 30000)).astype(np.uint8))
        assert len(lz_compress(data)) < len(data) // 3


class TestErrors:
    def test_empty_blob_raises(self):
        with pytest.raises(EOFError):
            lz_decompress(b"")

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            lz_decompress(b"\x07\x00")

    def test_truncated_stored_block(self):
        blob = lz_compress(b"hi")
        with pytest.raises(EOFError):
            lz_decompress(blob[:-1])

    def test_truncated_compressed_block(self):
        blob = lz_compress(b"abcd" * 100)
        assert blob[0] == 1  # actually compressed
        with pytest.raises((EOFError, ValueError)):
            lz_decompress(blob[: len(blob) - 3])


@given(st.binary(max_size=5000))
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(data):
    assert lz_decompress(lz_compress(data)) == data


@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=400))
@settings(max_examples=40, deadline=None)
def test_tiled_roundtrip_property(tile, reps):
    data = tile * reps
    blob = lz_compress(data)
    assert lz_decompress(blob) == data
    if len(data) > 2000:
        assert len(blob) < len(data)
