"""Tests for LEB128 varints and zigzag mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.varint import (
    decode_uvarint,
    decode_uvarint_array,
    encode_uvarint,
    encode_uvarint_array,
    zigzag_decode,
    zigzag_encode,
)


class TestScalarVarint:
    @pytest.mark.parametrize("value,expected", [
        (0, b"\x00"),
        (1, b"\x01"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (300, b"\xac\x02"),
    ])
    def test_known_encodings(self, value, expected):
        out = bytearray()
        encode_uvarint(value, out)
        assert bytes(out) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1, bytearray())

    def test_truncated_raises(self):
        with pytest.raises(EOFError):
            decode_uvarint(b"\x80", 0)

    def test_decode_returns_position(self):
        out = bytearray()
        encode_uvarint(300, out)
        encode_uvarint(5, out)
        v1, pos = decode_uvarint(bytes(out), 0)
        v2, pos = decode_uvarint(bytes(out), pos)
        assert (v1, v2) == (300, 5)
        assert pos == len(out)


class TestArrayVarint:
    def test_empty_array(self):
        assert encode_uvarint_array(np.array([], dtype=np.uint64)) == b""
        vals, pos = decode_uvarint_array(b"", 0)
        assert vals.size == 0 and pos == 0

    def test_matches_scalar_encoding(self):
        vals = np.array([0, 1, 127, 128, 300, 2**40], dtype=np.uint64)
        expected = bytearray()
        for v in vals:
            encode_uvarint(int(v), expected)
        assert encode_uvarint_array(vals) == bytes(expected)

    def test_truncated_array_raises(self):
        blob = encode_uvarint_array(np.array([5, 6], dtype=np.uint64))
        with pytest.raises(EOFError):
            decode_uvarint_array(blob, 3)

    def test_decode_respects_offset(self):
        blob = b"\xff" + encode_uvarint_array(np.array([42], dtype=np.uint64))
        # 0xff is a continuation byte; starting at pos=1 skips it.
        vals, pos = decode_uvarint_array(blob, 1, pos=1)
        assert vals[0] == 42


@given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), max_size=100))
@settings(max_examples=60, deadline=None)
def test_array_roundtrip_property(values):
    vals = np.array(values, dtype=np.uint64)
    blob = encode_uvarint_array(vals)
    decoded, pos = decode_uvarint_array(blob, len(vals))
    np.testing.assert_array_equal(decoded, vals)
    assert pos == len(blob)


@given(st.lists(st.integers(min_value=-2**62, max_value=2**62), max_size=100))
@settings(max_examples=60, deadline=None)
def test_zigzag_roundtrip_property(values):
    vals = np.array(values, dtype=np.int64)
    np.testing.assert_array_equal(zigzag_decode(zigzag_encode(vals)), vals)


def test_zigzag_known_values():
    np.testing.assert_array_equal(
        zigzag_encode(np.array([0, -1, 1, -2, 2])), np.array([0, 1, 2, 3, 4], dtype=np.uint64)
    )
