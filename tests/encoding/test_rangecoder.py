"""Tests for the static range (arithmetic) coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.rangecoder import RangeModel, rc_decode, rc_encode


def roundtrip(symbols, alphabet=None):
    symbols = np.asarray(symbols, dtype=np.int64)
    if alphabet is None:
        alphabet = int(symbols.max()) + 1 if symbols.size else 1
    model = RangeModel(np.bincount(symbols, minlength=alphabet))
    blob = rc_encode(symbols, model)
    decoded = rc_decode(blob, model, symbols.size)
    np.testing.assert_array_equal(decoded, symbols)
    return blob, model


class TestModel:
    def test_frequencies_quantize_to_total(self):
        model = RangeModel(np.array([100, 50, 25]))
        assert int(model.freq.sum()) == 1 << 14
        assert (model.freq > 0).all()

    def test_rare_symbols_keep_nonzero_mass(self):
        freqs = np.zeros(100, dtype=np.int64)
        freqs[0] = 10**9
        freqs[99] = 1
        model = RangeModel(freqs)
        assert model.freq[99] >= 1

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            RangeModel(np.zeros(5, dtype=np.int64))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RangeModel(np.array([-1, 2]))

    def test_serialization_roundtrip(self):
        rng = np.random.default_rng(0)
        model = RangeModel(rng.integers(0, 1000, 300))
        model2, pos = RangeModel.deserialize(model.serialize())
        np.testing.assert_array_equal(model2.freq, model.freq)

    def test_corrupt_model_rejected(self):
        model = RangeModel(np.array([3, 5]))
        blob = bytearray(model.serialize())
        blob[-1] ^= 0x01
        with pytest.raises((ValueError, EOFError, IndexError)):
            RangeModel.deserialize(bytes(blob))


class TestCodec:
    def test_simple(self):
        roundtrip([0, 1, 2, 1, 0, 0])

    def test_empty_stream(self):
        model = RangeModel(np.array([1, 1]))
        assert rc_decode(rc_encode(np.array([], dtype=np.int64), model), model, 0).size == 0

    def test_single_symbol_alphabet(self):
        roundtrip(np.zeros(5000, dtype=np.int64), alphabet=1)

    def test_long_skewed_stream(self):
        rng = np.random.default_rng(1)
        syms = np.where(rng.random(50000) < 0.95, 0, rng.integers(1, 32, 50000))
        blob, _ = roundtrip(syms)
        # near-entropy: far below Huffman's 1-bit floor per symbol
        assert len(blob) * 8 / syms.size < 0.6

    def test_beats_huffman_on_peaked_streams(self):
        from repro.encoding.bitstream import BitWriter
        from repro.encoding.huffman import HuffmanCode
        rng = np.random.default_rng(2)
        syms = np.where(rng.random(20000) < 0.9, 7, rng.integers(0, 16, 20000))
        model = RangeModel(np.bincount(syms, minlength=16))
        rc_len = len(rc_encode(syms, model))
        code = HuffmanCode.from_symbols(syms, 16)
        w = BitWriter()
        code.encode(syms, w)
        assert rc_len < w.bit_length / 8

    def test_out_of_alphabet_symbol_rejected(self):
        model = RangeModel(np.array([1, 1]))
        with pytest.raises(ValueError):
            rc_encode(np.array([2]), model)

    def test_zero_frequency_symbol_rejected(self):
        model = RangeModel(np.array([5, 0, 5]))
        with pytest.raises(ValueError):
            rc_encode(np.array([1]), model)


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=2000))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(symbol_list):
    symbols = np.array(symbol_list, dtype=np.int64)
    if symbols.size == 0:
        return
    roundtrip(symbols)


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=500))
@settings(max_examples=30, deadline=None)
def test_skew_roundtrip_property(seed, alphabet):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 3000))
    peak = int(rng.integers(0, alphabet))
    syms = np.where(rng.random(n) < 0.8, peak, rng.integers(0, alphabet, n))
    roundtrip(syms, alphabet)
