"""Additional Huffman edge cases: length limiting, adversarial tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitWriter
from repro.encoding.huffman import MAX_CODE_LENGTH, HuffmanCode


class TestLengthLimiting:
    def test_exact_power_alphabet_uniform(self):
        """Uniform 2^k alphabets get exactly k-bit codes."""
        for k in (1, 3, 6):
            code = HuffmanCode.from_frequencies(np.full(1 << k, 10))
            assert (code.lengths == k).all()

    def test_maximum_alphabet_at_limit(self):
        """2^16 uniform symbols exactly saturate the 16-bit limit."""
        code = HuffmanCode.from_frequencies(np.ones(1 << MAX_CODE_LENGTH, dtype=np.int64))
        assert (code.lengths == MAX_CODE_LENGTH).all()

    def test_extreme_skew_keeps_rare_symbols_decodable(self):
        freqs = np.ones(100, dtype=np.int64)
        freqs[0] = 10 ** 12
        code = HuffmanCode.from_frequencies(freqs)
        assert int(code.lengths.max()) <= MAX_CODE_LENGTH
        symbols = np.concatenate([np.zeros(50, np.int64), np.arange(100)])
        w = BitWriter()
        code.encode(symbols, w)
        decoded, _ = code.decode(w.getvalue(), symbols.size)
        np.testing.assert_array_equal(decoded, symbols)

    def test_geometric_frequencies(self):
        """Powers-of-two frequencies: worst case for unlimited depth."""
        freqs = np.array([1 << min(i, 40) for i in range(30)], dtype=np.int64)
        code = HuffmanCode.from_frequencies(freqs)
        assert int(code.lengths[code.lengths > 0].max()) <= MAX_CODE_LENGTH
        used = code.lengths[code.lengths > 0].astype(int)
        assert sum(2.0 ** -used) <= 1.0 + 1e-12

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=3000))
    @settings(max_examples=25, deadline=None)
    def test_limit_property(self, seed, alphabet):
        rng = np.random.default_rng(seed)
        # log-uniform frequencies stress the depth
        freqs = np.exp(rng.uniform(0, 25, alphabet)).astype(np.int64)
        code = HuffmanCode.from_frequencies(freqs)
        used = code.lengths[code.lengths > 0].astype(int)
        assert used.max() <= MAX_CODE_LENGTH
        assert sum(2.0 ** -used) <= 1.0 + 1e-12


class TestDecodeRobustness:
    def test_all_ones_stream(self):
        code = HuffmanCode.from_frequencies(np.array([1, 1]))
        decoded, _ = code.decode(b"\xff", 8)
        assert decoded.size == 8

    def test_offset_beyond_stream_raises(self):
        code = HuffmanCode.from_frequencies(np.array([1, 1]))
        with pytest.raises(EOFError):
            code.decode(b"\x00", 9)

    def test_decode_empty_alphabet_stream_raises(self):
        code = HuffmanCode(np.zeros(3, dtype=np.uint8))
        with pytest.raises(EOFError):
            code.decode(b"\x00", 1)
