"""Unit and property tests for MSB-first bit I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.bitstream import BitReader, BitWriter


class TestBitWriterBasics:
    def test_empty_writer_yields_empty_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte_msb_first(self):
        w = BitWriter()
        w.write(0b10110001, 8)
        assert w.getvalue() == bytes([0b10110001])

    def test_partial_byte_right_padded(self):
        w = BitWriter()
        w.write(0b101, 3)
        assert w.getvalue() == bytes([0b10100000])
        assert w.bit_length == 3

    def test_cross_byte_write(self):
        w = BitWriter()
        w.write(0xABC, 12)
        assert w.getvalue() == bytes([0xAB, 0xC0])

    def test_zero_bit_write_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0
        assert w.getvalue() == b""

    def test_write_bit(self):
        w = BitWriter()
        for b in [1, 0, 1, 1]:
            w.write_bit(b)
        assert w.getvalue() == bytes([0b10110000])

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(-1, 3)

    def test_nbits_over_64_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(0, 65)

    def test_64bit_write_roundtrip(self):
        w = BitWriter()
        val = (1 << 64) - 3
        w.write(val, 64)
        r = BitReader(w.getvalue())
        assert r.read(64) == val

    def test_getvalue_idempotent(self):
        w = BitWriter()
        w.write(0b1101, 4)
        assert w.getvalue() == w.getvalue()

    def test_write_after_getvalue_continues_stream(self):
        w = BitWriter()
        w.write(0xF, 4)
        _ = w.getvalue()
        w.write(0x0, 4)
        assert w.getvalue() == bytes([0xF0])


class TestBulkPaths:
    def test_write_array_fixed_width(self):
        w = BitWriter()
        w.write_array(np.array([1, 2, 3]), 4)
        assert w.getvalue() == bytes([0x12, 0x30])

    def test_varwidth_matches_scalar_writes(self):
        codes = np.array([0b1, 0b10, 0b111, 0b0], dtype=np.uint64)
        lens = np.array([1, 2, 3, 4], dtype=np.uint8)
        w1 = BitWriter()
        w1.write_varwidth(codes, lens)
        w2 = BitWriter()
        for c, l in zip(codes, lens):
            w2.write(int(c), int(l))
        assert w1.getvalue() == w2.getvalue()
        assert w1.bit_length == w2.bit_length == 10

    def test_varwidth_shape_mismatch_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_varwidth(np.array([1, 2], dtype=np.uint64), np.array([1], dtype=np.uint8))

    def test_write_bool_array(self):
        w = BitWriter()
        w.write_bool_array(np.array([1, 0, 1, 0, 1, 0, 1, 0]))
        assert w.getvalue() == bytes([0b10101010])

    def test_read_array_roundtrip(self):
        vals = np.arange(100, dtype=np.uint64) % 32
        w = BitWriter()
        w.write_array(vals, 5)
        r = BitReader(w.getvalue())
        np.testing.assert_array_equal(r.read_array(100, 5), vals)

    def test_read_bool_array_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 777).astype(np.uint8)
        w = BitWriter()
        w.write_bool_array(bits)
        r = BitReader(w.getvalue())
        np.testing.assert_array_equal(r.read_bool_array(777), bits)


class TestBitReader:
    def test_read_past_end_raises(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    def test_bit_length_limit_enforced(self):
        r = BitReader(b"\xff", bit_length=3)
        assert r.read(3) == 0b111
        with pytest.raises(EOFError):
            r.read_bit()

    def test_bit_length_beyond_data_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\xff", bit_length=9)

    def test_seek(self):
        r = BitReader(bytes([0b10110001]))
        r.seek(4)
        assert r.read(4) == 0b0001
        r.seek(0)
        assert r.read(4) == 0b1011

    def test_seek_out_of_range(self):
        r = BitReader(b"\x00")
        with pytest.raises(ValueError):
            r.seek(9)

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00")
        r.read(5)
        assert r.bits_remaining == 11


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**32 - 1),
                          st.integers(min_value=1, max_value=32)), max_size=200))
@settings(max_examples=60, deadline=None)
def test_scalar_roundtrip_property(pairs):
    """Any sequence of (value, width) writes reads back exactly."""
    pairs = [(v & ((1 << n) - 1), n) for v, n in pairs]
    w = BitWriter()
    for v, n in pairs:
        w.write(v, n)
    r = BitReader(w.getvalue(), bit_length=w.bit_length)
    for v, n in pairs:
        assert r.read(n) == v
    assert r.bits_remaining == 0


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_mixed_scalar_and_bulk_property(n, width, seed):
    """Interleaving scalar writes and bulk array writes preserves order."""
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, 1 << width, n).astype(np.uint64)
    w = BitWriter()
    w.write(0b101, 3)
    w.write_array(arr, width)
    w.write(0b11, 2)
    r = BitReader(w.getvalue())
    assert r.read(3) == 0b101
    np.testing.assert_array_equal(r.read_array(n, width), arr)
    assert r.read(2) == 0b11
