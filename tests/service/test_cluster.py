"""The sharded cluster: consistent-hash routing and a live two-shard fleet."""

import http.client
import json
import time

import numpy as np
import pytest

from repro.obs import trace
from repro.service.blobstore import BlobStore, KeyRing, blob_key, shard_for_key
from repro.service.cluster import ClusterConfig, ClusterServer
from repro.service.schemas import encode_array


@pytest.fixture(autouse=True)
def clean_run():
    trace.end_run()
    yield
    trace.end_run()


# ---------------------------------------------------------------------- #
class TestKeyRing:
    def test_ownership_is_a_pure_function(self):
        keys = [blob_key(bytes([i])) for i in range(200)]
        ring = KeyRing(4)
        for key in keys:
            owner = ring.owner(key)
            assert owner == shard_for_key(key, 4) == KeyRing(4).owner(key)
            assert 0 <= owner < 4

    def test_successors_cover_every_shard_owner_first(self):
        ring = KeyRing(3)
        key = blob_key(b"somewhere")
        succ = ring.successors(key)
        assert succ[0] == ring.owner(key)
        assert sorted(succ) == [0, 1, 2]

    def test_load_is_roughly_balanced(self):
        keys = [blob_key(bytes([i, j])) for i in range(50) for j in range(20)]
        counts = [0, 0, 0]
        for key in keys:
            counts[shard_for_key(key, 3)] += 1
        assert min(counts) > len(keys) / 3 * 0.5  # no starved shard

    def test_adding_a_shard_moves_a_bounded_slice(self):
        keys = [blob_key(bytes([i, j])) for i in range(40) for j in range(25)]
        moved = sum(shard_for_key(k, 3) != shard_for_key(k, 4) for k in keys)
        # consistent hashing: ~1/4 of keys move for 3 -> 4; modulo
        # hashing would move ~3/4. Allow generous slack.
        assert moved / len(keys) < 0.5

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ValueError):
            KeyRing(0)
        with pytest.raises(ValueError):
            BlobStore("/tmp/unused-ring", partition=(2, 2))
        with pytest.raises(ValueError):
            BlobStore("/tmp/unused-ring", partition=(-1, 2))


def test_partitioned_stores_tile_the_keyspace(tmp_path):
    shards = [BlobStore(tmp_path, partition=(i, 3)) for i in range(3)]
    keys = [shards[0].put(bytes([i]) * 64) for i in range(30)]
    for key in keys:
        owners = [s.owns(key) for s in shards]
        assert sum(owners) == 1  # exactly one shard owns each key
    union = sorted(k for s in shards for k in s.owned_keys())
    assert union == sorted(keys)
    for shard in shards:
        owned = shard.verify_all(owned_only=True)
        assert set(owned) == set(shard.owned_keys())
        assert all(owned.values())


# ---------------------------------------------------------------------- #
def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        payload = resp.read()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        doc = json.loads(payload) if payload.startswith(b"{") else payload
        return resp.status, doc, headers
    finally:
        conn.close()


def _post(port, path, doc):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request("POST", path, body=json.dumps(doc).encode(),
                     headers={"X-Client": "test"})
        resp = conn.getresponse()
        body = json.loads(resp.read() or b"{}")
        return resp.status, body, {k.lower(): v for k, v in resp.getheaders()}
    finally:
        conn.close()


def _doc(step):
    arr = (np.arange(240, dtype=np.float32) * 0.01
           + step).reshape(4, 6, 10)
    return {"codec": "cliz", "array": encode_array(arr), "rel_eb": 1e-3}


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster-store")
    server = ClusterServer(ClusterConfig(
        n_shards=2, store_root=root, max_queue=8,
        rate=1000.0, burst=100000,
        probe_interval=0.1, backoff_base=0.3, backoff_cap=1.0,
        start_timeout=20.0, hedge_budget=0.2)).start()
    yield server
    server.stop()


class TestClusterIntegration:
    def test_roundtrip_through_the_router(self, cluster):
        keys = {}
        for step in range(4):
            status, body, hdrs = _post(cluster.port, "/compress", _doc(step))
            assert status == 200, body
            assert "x-repro-shard" in hdrs  # serving shard is visible
            keys[body["key"]] = hdrs["x-repro-shard"]
        for key in keys:
            status, body, hdrs = _post(cluster.port, "/decompress",
                                       {"key": key})
            assert status == 200, body
            # decompress is owner-routed, independent of who compressed
            assert int(hdrs["x-repro-shard"]) == shard_for_key(key, 2)

    def test_health_exposes_topology_and_model(self, cluster):
        status, body, _ = _get(cluster.port, "/health")
        assert status == 200
        assert [s["index"] for s in body["shards"]] == [0, 1]
        assert all(s["state"] == "healthy" for s in body["shards"])
        assert body["backoff_model"]["max_restarts"] == 5
        status, _, _ = _get(cluster.port, "/ready")
        assert status == 200

    def test_metrics_scrape_covers_the_fleet(self, cluster):
        status, text, headers = _get(cluster.port, "/metrics")
        assert status == 200
        assert "text/plain" in headers["content-type"]
        text = text.decode() if isinstance(text, bytes) else str(text)
        assert 'repro_service_cluster_shard_state{shard="0"}' in text
        assert 'repro_service_cluster_shard_state{shard="1"}' in text

    def test_router_hygiene(self, cluster):
        status, body, _ = _post(cluster.port, "/nothing", {})
        assert status == 404 and body["error"] == "not_found"
        status, body, _ = _get(cluster.port, "/compress")
        assert status == 405
        # a shard-rendered 400 relays through untouched
        status, body, _ = _post(cluster.port, "/compress", {"codec": "nope"})
        assert status == 400 and body["error"] == "bad_request"

    def test_kill_recover_and_zero_corruption(self, cluster):
        status, body, _ = _post(cluster.port, "/compress", _doc(77))
        assert status == 200
        key = body["key"]
        victim = shard_for_key(key, 2)
        pid = cluster.supervisor.kill(victim)
        assert pid is not None
        # reads of the victim's keys fail over to the sibling meanwhile
        status, body, _ = _post(cluster.port, "/decompress", {"key": key})
        assert status == 200, body
        # the supervisor restarts the shard within its modeled bound
        bound = cluster.supervisor.max_recovery_seconds()
        deadline = time.monotonic() + bound
        while time.monotonic() < deadline:
            if _get(cluster.port, "/ready")[0] == 200:
                break
            time.sleep(0.05)
        assert _get(cluster.port, "/ready")[0] == 200
        assert cluster.supervisor.handles[victim].restarts >= 1
        # no collateral damage anywhere in the shared store
        intact = BlobStore(cluster.store_root).verify_all()
        assert intact and all(intact.values())

    def test_stop_is_idempotent(self, tmp_path):
        server = ClusterServer(ClusterConfig(
            n_shards=2, store_root=tmp_path / "s", probe_interval=0.1,
            start_timeout=20.0))
        server.start()
        server.stop()
        server.stop()  # second stop is a no-op
        assert all(h.proc is None for h in server.supervisor.handles)
