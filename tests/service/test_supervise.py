"""ShardSupervisor state machine on fake clocks, procs, and probes."""

import pytest

from repro.obs import trace
from repro.service.schemas import ShardUnavailableError
from repro.service.supervise import STATE_CODES, ShardSupervisor


@pytest.fixture(autouse=True)
def clean_run():
    trace.end_run()
    yield
    trace.end_run()


class FakeProc:
    """A process the harness can kill, crash, or keep alive."""

    _next_pid = 1000

    def __init__(self):
        FakeProc._next_pid += 1
        self.pid = FakeProc._next_pid
        self.returncode = None
        self.killed = False
        self.terminated = False

    def poll(self):
        return self.returncode

    def kill(self):
        self.killed = True
        self.returncode = -9

    def terminate(self):
        self.terminated = True
        self.returncode = -15

    def wait(self, timeout=None):
        return self.returncode

    def crash(self, code=1):
        self.returncode = code


class Harness:
    """A supervisor wired to fakes; the test scripts every probe answer."""

    def __init__(self, n_shards=2, **kw):
        self.now = 0.0
        self.procs: dict[int, list[FakeProc]] = {}
        self.ports: dict[int, int | None] = {}
        self.health: dict[int, object] = {}  # dict -> healthy, Exception -> fail
        self.sup = ShardSupervisor(
            n_shards,
            spawn=self._spawn, port_of=self.ports.get, probe=self._probe,
            clock=lambda: self.now, sleep=lambda dt: None,
            probe_interval=0.25, probe_fail_threshold=3,
            start_timeout=5.0, backoff_base=0.25, backoff_cap=4.0,
            max_restarts=3, restart_window=60.0, **kw)

    def _spawn(self, index):
        proc = FakeProc()
        self.procs.setdefault(index, []).append(proc)
        self.ports[index] = 9000 + index
        self.health.setdefault(index, {"status": "ok", "requests": 0})
        return proc

    def _probe(self, port):
        answer = self.health[port - 9000]
        if isinstance(answer, Exception):
            raise answer
        return answer

    def proc(self, index) -> FakeProc:
        return self.procs[index][-1]

    def state(self, index) -> str:
        return self.sup.handles[index].state

    def tick(self, n=1, dt=0.25):
        for _ in range(n):
            self.now += dt
            self.sup.probe_once()


def test_start_probes_to_healthy():
    h = Harness()
    h.sup.start(thread=False)
    assert [h.state(i) for i in range(2)] == ["starting", "starting"]
    h.tick()
    assert [h.state(i) for i in range(2)] == ["healthy", "healthy"]
    assert h.sup.healthy_shards() == [0, 1]
    assert h.sup.shard_port(0) == 9000


def test_crash_restarts_with_backoff_schedule():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    delays = []
    for _ in range(3):
        h.proc(0).crash()
        h.tick(dt=0.0)  # death detected immediately via poll()
        assert h.state(0) == "backoff"
        delays.append(h.sup.handles[0].next_restart_at - h.now)
        h.now = h.sup.handles[0].next_restart_at
        h.sup.probe_once()  # respawn fires exactly at the scheduled time
        assert h.state(0) == "starting"
        h.tick()
        assert h.state(0) == "healthy"
    # bounded exponential: base * 2^k
    assert delays == [0.25, 0.5, 1.0]
    assert h.sup.handles[0].restarts == 3
    assert len(h.procs[0]) == 4


def test_backoff_is_capped():
    h = Harness(1)
    # 10 allowed restarts inside a huge window, so the cap is reachable
    h.sup.max_restarts = 10
    h.sup.start(thread=False)
    h.tick()
    delays = []
    for _ in range(6):
        h.proc(0).crash()
        h.sup.probe_once()
        delays.append(h.sup.handles[0].next_restart_at - h.now)
        h.now = h.sup.handles[0].next_restart_at
        h.sup.probe_once()
        h.tick()
    assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0]  # capped at 4.0


def test_crash_loop_breaker_marks_dead():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    for _ in range(3):  # max_restarts inside the window
        h.proc(0).crash()
        h.sup.probe_once()
        h.now = h.sup.handles[0].next_restart_at
        h.sup.probe_once()
        h.tick()
    h.proc(0).crash()  # one more than the breaker allows
    h.sup.probe_once()
    assert h.state(0) == "dead"
    assert h.sup.handles[0].next_restart_at is None
    # the dead shard's keyspace is reported degraded; sibling unaffected
    assert h.sup.degraded_partitions() == [0]
    assert h.sup.healthy_shards() == [1]
    h.tick(50)  # no spontaneous resurrection
    assert h.state(0) == "dead"


def test_old_crashes_age_out_of_the_window():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    for _ in range(3):
        h.proc(0).crash()
        h.sup.probe_once()
        h.now = h.sup.handles[0].next_restart_at
        h.sup.probe_once()
        h.tick()
        h.now += 61.0  # every crash leaves the 60s window before the next
    h.proc(0).crash()
    h.sup.probe_once()
    assert h.state(0) == "backoff"  # not dead: stamps aged out


def test_revive_gives_a_dead_shard_another_chance():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    for _ in range(4):
        h.proc(0).crash()
        h.sup.probe_once()
        if h.sup.handles[0].next_restart_at is not None:
            h.now = h.sup.handles[0].next_restart_at
            h.sup.probe_once()
            h.tick()
    assert h.state(0) == "dead"
    h.sup.revive(0)
    h.tick()
    assert h.state(0) == "healthy"
    with pytest.raises(ShardUnavailableError):
        h.sup.revive(0)  # only dead shards can be revived


def test_probe_failures_escalate_to_kill_at_threshold():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    h.health[0] = ConnectionError("hung")
    h.tick()
    assert h.state(0) == "suspect"
    assert h.sup.healthy_shards() == [1]  # suspects take no new traffic
    h.tick()
    assert h.state(0) == "suspect"
    h.tick()  # third consecutive failure: treated as a hang
    assert h.proc(0).killed or len(h.procs[0]) > 1
    assert h.state(0) in ("backoff", "starting")
    # recovery: the respawn probes healthy again
    h.health[0] = {"status": "ok"}
    h.now = h.sup.handles[0].next_restart_at or h.now
    h.sup.probe_once()
    h.tick()
    assert h.state(0) == "healthy"
    assert h.sup.handles[0].probe_failures == 0


def test_one_probe_blip_recovers_without_restart():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    h.health[0] = ConnectionError("blip")
    h.tick()
    assert h.state(0) == "suspect"
    h.health[0] = {"status": "ok"}
    h.tick()
    assert h.state(0) == "healthy"
    assert len(h.procs[0]) == 1  # never restarted


def test_start_timeout_counts_as_death():
    h = Harness(1)
    h.sup.start(thread=False)
    h.ports[0] = None  # the shard never reports a port
    h.tick(21)  # 5.25s > start_timeout=5.0
    assert h.state(0) == "backoff"


def test_note_failure_marks_suspect():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    h.sup.note_failure(0)
    assert h.state(0) == "suspect"
    assert h.sup.handles[0].probe_asap
    h.tick()  # next probe succeeds: back to healthy
    assert h.state(0) == "healthy"


def test_stop_terminates_every_live_proc():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    procs = [h.proc(0), h.proc(1)]
    h.sup.stop()
    assert all(p.terminated for p in procs)
    assert all(h.state(i) == "stopped" for i in range(2))
    # stop again: idempotent
    h.sup.stop()


def test_table_and_models_are_machine_readable():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    table = h.sup.table()
    assert [r["index"] for r in table] == [0, 1]
    assert all(r["state"] == "healthy" and r["pid"] for r in table)
    model = h.sup.backoff_model()
    assert model["backoff_base_seconds"] == 0.25
    assert model["max_restarts"] == 3
    # the modeled recovery bound dominates one real detect+restart cycle
    assert h.sup.max_recovery_seconds() > (
        model["probe_interval_seconds"] * model["probe_fail_threshold"]
        + model["backoff_cap_seconds"])
    assert set(STATE_CODES) == {
        "stopped", "starting", "healthy", "suspect", "backoff", "dead"}


def test_retry_after_hint_tracks_backoff():
    h = Harness()
    h.sup.start(thread=False)
    h.tick()
    assert h.sup.retry_after_hint(0) == pytest.approx(0.25)
    h.proc(0).crash()
    h.sup.probe_once()
    hint = h.sup.retry_after_hint(0)
    # scheduled restart delay plus one probe round
    assert hint == pytest.approx(0.25 + 0.25)
    assert h.sup.retry_after_hint() == pytest.approx(0.25)  # sibling healthy


def test_bad_shard_count_rejected():
    with pytest.raises(ValueError):
        ShardSupervisor(0, spawn=lambda i: FakeProc(),
                        port_of=lambda i: None)
