"""Admission control and circuit breakers on an injected clock."""

import pytest

from repro.obs import trace
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.breakers import BreakerBoard, CodecBreaker
from repro.service.schemas import QueueFullError, RateLimitedError


@pytest.fixture(autouse=True)
def clean_run():
    trace.end_run()
    yield
    trace.end_run()


class Clock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = Clock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take()
        assert wait == pytest.approx(0.5)
        clock.now += 0.5  # one token refilled
        assert bucket.try_take() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = Clock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.now += 1000.0
        bucket.try_take()
        bucket.try_take()
        assert bucket.try_take() > 0

    def test_validates(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestAdmission:
    def test_queue_bound_sheds_and_releases(self):
        adm = AdmissionController(max_queue=2, rate=100, burst=50,
                                  clock=Clock())
        adm.admit("a")
        adm.admit("a")
        with pytest.raises(QueueFullError) as exc:
            adm.admit("a")
        assert exc.value.retry_after is not None
        adm.release()
        adm.admit("a")  # slot freed
        assert adm.snapshot()["depth"] == 2

    def test_rate_gate_is_per_client(self):
        adm = AdmissionController(max_queue=50, rate=1.0, burst=2,
                                  clock=Clock())
        adm.admit("alice"), adm.release()
        adm.admit("alice"), adm.release()
        with pytest.raises(RateLimitedError) as exc:
            adm.admit("alice")
        assert exc.value.retry_after == pytest.approx(1.0)
        adm.admit("bob")  # a different client has its own bucket
        adm.release()

    def test_rate_gate_runs_before_queue(self):
        # a rate-shed request must not consume a queue slot
        adm = AdmissionController(max_queue=1, rate=1.0, burst=1,
                                  clock=Clock())
        adm.admit("c")
        with pytest.raises(RateLimitedError):
            adm.admit("c")
        assert adm.snapshot()["depth"] == 1

    def test_gauges_published(self):
        run = trace.start_run()
        adm = AdmissionController(max_queue=3, clock=Clock())
        adm.admit("x")
        snap = run.metrics.snapshot()
        assert snap["service.queue.depth"]["value"] == 1.0
        assert snap["service.queue.limit"]["value"] == 3.0


class TestBreaker:
    def test_trips_after_threshold_consecutive(self):
        b = CodecBreaker("cliz", threshold=3, cooldown=10, clock=Clock())
        for _ in range(2):
            b.record(False)
        assert b.allow() and b.state == "closed"  # two failures: still closed
        b.record(False)  # the third consecutive failure trips it
        assert b.state == "open" and not b.allow()

    def test_success_resets_consecutive(self):
        b = CodecBreaker("cliz", threshold=2, cooldown=10, clock=Clock())
        b.record(False)
        b.record(True)
        b.record(False)
        assert b.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = Clock()
        b = CodecBreaker("cliz", threshold=1, cooldown=5.0, clock=clock)
        b.record(False)
        assert not b.allow()
        assert 0 < b.retry_after() <= 5.0
        clock.now += 5.0
        assert b.allow()  # the single probe
        assert not b.allow()  # second concurrent probe is shut out
        b.record(True)
        assert b.state == "closed" and b.allow()

    def test_failed_probe_reopens(self):
        clock = Clock()
        b = CodecBreaker("cliz", threshold=1, cooldown=5.0, clock=clock)
        b.record(False)
        clock.now += 5.0
        assert b.allow()
        b.record(False)
        assert b.state == "open"
        assert b.retry_after() == pytest.approx(5.0)

    def test_board_isolates_codecs_and_snapshots(self):
        board = BreakerBoard(threshold=1, cooldown=9, clock=Clock())
        board.for_codec("cliz").record(False)
        assert not board.for_codec("cliz").allow()
        assert board.for_codec("sz3").allow()
        snap = board.snapshot()
        assert snap["cliz"]["state"] == "open"
        assert snap["sz3"]["state"] in ("closed", "half_open")
        assert board.any_open()

    def test_state_gauge_published(self):
        run = trace.start_run()
        b = CodecBreaker("qoz", threshold=1, cooldown=5, clock=Clock())
        b.record(False)
        snap = run.metrics.snapshot()
        assert snap["service.breaker.qoz"]["value"] == 1.0
        counters = {k: v["value"] for k, v in snap.items()
                    if k.startswith("service.breaker.qoz.")}
        assert counters.get("service.breaker.qoz.tripped") == 1

    def test_validates(self):
        with pytest.raises(ValueError):
            CodecBreaker("x", threshold=0)
        with pytest.raises(ValueError):
            CodecBreaker("x", cooldown=0)
