"""End-to-end HTTP tests for the service app (real sockets, live server)."""

import http.client
import json

import numpy as np
import pytest

from repro.faults import parse_fault_spec
from repro.obs import trace
from repro.service.app import ServiceConfig, ServiceServer
from repro.service.drill import DrillClock
from repro.service.schemas import encode_array


@pytest.fixture(autouse=True)
def clean_run():
    trace.end_run()
    trace.start_run(tags={"test": "service"})
    yield
    trace.end_run()


@pytest.fixture
def server(tmp_path):
    srv = ServiceServer(ServiceConfig(
        store_root=tmp_path / "blobs", max_queue=4,
        rate=1000.0, burst=10000)).start()
    yield srv
    srv.stop()


def call(port, method, path, doc=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    body = None if doc is None else json.dumps(doc).encode()
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else {}, \
            {k.lower(): v for k, v in resp.getheaders()}
    finally:
        conn.close()


def field(shape=(6, 10, 20)):
    z, y, x = np.meshgrid(*(np.arange(s) for s in shape), indexing="ij")
    return (np.sin(0.2 * x) * np.cos(0.3 * y) + 0.05 * z).astype(np.float32)


def compress_doc(codec="cliz", **extra):
    doc = {"codec": codec, "array": encode_array(field()), "rel_eb": 1e-3,
           "chunks": 2}
    doc.update(extra)
    return doc


class TestRoundTrip:
    def test_compress_decompress_within_bound(self, server):
        arr = field()
        status, body, _ = call(server.port, "POST", "/compress",
                               compress_doc())
        assert status == 200 and body["ratio"] > 1
        status, body, _ = call(server.port, "POST", "/decompress",
                               {"key": body["key"]})
        assert status == 200 and body["salvaged"] is False
        back = np.frombuffer(
            __import__("base64").b64decode(body["array"]["data"]),
            dtype=body["array"]["dtype"]).reshape(body["array"]["shape"])
        bound = 1e-3 * (arr.max() - arr.min())
        assert np.abs(back - arr).max() <= bound * 1.0001

    def test_estimate(self, server):
        status, body, _ = call(server.port, "POST", "/estimate",
                               compress_doc("sz3"))
        assert status == 200
        assert body["sample_ratio"] > 1
        assert body["estimated_compressed_bytes"] > 0

    def test_health_and_ready(self, server):
        status, body, _ = call(server.port, "GET", "/health")
        assert status == 200 and body["status"] == "ok"
        assert body["queue"]["limit"] == 4
        status, body, _ = call(server.port, "GET", "/ready")
        assert status == 200


class TestClassification:
    def test_bad_json_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("POST", "/compress", body=b"{not json")
            resp = conn.getresponse()
            body = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 400 and body["error"] == "bad_request"

    def test_unknown_codec_is_400(self, server):
        status, body, _ = call(server.port, "POST", "/compress",
                               compress_doc("nope"))
        assert status == 400 and body["error"] == "bad_request"

    def test_unknown_key_is_404(self, server):
        status, body, _ = call(server.port, "POST", "/decompress",
                               {"key": "ab" * 20})
        assert status == 404 and body["error"] == "not_found"

    def test_unknown_path_is_404_and_wrong_method_405(self, server):
        status, body, _ = call(server.port, "POST", "/nope", {})
        assert status == 404
        status, _, _ = call(server.port, "GET", "/compress")
        assert status == 405
        status, _, _ = call(server.port, "POST", "/health", {})
        assert status == 405

    def test_bad_deadline_is_400(self, server):
        status, body, _ = call(server.port, "POST", "/estimate",
                               compress_doc(), {"X-Deadline": "-1"})
        assert status == 400


class TestDegradation:
    def test_salvage_degrades_to_206(self, tmp_path):
        srv = ServiceServer(ServiceConfig(store_root=tmp_path)).start()
        try:
            _, body, _ = call(srv.port, "POST", "/compress",
                              compress_doc(chunks=4))
            key = body["key"]
            srv.store.corrupt(key)
            status, body, _ = call(srv.port, "POST", "/decompress",
                                   {"key": key})
            assert status == 206 and body["salvaged"] is True
            assert body["salvage_report"]["failures"]
            status, body, _ = call(srv.port, "POST", "/decompress",
                                   {"key": key, "salvage": False})
            assert status == 502 and body["error"] == "blob_corrupt"
        finally:
            srv.stop()

    def test_breaker_trips_and_recovers(self, tmp_path):
        clock = DrillClock()
        srv = ServiceServer(ServiceConfig(
            store_root=tmp_path, clock=clock, breaker_threshold=1,
            breaker_cooldown=30.0,
            faults=parse_fault_spec("seed=1;crash:p=1:only=0"))).start()
        try:
            status, body, _ = call(srv.port, "POST", "/compress",
                                   compress_doc())
            assert status == 500 and body["error"] == "codec_failure"
            status, body, hdrs = call(srv.port, "POST", "/compress",
                                      compress_doc())
            assert status == 503 and body["error"] == "breaker_open"
            assert "retry-after" in hdrs
            # degraded mode: estimate and other codecs still serve
            status, _, _ = call(srv.port, "POST", "/estimate",
                                compress_doc())
            assert status == 200
            status, _, _ = call(srv.port, "POST", "/compress",
                                compress_doc("sz3"))
            assert status == 200
            status, body, _ = call(srv.port, "GET", "/ready")
            assert status == 503 and body["error"] == "not_ready"
            clock.advance(30.01)
            status, _, _ = call(srv.port, "POST", "/compress",
                                compress_doc())
            assert status == 200  # half-open probe recovered
            status, _, _ = call(srv.port, "GET", "/ready")
            assert status == 200
        finally:
            srv.stop()

    def test_rate_limit_sheds_with_retry_after(self, tmp_path):
        srv = ServiceServer(ServiceConfig(
            store_root=tmp_path, rate=1.0, burst=2,
            clock=DrillClock())).start()
        try:
            statuses = []
            for _ in range(4):
                status, body, hdrs = call(srv.port, "POST", "/estimate",
                                          compress_doc(),
                                          {"X-Client": "greedy"})
                statuses.append(status)
            assert statuses == [200, 200, 429, 429]
            assert body["error"] == "rate_limited"
            assert "retry-after" in hdrs
        finally:
            srv.stop()

    def test_deadline_expiry_is_504(self, tmp_path):
        srv = ServiceServer(ServiceConfig(
            store_root=tmp_path,
            faults=parse_fault_spec("seed=1"))).start()
        try:
            status, body, _ = call(srv.port, "POST", "/compress",
                                   compress_doc(),
                                   {"X-Deadline": "0.01",
                                    "X-Drill-Stall": "0.1"})
            assert status == 504 and body["error"] == "deadline_exceeded"
        finally:
            srv.stop()

    def test_injected_abort_drops_connection_and_recovers(self, tmp_path):
        srv = ServiceServer(ServiceConfig(
            store_root=tmp_path,
            faults=parse_fault_spec("seed=1;abort:p=1:only=0"))).start()
        try:
            with pytest.raises((http.client.BadStatusLine, ConnectionError)):
                call(srv.port, "POST", "/estimate", compress_doc())
            # the next request (index 1) is served normally
            status, _, _ = call(srv.port, "POST", "/estimate",
                                compress_doc())
            assert status == 200
        finally:
            srv.stop()


class TestLifecycle:
    def test_double_start_raises(self, tmp_path):
        srv = ServiceServer(ServiceConfig(store_root=tmp_path)).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                srv.start()
        finally:
            srv.stop()

    def test_restart_after_stop(self, tmp_path):
        srv = ServiceServer(ServiceConfig(store_root=tmp_path))
        srv.start()
        first_port = srv.port
        srv.stop()
        srv.start()
        try:
            assert srv.port is not None and srv.port != 0
            status, _, _ = call(srv.port, "GET", "/health")
            assert status == 200
        finally:
            srv.stop()
        assert first_port is not None

    def test_stop_before_start_is_a_safe_noop(self, tmp_path):
        srv = ServiceServer(ServiceConfig(store_root=tmp_path))
        srv.stop()  # never started: nothing to tear down, nothing raised
        srv.stop()
        # and the server is still perfectly startable afterwards
        srv.start()
        try:
            status, _, _ = call(srv.port, "GET", "/health")
            assert status == 200
        finally:
            srv.stop()

    def test_double_stop_after_start_is_idempotent(self, tmp_path):
        srv = ServiceServer(ServiceConfig(store_root=tmp_path)).start()
        srv.stop()
        srv.stop()  # already stopped: no-op, no error
        with pytest.raises(ConnectionError):
            call(srv.port, "GET", "/health")  # really down, exactly once
