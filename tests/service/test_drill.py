"""The chaos drill: all invariants hold and the event log is deterministic."""

import json

import pytest

from repro.obs import trace
from repro.service.drill import run_drill


def test_drill_passes_and_is_deterministic(tmp_path):
    trace.end_run()
    rc1, report1 = run_drill(seed=9, report_path=tmp_path / "drill1.json",
                             verbose=False)
    rc2, report2 = run_drill(seed=9, report_path=tmp_path / "drill2.json",
                             verbose=False)
    assert rc1 == 0 and rc2 == 0
    assert report1["ok"] and not report1["failures"]
    assert report1["invariants_passed"] == report2["invariants_passed"] > 0
    # same seed -> byte-identical event log
    assert report1["event_digest"] == report2["event_digest"]
    assert report1["events"] == report2["events"]
    on_disk = json.loads((tmp_path / "drill1.json").read_text())
    assert on_disk["event_digest"] == report1["event_digest"]
    # every phase ran and the fault soup exercised every failure mode
    assert set(report1["phases"]) == {
        "soup", "breaker", "salvage", "overload", "metrics"}
    counts = report1["phases"]["soup"]["counts"]
    for kind in ("aborted", "codec_failure", "blob_io", "ok"):
        assert counts[kind] > 0


def test_different_seed_changes_the_log(tmp_path):
    trace.end_run()
    rc1, report1 = run_drill(seed=9, report_path=tmp_path / "a.json",
                             verbose=False)
    rc2, report2 = run_drill(seed=21, report_path=tmp_path / "b.json",
                             verbose=False)
    assert rc1 == 0 and rc2 == 0
    assert report1["event_digest"] != report2["event_digest"]


def test_phase_selection_and_validation(tmp_path):
    trace.end_run()
    with pytest.raises(ValueError, match="unknown drill phase"):
        run_drill(seed=9, verbose=False, phases=("soup", "nope"))
    rc, report = run_drill(seed=9, report_path=tmp_path / "one.json",
                           verbose=False, phases=("salvage",))
    assert rc == 0 and report["ok"]
    assert report["phases_run"] == ["salvage"]
    assert set(report["phases"]) == {"salvage"}  # no metrics scrape either


def test_shardkill_phase_is_deterministic(tmp_path):
    """The cluster phase: same seed -> same victim, same event log."""
    trace.end_run()
    rc1, report1 = run_drill(seed=9, report_path=tmp_path / "k1.json",
                             verbose=False, phases=("shardkill",))
    rc2, report2 = run_drill(seed=9, report_path=tmp_path / "k2.json",
                             verbose=False, phases=("shardkill",))
    assert rc1 == 0 and rc2 == 0
    assert report1["ok"] and not report1["failures"]
    assert report1["phases_run"] == ["shardkill"]
    assert report1["event_digest"] == report2["event_digest"]
    assert report1["events"] == report2["events"]
    shard = report1["phases"]["shardkill"]
    assert shard["restarts"] >= 1 and shard["n_shards"] == 2
