"""Content-addressed blob store: digest keys, verified reads, fault ops."""

import pytest

from repro.faults import parse_fault_spec
from repro.obs import trace
from repro.service.blobstore import BlobStore, blob_key
from repro.service.schemas import BlobCorruptError, BlobIOError, NotFoundError


@pytest.fixture(autouse=True)
def clean_run():
    trace.end_run()
    yield
    trace.end_run()


def test_put_get_roundtrip_and_idempotence(tmp_path):
    store = BlobStore(tmp_path)
    key = store.put(b"hello world")
    assert key == blob_key(b"hello world")
    assert store.get(key) == b"hello world"
    assert store.put(b"hello world") == key
    assert store.count() == 1


def test_unknown_key_is_not_found(tmp_path):
    with pytest.raises(NotFoundError):
        BlobStore(tmp_path).get("ab" * 20)
    with pytest.raises(NotFoundError):
        BlobStore(tmp_path).fetch_raw("ab" * 20)


def test_corrupt_blob_detected_on_read(tmp_path):
    store = BlobStore(tmp_path)
    key = store.put(b"x" * 1000)
    store.corrupt(key)
    with pytest.raises(BlobCorruptError):
        store.get(key)
    # the raw bytes are still retrievable for salvage
    raw = store.fetch_raw(key)
    assert len(raw) == 1000 and blob_key(raw) != key
    assert store.verify_all() == {key: False}


def test_verify_all_confines_damage(tmp_path):
    store = BlobStore(tmp_path)
    k1 = store.put(b"a" * 100)
    k2 = store.put(b"b" * 100)
    store.corrupt(k1)
    intact = store.verify_all()
    assert intact[k2] is True and intact[k1] is False


def test_injected_blob_errors_fire_on_op_index(tmp_path):
    # bloberr with only=1 fails exactly the second store operation
    faults = parse_fault_spec("seed=3;bloberr:p=1:only=1")
    store = BlobStore(tmp_path, faults=faults)
    key = store.put(b"payload")  # op 0: fine
    with pytest.raises(BlobIOError):
        store.get(key)  # op 1: injected failure
    assert store.get(key) == b"payload"  # op 2: fine again
    # an injected failure must never corrupt what is stored
    assert all(store.verify_all().values())


def test_injected_write_error_stores_nothing(tmp_path):
    faults = parse_fault_spec("seed=3;bloberr:p=1:op=write:only=0")
    store = BlobStore(tmp_path, faults=faults)
    with pytest.raises(BlobIOError):
        store.put(b"doomed")
    assert store.count() == 0
