"""Content-addressed blob store: digest keys, verified reads, fault ops."""

import pytest

from repro.faults import parse_fault_spec
from repro.obs import trace
from repro.service.blobstore import BlobStore, blob_key
from repro.service.schemas import BlobCorruptError, BlobIOError, NotFoundError


@pytest.fixture(autouse=True)
def clean_run():
    trace.end_run()
    yield
    trace.end_run()


def test_put_get_roundtrip_and_idempotence(tmp_path):
    store = BlobStore(tmp_path)
    key = store.put(b"hello world")
    assert key == blob_key(b"hello world")
    assert store.get(key) == b"hello world"
    assert store.put(b"hello world") == key
    assert store.count() == 1


def test_unknown_key_is_not_found(tmp_path):
    with pytest.raises(NotFoundError):
        BlobStore(tmp_path).get("ab" * 20)
    with pytest.raises(NotFoundError):
        BlobStore(tmp_path).fetch_raw("ab" * 20)


def test_corrupt_blob_detected_on_read(tmp_path):
    store = BlobStore(tmp_path)
    key = store.put(b"x" * 1000)
    store.corrupt(key)
    with pytest.raises(BlobCorruptError):
        store.get(key)
    # the raw bytes are still retrievable for salvage
    raw = store.fetch_raw(key)
    assert len(raw) == 1000 and blob_key(raw) != key
    assert store.verify_all() == {key: False}


def test_verify_all_confines_damage(tmp_path):
    store = BlobStore(tmp_path)
    k1 = store.put(b"a" * 100)
    k2 = store.put(b"b" * 100)
    store.corrupt(k1)
    intact = store.verify_all()
    assert intact[k2] is True and intact[k1] is False


def test_injected_blob_errors_fire_on_op_index(tmp_path):
    # bloberr with only=1 fails exactly the second store operation
    faults = parse_fault_spec("seed=3;bloberr:p=1:only=1")
    store = BlobStore(tmp_path, faults=faults)
    key = store.put(b"payload")  # op 0: fine
    with pytest.raises(BlobIOError):
        store.get(key)  # op 1: injected failure
    assert store.get(key) == b"payload"  # op 2: fine again
    # an injected failure must never corrupt what is stored
    assert all(store.verify_all().values())


def test_injected_write_error_stores_nothing(tmp_path):
    faults = parse_fault_spec("seed=3;bloberr:p=1:op=write:only=0")
    store = BlobStore(tmp_path, faults=faults)
    with pytest.raises(BlobIOError):
        store.put(b"doomed")
    assert store.count() == 0


def test_stale_atomic_write_temp_is_litter_not_corruption(tmp_path):
    store = BlobStore(tmp_path)
    key = store.put(b"real blob")
    # a writer that died mid-put leaves its same-dir temp file behind
    fanout = store.path_for(key).parent
    (fanout / f".{key}.12345.tmp").write_bytes(b"torn half-writ")
    (fanout / "junk.tmp").write_bytes(b"other litter")
    assert store.keys() == [key]  # listings never see temp files
    assert store.count() == 1
    intact = store.verify_all()
    assert intact == {key: True}  # the janitor counts zero corruption
    assert store.get(key) == b"real blob"


def test_dot_directories_are_not_fanout_dirs(tmp_path):
    store = BlobStore(tmp_path)
    key = store.put(b"payload")
    # cluster runtime state lives in a dot-dir under the same root
    run_dir = tmp_path / ".cluster"
    run_dir.mkdir()
    (run_dir / "shard-0.port").write_text("12345\n")
    assert store.keys() == [key]
    assert all(store.verify_all().values())


def test_concurrent_writer_commits_are_atomic(tmp_path):
    """A reader racing many committing writers sees complete blobs or
    nothing — never a torn payload (atomic_write's rename contract)."""
    import threading

    store = BlobStore(tmp_path)
    payloads = [bytes([i]) * 4096 for i in range(24)]
    expected = {blob_key(p): p for p in payloads}
    stop = threading.Event()
    torn: list[str] = []

    def reader():
        other = BlobStore(tmp_path)  # a second handle, like a sibling shard
        while not stop.is_set():
            for key, ok in other.verify_all().items():
                if not ok:
                    torn.append(key)

    t = threading.Thread(target=reader)
    t.start()
    try:
        writers = [threading.Thread(target=store.put, args=(p,))
                   for p in payloads]
        for w in writers:
            w.start()
        for w in writers:
            w.join()
    finally:
        stop.set()
        t.join()
    assert torn == []  # no read ever saw a half-committed blob
    assert sorted(store.keys()) == sorted(expected)
    for key, payload in expected.items():
        assert store.get(key) == payload


def test_same_root_shared_by_two_partitions(tmp_path):
    """Two shard stores over one root: same key -> same bytes, and each
    partition's verify sweep covers exactly its owned slice."""
    a = BlobStore(tmp_path, partition=(0, 2))
    b = BlobStore(tmp_path, partition=(1, 2))
    key = a.put(b"shared content")
    assert b.put(b"shared content") == key  # idempotent across handles
    assert a.get(key) == b.get(key) == b"shared content"
    assert a.owns(key) != b.owns(key)  # exactly one owner
    owner, other = (a, b) if a.owns(key) else (b, a)
    assert owner.verify_all(owned_only=True) == {key: True}
    assert other.verify_all(owned_only=True) == {}
