"""Request parsing and the service error vocabulary."""

import numpy as np
import pytest

from repro.service.schemas import (
    BadRequestError,
    BreakerOpenError,
    CompressRequest,
    DecompressRequest,
    EstimateRequest,
    QueueFullError,
    RateLimitedError,
    ServiceError,
    encode_array,
    parse_array,
)

CODECS = ("cliz", "sz3")


def test_array_roundtrip():
    arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4) * 0.5
    back = parse_array(encode_array(arr))
    np.testing.assert_array_equal(back, arr)
    assert back.dtype == arr.dtype


def test_array_roundtrip_f64_and_int():
    for arr in (np.linspace(0, 1, 10), np.arange(6, dtype=np.int32)):
        np.testing.assert_array_equal(parse_array(encode_array(arr)), arr)


@pytest.mark.parametrize("doc", [
    None,
    "nope",
    {},
    {"data": "!!!", "dtype": "<f4", "shape": [1]},
    {"data": "", "dtype": "<f4", "shape": [4]},  # size mismatch
    {"data": "AAAA", "dtype": "bogus", "shape": [3]},
    {"data": "AAAA", "dtype": "<f4", "shape": []},
    {"data": "AAAA", "dtype": "<f4", "shape": [-1]},
    {"data": "AAAA", "dtype": "<f4", "shape": [True]},
])
def test_parse_array_rejects(doc):
    with pytest.raises(BadRequestError):
        parse_array(doc)


def test_compress_request_parses():
    doc = {"codec": "CLIZ", "array": encode_array(np.zeros((4, 4), np.float32)),
           "rel_eb": 1e-3, "chunks": 2}
    req = CompressRequest.from_doc(doc, CODECS)
    assert req.codec == "cliz" and req.chunks == 2
    assert req.eb == {"rel_eb": 1e-3}


def test_compress_request_needs_exactly_one_bound():
    arr = encode_array(np.zeros(4, np.float32))
    with pytest.raises(BadRequestError, match="exactly one"):
        CompressRequest.from_doc({"codec": "cliz", "array": arr}, CODECS)
    with pytest.raises(BadRequestError, match="exactly one"):
        CompressRequest.from_doc(
            {"codec": "cliz", "array": arr, "rel_eb": 1e-3, "abs_eb": 1e-3},
            CODECS)


def test_compress_request_rejects_unknown_codec_and_mask_shape():
    arr = encode_array(np.zeros((4, 4), np.float32))
    with pytest.raises(BadRequestError, match="unknown codec"):
        CompressRequest.from_doc(
            {"codec": "nope", "array": arr, "rel_eb": 1e-3}, CODECS)
    with pytest.raises(BadRequestError, match="mask shape"):
        CompressRequest.from_doc(
            {"codec": "cliz", "array": arr, "rel_eb": 1e-3,
             "mask": encode_array(np.ones(3, np.uint8))}, CODECS)


def test_decompress_request_validates_key():
    assert DecompressRequest.from_doc({"key": "ab12"}).salvage is True
    assert DecompressRequest.from_doc(
        {"key": "ab12", "salvage": False}).salvage is False
    for bad in ({}, {"key": "XYZ"}, {"key": ""}, {"key": 3},
                {"key": "ab", "salvage": "yes"}):
        with pytest.raises(BadRequestError):
            DecompressRequest.from_doc(bad)


def test_estimate_request_budget_bounds():
    arr = encode_array(np.zeros((8, 8), np.float32))
    req = EstimateRequest.from_doc(
        {"codec": "sz3", "array": arr, "abs_eb": 0.1}, CODECS)
    assert req.sample_budget == 4096
    with pytest.raises(BadRequestError, match="sample_budget"):
        EstimateRequest.from_doc(
            {"codec": "sz3", "array": arr, "abs_eb": 0.1,
             "sample_budget": 1}, CODECS)


def test_error_vocabulary_statuses_and_dicts():
    err = RateLimitedError("slow down", retry_after=2.5)
    doc = err.to_dict()
    assert (err.status, doc["error"], doc["retry_after"]) == \
        (429, "rate_limited", 2.5)
    assert QueueFullError("full").status == 429
    assert BreakerOpenError("open", detail={"codec": "cliz"}).to_dict()[
        "codec"] == "cliz"
    for cls in (RateLimitedError, QueueFullError, BreakerOpenError,
                BadRequestError):
        assert issubclass(cls, ServiceError)
