"""``python -m repro.service serve`` drains gracefully on SIGTERM.

Real subprocesses, real signals: the regression these tests pin is the
old serve loop that only understood KeyboardInterrupt — ``kill -TERM``
used to tear the process down through the interpreter's default handler,
skipping the drain path entirely and (for a cluster) orphaning shards.
"""

import http.client
import os
import signal
import subprocess
import sys
import time

import pytest


def _spawn_serve(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        (os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))) + "/src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve", "--port", "0",
         "--store", str(tmp_path / "store"), *extra],
        env=env, stderr=subprocess.PIPE, text=True)
    deadline = time.monotonic() + 60.0
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            break
        lines.append(line)
        if "on http://127.0.0.1:" in line:
            port = int(line.split("http://127.0.0.1:")[1].split()[0])
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"serve never announced a port: {lines!r}")
    return proc, port


def _shard_pids_under(store: str) -> list[int]:
    """Shard processes for *this* store, via /proc (no pgrep patterns
    that could match the test runner itself)."""
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            cmdline = open(f"/proc/{entry}/cmdline", "rb").read()
        except OSError:
            continue
        args = cmdline.split(b"\0")
        if (b"repro.service" in args and b"shard" in args
                and store.encode() in cmdline):
            pids.append(int(entry))
    return pids


def _ready(port: int) -> int:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", "/ready")
        resp = conn.getresponse()
        resp.read()
        return resp.status
    finally:
        conn.close()


@pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
def test_single_process_serve_exits_zero_on_signal(tmp_path, sig):
    proc, port = _spawn_serve(tmp_path)
    try:
        assert _ready(port) == 200
        proc.send_signal(sig)
        rc = proc.wait(timeout=30)
        assert rc == 0
        # the drain path ran: the announce is followed by the drain line
        rest = proc.stderr.read()
        assert "draining" in rest
    finally:
        if proc.poll() is None:
            proc.kill()


def test_sharded_serve_sigterm_leaves_no_orphans(tmp_path):
    proc, port = _spawn_serve(tmp_path, "--shards", "3")
    store = str(tmp_path / "store")
    try:
        assert _ready(port) == 200
        shard_pids = _shard_pids_under(store)
        assert len(shard_pids) == 3
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc == 0
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and _shard_pids_under(store):
            time.sleep(0.1)
        assert _shard_pids_under(store) == []  # no orphan shard processes
    finally:
        if proc.poll() is None:
            proc.kill()
        for pid in _shard_pids_under(store):
            os.kill(pid, signal.SIGKILL)
