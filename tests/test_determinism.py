"""Determinism: identical inputs must produce identical bytes.

Archive systems deduplicate and checksum compressed objects; every codec
here is deterministic by construction (no wall-clock, no RNG in the
compression path), and these tests pin that down.
"""

import numpy as np
import pytest

from repro import COMPRESSORS, AutoTuner, CliZ, compressor_for
from repro.datasets import load


def field2d():
    rng = np.random.default_rng(42)
    y, x = np.mgrid[0:24, 0:30]
    return np.sin(x / 6.0) + np.cos(y / 5.0) + 0.01 * rng.standard_normal((24, 30))


@pytest.mark.parametrize("codec", sorted(COMPRESSORS))
def test_codec_bytes_deterministic(codec):
    data = field2d()
    a = compressor_for(codec).compress(data, abs_eb=1e-2)
    b = compressor_for(codec).compress(data.copy(), abs_eb=1e-2)
    assert a == b, codec


def test_tuner_deterministic():
    f = load("Tsfc", shape=(16, 14, 48))
    kwargs = dict(sampling_rate=0.05, max_layouts=3, **f.tuner_kwargs())
    r1 = AutoTuner(**kwargs).tune(f.data, rel_eb=1e-3, mask=f.mask)
    r2 = AutoTuner(**kwargs).tune(f.data, rel_eb=1e-3, mask=f.mask)
    assert r1.best == r2.best
    assert [t.est_ratio for t in r1.trials] == [t.est_ratio for t in r2.trials]


def test_cliz_full_pipeline_deterministic():
    f = load("SSH", shape=(16, 14, 48))
    from repro.core import Layout, PipelineConfig
    cfg = PipelineConfig(Layout((2, 0, 1), (1, 2)), periodic=True, time_axis=2,
                         binclass=True, horiz_axes=(0, 1))
    a = CliZ(cfg).compress(f.data, rel_eb=1e-3, mask=f.mask)
    b = CliZ(cfg).compress(f.data.copy(), rel_eb=1e-3, mask=f.mask.copy())
    assert a == b


def test_decompress_does_not_mutate_blob():
    data = field2d()
    blob = CliZ().compress(data, abs_eb=1e-2)
    snapshot = bytes(blob)
    CliZ().decompress(blob)
    assert blob == snapshot
