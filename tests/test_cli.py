"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def field_files(tmp_path):
    rng = np.random.default_rng(0)
    y, x = np.mgrid[0:24, 0:30]
    data = (np.sin(x / 6.0) + np.cos(y / 5.0) + 0.01 * rng.standard_normal((24, 30))).astype(np.float32)
    mask = np.ones(data.shape, dtype=bool)
    mask[:4] = False
    data[:4] = np.float32(9.96921e36)
    dpath = tmp_path / "data.npy"
    mpath = tmp_path / "mask.npy"
    np.save(dpath, data)
    np.save(mpath, mask)
    return dpath, mpath, data, mask


class TestCompressDecompress:
    def test_roundtrip(self, tmp_path, field_files, capsys):
        dpath, mpath, data, mask = field_files
        out = tmp_path / "data.rz"
        back = tmp_path / "back.npy"
        assert main(["compress", str(dpath), str(out), "--codec", "cliz",
                     "--rel-eb", "1e-3", "--mask", str(mpath)]) == 0
        assert "CR" in capsys.readouterr().out
        assert main(["decompress", str(out), str(back)]) == 0
        got = np.load(back)
        span = data[mask].max() - data[mask].min()
        err = np.abs(got.astype(np.float64) - data.astype(np.float64))
        assert err[mask].max() <= 1e-3 * span + 1e-6

    def test_requires_exactly_one_bound(self, tmp_path, field_files):
        dpath, _, _, _ = field_files
        with pytest.raises(SystemExit):
            main(["compress", str(dpath), str(tmp_path / "x.rz")])
        with pytest.raises(SystemExit):
            main(["compress", str(dpath), str(tmp_path / "x.rz"),
                  "--rel-eb", "1e-3", "--abs-eb", "0.1"])

    def test_info(self, tmp_path, field_files, capsys):
        dpath, _, _, _ = field_files
        out = tmp_path / "d.rz"
        main(["compress", str(dpath), str(out), "--codec", "sz3", "--abs-eb", "0.01"])
        capsys.readouterr()
        assert main(["info", str(out)]) == 0
        text = capsys.readouterr().out
        assert "sz3" in text and "sections" in text


class TestResilienceFlags:
    def test_chunked_roundtrip_with_retries(self, tmp_path, field_files, capsys):
        dpath, _, data, _ = field_files
        out = tmp_path / "d.rz"
        back = tmp_path / "back.npy"
        assert main(["compress", str(dpath), str(out), "--codec", "sz3",
                     "--abs-eb", "1e-3", "--chunks", "4",
                     "--retries", "2", "--retry-backoff", "0",
                     "--inject-faults", "seed=1;crash:only=1"]) == 0
        assert main(["decompress", str(out), str(back)]) == 0
        assert np.abs(np.load(back) - data).max() <= 1e-3 + 1e-6

    def test_salvage_flag_with_injected_bitrot(self, tmp_path, field_files, capsys):
        dpath, _, _, _ = field_files
        out = tmp_path / "d.rz"
        back = tmp_path / "back.npy"
        rep = tmp_path / "report.json"
        main(["compress", str(dpath), str(out), "--codec", "sz3",
              "--abs-eb", "1e-3", "--chunks", "4"])
        capsys.readouterr()
        assert main(["decompress", str(out), str(back), "--salvage",
                     "--salvage-report", str(rep),
                     "--inject-faults", "seed=5;bitflip:n=4"]) == 0
        err = capsys.readouterr().err
        assert "salvage" in err and "injected" in err
        report = json.loads(rep.read_text())
        assert report["codec"] == "chunked" and not report["ok"]
        got = np.load(back)
        assert np.isnan(got).any() and not np.isnan(got).all()

    def test_salvage_clean_blob_reports_ok(self, tmp_path, field_files, capsys):
        dpath, _, data, _ = field_files
        out = tmp_path / "d.rz"
        back = tmp_path / "back.npy"
        rep = tmp_path / "report.json"
        main(["compress", str(dpath), str(out), "--codec", "sz3",
              "--abs-eb", "1e-3", "--chunks", "3"])
        assert main(["decompress", str(out), str(back), "--salvage",
                     "--salvage-report", str(rep)]) == 0
        assert json.loads(rep.read_text())["ok"]
        assert np.abs(np.load(back) - data).max() <= 1e-3 + 1e-6

    def test_salvage_rejects_non_chunked_blob(self, tmp_path, field_files):
        dpath, _, _, _ = field_files
        out = tmp_path / "d.rz"
        main(["compress", str(dpath), str(out), "--codec", "sz3",
              "--abs-eb", "1e-3"])
        with pytest.raises(SystemExit, match="chunked"):
            main(["decompress", str(out), str(tmp_path / "b.npy"), "--salvage"])

    def test_inject_faults_on_compress_needs_chunks(self, tmp_path, field_files):
        dpath, _, _, _ = field_files
        with pytest.raises(SystemExit, match="--chunks"):
            main(["compress", str(dpath), str(tmp_path / "x.rz"),
                  "--abs-eb", "1e-3", "--inject-faults", "seed=1;crash"])

    def test_bad_fault_spec_fails_clearly(self, tmp_path, field_files):
        dpath, _, _, _ = field_files
        with pytest.raises(ValueError):
            main(["compress", str(dpath), str(tmp_path / "x.rz"),
                  "--abs-eb", "1e-3", "--chunks", "2",
                  "--inject-faults", "frobnicate"])


class TestTelemetryFlags:
    def test_compress_writes_trace_metrics_chrome(self, tmp_path, field_files, capsys):
        from repro.obs.sinks import load_jsonl, validate_metrics_line, validate_trace_line

        dpath, _, _, _ = field_files
        out = tmp_path / "d.rz"
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.jsonl"
        chrome = tmp_path / "chrome.json"
        assert main(["compress", str(dpath), str(out), "--codec", "cliz",
                     "--abs-eb", "1e-3",
                     "--trace-out", str(trace),
                     "--metrics-out", str(metrics),
                     "--chrome-out", str(chrome)]) == 0
        err = capsys.readouterr().err
        assert str(trace) in err and str(metrics) in err

        trace_recs = load_jsonl(trace)
        assert trace_recs
        for rec in trace_recs:
            validate_trace_line(rec)
        assert any(r["name"] == "compress" for r in trace_recs)

        metric_recs = load_jsonl(metrics)
        assert metric_recs
        for rec in metric_recs:
            validate_metrics_line(rec)
        names = {r["name"] for r in metric_recs}
        assert "cliz.compression_ratio" in names

        doc = json.loads(chrome.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_decompress_trace_out(self, tmp_path, field_files):
        from repro.obs.sinks import load_jsonl, validate_trace_line

        dpath, _, _, _ = field_files
        out = tmp_path / "d.rz"
        back = tmp_path / "back.npy"
        trace = tmp_path / "dec.jsonl"
        main(["compress", str(dpath), str(out), "--codec", "cliz", "--abs-eb", "1e-3"])
        assert main(["decompress", str(out), str(back),
                     "--trace-out", str(trace)]) == 0
        recs = load_jsonl(trace)
        for rec in recs:
            validate_trace_line(rec)
        assert any(r["name"] == "decompress" for r in recs)


class TestTune:
    def test_tune_and_save_config(self, tmp_path, field_files, capsys):
        dpath, mpath, _, _ = field_files
        cfg_path = tmp_path / "pipeline.json"
        rc = main(["tune", str(dpath), "--rel-eb", "1e-3", "--mask", str(mpath),
                   "--horiz-axes", "0,1", "--max-layouts", "2",
                   "--sampling-rate", "0.1", "--save-config", str(cfg_path)])
        assert rc == 0
        assert "best" in capsys.readouterr().out
        from repro.core import PipelineConfig
        cfg = PipelineConfig.from_dict(json.loads(cfg_path.read_text()))
        assert cfg.layout.ndim_in == 2


class TestAssess:
    def test_assess_pass_and_fail(self, tmp_path, field_files, capsys):
        dpath, mpath, data, mask = field_files
        good = tmp_path / "good.npy"
        np.save(good, data)  # identical reconstruction
        assert main(["assess", str(dpath), str(good), "--mask", str(mpath),
                     "--abs-eb", "0.01"]) == 0
        assert "PASS" in capsys.readouterr().out
        bad = tmp_path / "bad.npy"
        np.save(bad, data + np.float32(1.0))
        assert main(["assess", str(dpath), str(bad), "--mask", str(mpath),
                     "--abs-eb", "0.01"]) == 1


class TestDatasetAndMisc:
    def test_dataset_generation(self, tmp_path, capsys):
        out = tmp_path / "hur.npy"
        assert main(["dataset", "Hurricane-T", "--out", str(out)]) == 0
        assert np.load(out).ndim == 3

    def test_dataset_with_mask(self, tmp_path, capsys):
        out = tmp_path / "ssh.npy"
        mout = tmp_path / "sshm.npy"
        assert main(["dataset", "SSH", "--out", str(out), "--mask-out", str(mout)]) == 0
        assert np.load(mout).dtype == bool

    def test_codecs_listing(self, capsys):
        assert main(["codecs"]) == 0
        text = capsys.readouterr().out
        for name in ("cliz", "sz3", "zfp", "sperr", "tthresh"):
            assert name in text

    def test_unknown_experiment_lists_options(self, capsys):
        assert main(["experiment", "fig99"]) == 1
        assert "headline" in capsys.readouterr().out

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "table3_datasets"]) == 0
        assert "SOILLIQ" in capsys.readouterr().out

    def test_sweep_subcommand(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        args = ["sweep", "--out", str(out), "--datasets", "SSH",
                "--shape", "12,10,48", "--compressors", "SZ3",
                "--rel-ebs", "1e-2", "--no-fsync"]
        assert main(args) == 0
        assert "complete" in capsys.readouterr().out
        assert (out / "ledger.jsonl").exists()
        assert (out / "results.json").exists()
        # resuming a finished sweep is a cheap no-op
        assert main(args + ["--resume"]) == 0
        assert "1 skipped (ledger)" in capsys.readouterr().out
