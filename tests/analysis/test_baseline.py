"""Baseline machinery: load validation, absorption, stale-entry reporting."""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, LintConfig, LintEngine
from repro.analysis.baseline import stale_diagnostics
from repro.analysis.diagnostics import Diagnostic

FIXTURES = Path(__file__).parent / "fixtures" / "whole_program"


def _write(tmp_path, payload) -> Path:
    p = tmp_path / "lint-baseline.json"
    p.write_text(json.dumps(payload), encoding="utf-8")
    return p


def _entry(**over):
    raw = {"rule": "EXC-001", "path": "src/repro/x.py",
           "symbol": "repro.x.f", "reason": "why"}
    raw.update(over)
    return raw


def _diag(**over):
    raw = dict(rule_id="EXC-001", family="exception-flow",
               path="src/repro/x.py", line=10, col=0,
               message="repro.x.f: KeyError can escape (raised in repro.x.g)")
    raw.update(over)
    return Diagnostic(**raw)


# -- loading ----------------------------------------------------------------


def test_load_roundtrip(tmp_path):
    p = _write(tmp_path, {"version": 1, "entries": [_entry(contains="KeyError")]})
    baseline = Baseline.load(p)
    assert baseline.entries == [BaselineEntry(
        rule="EXC-001", path="src/repro/x.py", symbol="repro.x.f",
        reason="why", contains="KeyError")]


def test_load_rejects_wrong_version(tmp_path):
    p = _write(tmp_path, {"version": 2, "entries": []})
    with pytest.raises(ValueError, match="version"):
        Baseline.load(p)


def test_load_rejects_missing_reason(tmp_path):
    raw = _entry()
    del raw["reason"]
    p = _write(tmp_path, {"version": 1, "entries": [raw]})
    with pytest.raises(ValueError, match="reason is mandatory"):
        Baseline.load(p)


def test_load_rejects_blank_reason(tmp_path):
    p = _write(tmp_path, {"version": 1, "entries": [_entry(reason="  ")]})
    with pytest.raises(ValueError, match="empty"):
        Baseline.load(p)


def test_load_rejects_malformed_json(tmp_path):
    p = tmp_path / "lint-baseline.json"
    p.write_text("{nope", encoding="utf-8")
    with pytest.raises(ValueError, match="cannot read"):
        Baseline.load(p)


# -- matching ---------------------------------------------------------------


def test_absorbs_on_rule_path_symbol_and_contains():
    baseline = Baseline(entries=[BaselineEntry(
        rule="EXC-001", path="src/repro/x.py", symbol="repro.x.f",
        reason="why", contains="KeyError")])
    assert baseline.absorbs(_diag())
    assert baseline.stale_entries() == []


def test_does_not_absorb_different_rule_or_path():
    baseline = Baseline(entries=[BaselineEntry(
        rule="EXC-001", path="src/repro/x.py", symbol="repro.x.f",
        reason="why")])
    assert not baseline.absorbs(_diag(rule_id="EXC-002"))
    assert not baseline.absorbs(_diag(path="src/repro/y.py"))
    assert not baseline.absorbs(
        _diag(message="repro.x.other: KeyError can escape"))


def test_stale_entries_become_warnings():
    baseline = Baseline(entries=[BaselineEntry(
        rule="EXC-001", path="src/repro/x.py", symbol="repro.x.gone",
        reason="why")], source="lint-baseline.json")
    diags = stale_diagnostics(baseline)
    assert len(diags) == 1
    assert diags[0].rule_id == "BAS-001"
    assert diags[0].severity == "warning"
    assert "repro.x.gone" in diags[0].message
    # warnings do not flip the exit code
    from repro.analysis import LintResult
    assert LintResult(diagnostics=diags).exit_code == 0


# -- engine integration -----------------------------------------------------


def test_baseline_absorbs_whole_program_finding(tmp_path):
    baseline = Baseline(entries=[BaselineEntry(
        rule="EXC-002", path="src/repro/service/handlers.py",
        symbol="repro.service.handlers.do_echo",
        contains="repro.service.handlers._mirror", reason="fixture")])
    engine = LintEngine(config=LintConfig(), root=FIXTURES / "exc_bad")
    result = engine.run([], whole_program=True, baseline=baseline)
    assert not any(d.rule_id == "EXC-002" for d in result.diagnostics)
    assert any(d.rule_id == "EXC-002" for d in result.suppressed)
    # the EXC-001 findings are untouched
    assert sum(d.rule_id == "EXC-001" for d in result.diagnostics) == 4
    assert not any(d.rule_id == "BAS-001" for d in result.diagnostics)


def test_stale_baseline_entry_surfaces_in_run(tmp_path):
    baseline = Baseline(entries=[BaselineEntry(
        rule="RES-001", path="src/repro/io/gone.py",
        symbol="repro.io.gone.nothing", reason="obsolete")])
    engine = LintEngine(config=LintConfig(), root=FIXTURES / "res_good")
    result = engine.run([], whole_program=True, baseline=baseline)
    stale = [d for d in result.diagnostics if d.rule_id == "BAS-001"]
    assert len(stale) == 1
    assert result.exit_code == 0
