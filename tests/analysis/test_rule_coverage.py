"""Meta-tests: the fixture corpus must keep pace with the rule registry.

Every registered rule needs at least one known-bad fixture that makes it
fire and at least one known-good fixture it runs on silently — otherwise
a rule can rot (never firing, or firing on everything) without any test
noticing. Adding a rule without extending the corpus fails here.
"""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, LintEngine, all_rules
from repro.analysis.registry import ProjectRule, WholeProgramRule
from repro.analysis.rules.repo_hygiene import NoTrackedBytecode

from tests.analysis.test_fixture_corpus import BAD_CORPUS, GOOD_CORPUS
from tests.analysis.test_whole_program import WP_BAD, WP_GOOD

FIXTURES = Path(__file__).parent / "fixtures"

#: Engine-emitted pseudo-diagnostics, not registry rules: no fixtures owed.
PSEUDO_RULES = {"SYNTAX", "BAS-001"}


def _registered():
    per_file, project, whole_program = {}, {}, {}
    for rule in all_rules():
        if isinstance(rule, WholeProgramRule):
            whole_program[rule.id] = rule
        elif isinstance(rule, ProjectRule):
            project[rule.id] = rule
        else:
            per_file[rule.id] = rule
    return per_file, project, whole_program


def test_every_per_file_rule_has_a_bad_fixture():
    per_file, _, _ = _registered()
    covered = {rid for _, _, ids, _ in BAD_CORPUS for rid in ids}
    missing = set(per_file) - covered
    assert not missing, f"rules with no known-bad fixture: {sorted(missing)}"


def test_every_per_file_rule_has_a_good_fixture_in_scope():
    """Each rule must *run* on some good fixture (scope match) and stay
    silent — test_good_fixture_clean asserts the silence."""
    per_file, _, _ = _registered()
    uncovered = {
        rid for rid, rule in per_file.items()
        if not any(rule.applies_to(lint_as) for _, lint_as in GOOD_CORPUS)
    }
    assert not uncovered, \
        f"rules no good fixture is in scope for: {sorted(uncovered)}"


def test_every_whole_program_rule_has_bad_and_good_trees():
    _, _, whole_program = _registered()
    fired = {rid for _, expected in WP_BAD for rid in expected}
    missing = set(whole_program) - fired
    assert not missing, f"WP rules with no bad tree: {sorted(missing)}"
    # every WP rule runs on every good tree; the trees must exist
    for tree in WP_GOOD:
        assert (FIXTURES / "whole_program" / tree / "src/repro").is_dir()


def test_project_rules_covered_by_hygiene_fixtures():
    _, project, _ = _registered()
    assert set(project) == {"HYG-001"}, \
        "new ProjectRule: give it fixtures and extend this test"


# -- HYG-001 via tracked-file-list fixtures --------------------------------


def _hyg_diags(monkeypatch, listing: str):
    tracked = (FIXTURES / "hygiene" / listing).read_text(
        encoding="utf-8").splitlines()
    import repro.analysis.rules.repo_hygiene as hyg
    monkeypatch.setattr(hyg, "_git_tracked_files", lambda root: tracked)
    return list(NoTrackedBytecode().check_project(Path("/nonexistent")))


def test_hyg001_fires_on_bad_tracked_listing(monkeypatch):
    diags = _hyg_diags(monkeypatch, "bad_tracked.txt")
    assert {d.path for d in diags} == {
        "src/repro/core/__pycache__/pipeline.cpython-312.pyc",
        "build/lib/repro/core.pyo",
    }
    assert all(d.rule_id == "HYG-001" for d in diags)


def test_hyg001_silent_on_good_tracked_listing(monkeypatch):
    assert _hyg_diags(monkeypatch, "good_tracked.txt") == []


# -- totals ----------------------------------------------------------------


def test_registry_and_corpus_cover_the_same_rule_ids():
    per_file, project, whole_program = _registered()
    registered = set(per_file) | set(project) | set(whole_program)
    assert PSEUDO_RULES.isdisjoint(registered)
    with_fixtures = (
        {rid for _, _, ids, _ in BAD_CORPUS for rid in ids}
        | {rid for _, expected in WP_BAD for rid in expected}
        | {"HYG-001"}
    )
    assert with_fixtures == registered, (
        f"fixtures without rules: {sorted(with_fixtures - registered)}; "
        f"rules without fixtures: {sorted(registered - with_fixtures)}")
