"""Whole-program pass: fixture trees for the EXC/RES/CONC families.

Each fixture is a miniature ``src/repro`` package tree, because the
whole-program rules resolve their vocabularies against canonical module
paths (``repro.service.schemas.ServiceError``,
``repro.encoding.container.DECODE_ERRORS``) — the trees supply stand-ins
at those exact paths.
"""

from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import LintConfig, LintEngine

FIXTURES = Path(__file__).parent / "fixtures" / "whole_program"

#: (tree, expected rule-id -> finding count)
WP_BAD = [
    ("exc_bad", {"EXC-001": 4, "EXC-002": 1}),
    ("res_bad", {"RES-001": 2}),
    ("conc_bad", {"CONC-001": 2, "CONC-002": 1, "CONC-003": 1}),
]

WP_GOOD = ["exc_good", "res_good", "conc_good"]

WP_FAMILIES = ("EXC", "RES", "CONC")


def _run(tree: str):
    engine = LintEngine(config=LintConfig(), root=FIXTURES / tree)
    return engine.run([], whole_program=True)


def _wp_diags(result):
    return [d for d in result.diagnostics
            if d.rule_id.split("-")[0] in WP_FAMILIES]


@pytest.mark.parametrize("tree,expected", WP_BAD, ids=[c[0] for c in WP_BAD])
def test_bad_tree_fires(tree, expected):
    result = _run(tree)
    counts = Counter(d.rule_id for d in _wp_diags(result))
    assert counts == Counter() + Counter(expected), \
        [d.format_text() for d in _wp_diags(result)]
    assert result.exit_code == 1


@pytest.mark.parametrize("tree", WP_GOOD)
def test_good_tree_clean(tree):
    result = _run(tree)
    assert _wp_diags(result) == [], \
        [d.format_text() for d in _wp_diags(result)]


def test_exc_findings_name_type_and_origin():
    result = _run("exc_bad")
    msgs = [d.message for d in _wp_diags(result) if d.rule_id == "EXC-001"]
    fetch = [m for m in msgs if "do_fetch" in m]
    assert len(fetch) == 1
    assert "KeyError" in fetch[0]
    assert "repro.service.handlers._lookup" in fetch[0]   # the origin


def test_exc_cluster_entry_checks_the_transport_vocabulary():
    """The router fixture leaks RuntimeError — outside even the widened
    cluster vocabulary, and the finding names that vocabulary."""
    result = _run("exc_bad")
    msgs = [d.message for d in _wp_diags(result) if d.rule_id == "EXC-001"]
    fwd = [m for m in msgs if "do_forward" in m]
    assert len(fwd) == 1
    assert "RuntimeError" in fwd[0]
    assert "cluster transport vocabulary" in fwd[0]


def test_exc_dynamic_finding_names_the_unprovable_function():
    result = _run("exc_bad")
    msgs = [d.message for d in _wp_diags(result) if d.rule_id == "EXC-002"]
    assert len(msgs) == 1
    assert "do_echo" in msgs[0] and "_mirror" in msgs[0]


def test_res_findings_point_at_the_acquisition():
    result = _run("res_bad")
    diags = sorted(_wp_diags(result), key=lambda d: d.line)
    assert [d.rule_id for d in diags] == ["RES-001", "RES-001"]
    assert "leak_segment" in diags[0].message
    assert "shared-memory segment" in diags[0].message
    assert "owns=seg" in diags[0].message                  # remedy named
    assert "thread pool" in diags[1].message


def test_conc_blocking_chain_is_reported():
    result = _run("conc_bad")
    msgs = [d.message for d in _wp_diags(result) if d.rule_id == "CONC-001"]
    direct = [m for m in msgs if "handle_tick" in m]
    chained = [m for m in msgs if "handle_flush" in m]
    assert len(direct) == 1 and "time.sleep" in direct[0]
    assert len(chained) == 1 and "_drain" in chained[0]


def test_conc_lock_order_names_both_sites():
    result = _run("conc_bad")
    msgs = [d.message for d in _wp_diags(result) if d.rule_id == "CONC-003"]
    assert len(msgs) == 1
    assert "repro.locking._alpha" in msgs[0]
    assert "repro.locking._beta" in msgs[0]
    assert "opposite order" in msgs[0]


def test_whole_program_findings_honour_suppressions(tmp_path):
    """An inline disable comment silences a whole-program finding too."""
    tree = FIXTURES / "res_bad"
    src = (tree / "src/repro/io/scratch.py").read_text(encoding="utf-8")
    patched = src.replace(
        "seg = shared_memory.SharedMemory(create=True, size=n)   # RES-001",
        "seg = shared_memory.SharedMemory(create=True, size=n)"
        "  # repro-lint: disable=RES-001 -- fixture",
    )
    root = tmp_path / "repo"
    dest = root / "src" / "repro" / "io"
    dest.mkdir(parents=True)
    (root / "src/repro/__init__.py").write_text("", encoding="utf-8")
    (dest / "__init__.py").write_text("", encoding="utf-8")
    (dest / "scratch.py").write_text(patched, encoding="utf-8")
    result = LintEngine(config=LintConfig(), root=root).run(
        [], whole_program=True)
    fired = [d for d in _wp_diags(result)]
    assert [d.rule_id for d in fired] == ["RES-001"]        # only the pool
    assert "leak_pool" in fired[0].message
    assert any(d.rule_id == "RES-001" and "leak_segment" in d.message
               for d in result.suppressed)


def test_whole_program_rules_skipped_without_flag():
    result = LintEngine(config=LintConfig(),
                        root=FIXTURES / "exc_bad").run([])
    assert _wp_diags(result) == []
    assert not any(r.startswith(WP_FAMILIES) for r in result.rules_run)
