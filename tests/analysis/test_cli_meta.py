"""CLI behaviour and the meta-invariant: the repo's own tree lints clean,
so CI greenness and the lint baseline can never drift apart."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis import LintEngine, all_rules, load_config
from repro.analysis.cli import main as lint_main

ROOT = Path(__file__).parents[2]
FIXTURES = ROOT / "tests/analysis/fixtures"


def test_repo_tree_is_lint_clean():
    """`repro-lint src tests` on the current tree must exit 0."""
    engine = LintEngine(config=load_config(ROOT / "pyproject.toml"), root=ROOT)
    result = engine.run([ROOT / "src", ROOT / "tests"])
    assert result.diagnostics == [], "\n".join(
        d.format_text() for d in result.diagnostics)
    assert result.exit_code == 0
    assert result.files_checked > 100  # sanity: it actually walked the tree


def test_repo_tree_is_whole_program_clean():
    """`repro-lint --whole-program` with the committed baseline exits 0.

    Every finding must be either fixed in source or carried in
    ``lint-baseline.json`` with a reason; a stale baseline entry shows up
    here as a BAS-001 warning diagnostic and fails the assertion too.
    """
    from repro.analysis import Baseline

    baseline = Baseline.load(ROOT / "lint-baseline.json")
    engine = LintEngine(config=load_config(ROOT / "pyproject.toml"), root=ROOT)
    result = engine.run([], whole_program=True, baseline=baseline)
    assert result.diagnostics == [], "\n".join(
        d.format_text() for d in result.diagnostics)
    assert result.exit_code == 0
    # the baseline is doing work, not rotting: every entry matched
    assert baseline.stale_entries() == []
    assert any(d.rule_id.startswith(("EXC", "CONC", "RES"))
               for d in result.suppressed) or result.suppressed == []


def test_cli_whole_program_json_smoke(tmp_path):
    """The CI invocation end-to-end: --whole-program --json, baseline from
    pyproject, machine-readable artifact written."""
    out = tmp_path / "whole-program.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "tests",
         "--whole-program", "--json", "--output", str(out)],
        cwd=ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(out.read_text())
    assert payload["summary"]["total"] == 0
    wp_rules = {"EXC-001", "EXC-002", "RES-001",
                "CONC-001", "CONC-002", "CONC-003"}
    assert wp_rules <= set(payload["rules_run"])


def test_hyg001_fires_on_tracked_bytecode(tmp_path):
    """True positive for the project-level rule: a committed .pyc fails."""
    import os
    env = {**os.environ, "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
           "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}

    def git(*args):
        return subprocess.run(["git", *args], cwd=tmp_path, env=env,
                              capture_output=True, text=True)

    if git("init").returncode != 0:
        return  # git unavailable
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "mod.cpython-311.pyc").write_bytes(b"\0")
    (tmp_path / "stale.pyc").write_bytes(b"\0")
    git("add", "-f", ".")
    from repro.analysis import LintConfig
    result = LintEngine(config=LintConfig(), root=tmp_path).run([tmp_path])
    hits = [d for d in result.diagnostics if d.rule_id == "HYG-001"]
    assert len(hits) == 2
    assert result.exit_code == 1


def test_no_bytecode_tracked_by_git():
    proc = subprocess.run(["git", "ls-files"], cwd=ROOT,
                          capture_output=True, text=True)
    if proc.returncode != 0:
        return  # not a git checkout
    bad = [p for p in proc.stdout.splitlines()
           if "__pycache__" in p or p.endswith((".pyc", ".pyo"))]
    assert bad == []


def test_module_entry_point_runs():
    """`python -m repro.analysis` is the CI invocation; smoke it end-to-end."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "tests",
         "--format", "json"],
        cwd=ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["summary"]["total"] == 0


def test_list_rules_covers_catalogue(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.id in out
    for family in ("DET-", "DEC-", "NPY-", "OBS-", "API-", "HYG-", "DUR-"):
        assert family in out


def test_unknown_rule_exits_2(capsys):
    assert lint_main(["--select", "NOPE-999", str(FIXTURES)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_exits_2(capsys):
    assert lint_main(["definitely/not/here.py"]) == 2


def test_lint_as_requires_single_file(capsys):
    assert lint_main([str(FIXTURES / "determinism"),
                      "--lint-as", "src/repro/core/x.py", "--no-config"]) == 2


def test_json_output_file(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = lint_main([
        str(FIXTURES / "determinism/bad_wallclock.py"),
        "--lint-as", "src/repro/core/stamp.py", "--no-config",
        "--disable", "HYG",
        "--format", "json", "--output", str(out),
    ])
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["summary"]["by_rule"] == {"DET-001": 2}


def test_select_narrows_rules(capsys):
    code = lint_main([
        str(FIXTURES / "determinism/bad_wallclock.py"),
        "--lint-as", "src/repro/core/stamp.py", "--no-config",
        "--select", "NPY",
    ])
    assert code == 0  # DET rules deselected, nothing else fires
