"""ProjectModel unit tests against the callgraph fixture packages.

Each fixture package isolates one resolution feature: typed vs dynamic
method dispatch, call cycles, ``functools.partial``, and PEP 562 lazy
exports.
"""

from pathlib import Path

from repro.analysis.project import AMBIENT_METHOD_NAMES, ProjectModel
from repro.analysis.rules.exception_flow import get_escape_analyzer

FIXTURES = Path(__file__).parent / "fixtures" / "callgraph"


def _model(tree: str) -> ProjectModel:
    model = ProjectModel.build(FIXTURES / tree)
    assert model.errors == []
    return model


def _edges(model: ProjectModel, qual: str):
    return [(e.callee, e.kind) for e in model.functions[qual].edges]


# -- dynamic dispatch ------------------------------------------------------


def test_annotated_receiver_resolves_precisely():
    model = _model("dispatch")
    edges = _edges(model, "repro.codecs.run_typed")
    assert edges == [("repro.codecs.FastCodec.pack", "call")]


def test_untyped_receiver_fans_out_dynamically():
    model = _model("dispatch")
    edges = _edges(model, "repro.codecs.run_untyped")
    assert set(edges) == {
        ("repro.codecs.FastCodec.pack", "dynamic"),
        ("repro.codecs.SafeCodec.pack", "dynamic"),
    }


def test_ambient_method_names_never_dispatch():
    """``table.get(...)`` must not resolve to every project ``get``."""
    assert "get" in AMBIENT_METHOD_NAMES
    model = _model("dispatch")
    assert _edges(model, "repro.codecs.run_ambient") == []


def test_constructed_local_resolves_precisely():
    model = _model("dispatch")
    edges = _edges(model, "repro.codecs.run_constructed")
    assert edges == [("repro.codecs.SafeCodec.pack", "call")]


# -- cycles ----------------------------------------------------------------


def test_cycle_terminates_and_reaches_both_sides():
    model = _model("cycles")
    reach = model.reachable(["repro.ring.entry"])
    assert {"repro.ring.ping", "repro.ring.pong"} <= reach


def test_cycle_escape_fixpoint_converges():
    model = _model("cycles")
    analyzer = get_escape_analyzer(model)
    for qual in ("repro.ring.entry", "repro.ring.ping", "repro.ring.pong"):
        assert "repro.ring.RingError" in analyzer.summaries[qual]


# -- functools.partial -----------------------------------------------------


def test_partial_binds_the_eventual_callee():
    model = _model("partials")
    edges = _edges(model, "repro.defer.make_job")
    assert ("repro.defer.worker", "partial") in edges


def test_partial_carries_exception_flow():
    model = _model("partials")
    analyzer = get_escape_analyzer(model)
    assert "ZeroDivisionError" in analyzer.summaries["repro.defer.make_job"]


# -- PEP 562 lazy exports --------------------------------------------------


def test_lazy_export_dict_is_scraped():
    model = _model("pep562")
    mod = model.modules["repro.lazy"]
    assert mod.has_getattr
    assert mod.lazy_exports == {"heavy_op": "repro.lazy.impl.heavy_op"}


def test_call_through_lazy_export_resolves():
    model = _model("pep562")
    edges = _edges(model, "repro.user.consume")
    assert edges == [("repro.lazy.impl.heavy_op", "call")]


# -- annotation-driven typing ---------------------------------------------


def test_param_annotation_types_the_local():
    model = _model("dispatch")
    fn = model.functions["repro.codecs.run_typed"]
    assert model.local_types(fn)["codec"] == "repro.codecs.FastCodec"
