"""Reporter output contracts: the JSON schema CI consumes, and the text
format humans read."""

import json
from pathlib import Path

from repro.analysis import LintConfig, LintEngine
from repro.analysis.reporters import JSON_REPORT_VERSION, render_json, render_text

ROOT = Path(__file__).parents[2]
FIXTURES = ROOT / "tests/analysis/fixtures"


def _result():
    engine = LintEngine(config=LintConfig(), root=ROOT)
    return engine.run([FIXTURES / "determinism/bad_wallclock.py"],
                      lint_as="src/repro/core/stamp.py")


def test_json_schema():
    payload = json.loads(render_json(_result()))
    assert payload["version"] == JSON_REPORT_VERSION
    assert set(payload) >= {"version", "files_checked", "rules_run",
                            "diagnostics", "suppressed", "summary", "exit_code"}
    assert payload["files_checked"] == 1
    assert payload["exit_code"] == 1
    assert payload["summary"]["total"] == len(payload["diagnostics"])
    assert payload["summary"]["by_rule"].get("DET-001") == 2
    diag = payload["diagnostics"][0]
    assert set(diag) == {"rule", "family", "path", "line", "col",
                         "message", "severity"}
    assert diag["path"] == "src/repro/core/stamp.py"
    assert diag["severity"] == "error"


def test_text_format():
    text = render_text(_result())
    lines = text.splitlines()
    assert lines[0].startswith("src/repro/core/stamp.py:")
    assert "DET-001" in lines[0]
    assert "2 findings" in lines[-1]


def test_text_clean_run_summary():
    engine = LintEngine(config=LintConfig(), root=ROOT)
    result = engine.run([FIXTURES / "determinism/good_seeded.py"],
                        lint_as="src/repro/core/sampling.py")
    text = render_text(result)
    assert text.splitlines()[-1].startswith("0 findings")
    assert json.loads(render_json(result))["exit_code"] == 0
