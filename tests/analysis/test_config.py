"""[tool.repro-lint] config parsing, path matching, and scoping."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, LintEngine, load_config
from repro.analysis.config import match_path, parse_config

ROOT = Path(__file__).parents[2]


def test_match_path_double_star():
    assert match_path("src/repro/core/x.py", "src/repro/core/**")
    assert match_path("src/repro/core/deep/x.py", "src/repro/core/**")
    assert not match_path("src/repro/obs/x.py", "src/repro/core/**")
    assert match_path("src/repro/__init__.py", "src/repro/__init__.py")


def test_parse_config_full_table():
    cfg = parse_config({
        "select": ["DET"],
        "disable": ["DET-003"],
        "exclude": ["tests/analysis/fixtures/**"],
        "overrides": [
            {"paths": ["src/repro/transfer/**"], "disable": ["DET"]},
        ],
    })
    assert cfg.rule_enabled("DET-001", "determinism", "src/repro/core/x.py")
    assert not cfg.rule_enabled("DET-003", "determinism", "src/repro/core/x.py")
    assert not cfg.rule_enabled("NPY-001", "numpy-hygiene", "src/repro/core/x.py")
    assert not cfg.rule_enabled("DET-001", "determinism", "src/repro/transfer/x.py")
    assert cfg.excluded("tests/analysis/fixtures/determinism/bad_wallclock.py")


def test_parse_config_rejects_bad_types():
    with pytest.raises(ValueError):
        parse_config({"select": "DET"})
    with pytest.raises(ValueError):
        parse_config({"overrides": [{"disable": ["DET"]}]})


def test_load_config_missing_file_is_default():
    cfg = load_config(Path("/nonexistent/pyproject.toml"))
    assert cfg.select == [] and cfg.disable == []


def test_repo_pyproject_excludes_fixture_corpus():
    cfg = load_config(ROOT / "pyproject.toml")
    assert cfg.excluded("tests/analysis/fixtures/determinism/bad_wallclock.py")


def test_engine_honours_exclude():
    cfg = LintConfig(exclude=["tests/analysis/fixtures/**"])
    engine = LintEngine(config=cfg, root=ROOT)
    fixture = ROOT / "tests/analysis/fixtures/determinism/bad_wallclock.py"
    result = engine.run([fixture])
    assert result.files_checked == 0


def test_config_disable_beats_default_scope():
    cfg = LintConfig(disable=["OBS-001"])
    engine = LintEngine(config=cfg, root=ROOT)
    fixture = ROOT / "tests/analysis/fixtures/obs_coverage/bad_untraced.py"
    result = engine.run([fixture], lint_as="src/repro/baselines/toy.py")
    assert not any(d.rule_id == "OBS-001" for d in result.diagnostics)
