"""Stand-in decode vocabulary at the canonical module path."""


class ChecksumError(ValueError):
    pass


DECODE_ERRORS = (ChecksumError, ValueError)
