"""A codec entry point leaking a type outside DECODE_ERRORS."""


def compress(data):
    if not data:
        raise OSError("no scratch space")    # EXC-001
    return bytes(data)
