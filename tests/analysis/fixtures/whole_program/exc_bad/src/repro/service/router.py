"""A cluster entry point leaking outside even the transport vocabulary."""


def _misroute(port):
    raise RuntimeError(f"no shard on {port}")


def do_forward(port, body):
    return _misroute(port)       # RuntimeError escapes: EXC-001
