"""Stand-in service vocabulary at the canonical module path."""


class ServiceError(Exception):
    pass


class BadRequestError(ServiceError):
    pass
