"""Two bad handlers: an undeclared escape and an unprovable one."""

from repro.service.schemas import BadRequestError


def _lookup(key):
    raise KeyError(key)


def _mirror(exc):
    raise type(exc)(str(exc))


def do_fetch(key):
    if not key:
        raise BadRequestError("empty key")
    return _lookup(key)          # KeyError escapes: EXC-001


def do_echo(exc):
    _mirror(exc)                 # dynamic raise escapes: EXC-002
