"""Fixture package root."""
