"""A parallel API entry leaking a type outside its vocabulary."""


class ParallelJobError(RuntimeError):
    pass


def compress_many(jobs):
    if not jobs:
        raise IndexError("no jobs")          # EXC-001
    raise ParallelJobError("covered: own error type")
