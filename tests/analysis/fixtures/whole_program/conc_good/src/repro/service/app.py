"""The same shapes done right: await, executor hand-off, locked writes."""

import asyncio
import threading

_pending = []
_pending_lock = threading.Lock()


async def handle_tick():
    await asyncio.sleep(0.1)


def _record(item):
    with _pending_lock:
        _pending.append(item)


def start():
    worker = threading.Thread(target=_record)
    worker.start()
    return worker
