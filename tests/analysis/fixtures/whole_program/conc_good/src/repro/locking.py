"""Both call sites honour the same global acquisition order."""

import threading

_alpha = threading.Lock()
_beta = threading.Lock()


def forward():
    with _alpha:
        with _beta:
            return 1


def also_forward():
    with _alpha:
        with _beta:
            return 2
