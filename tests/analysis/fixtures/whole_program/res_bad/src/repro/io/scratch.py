"""Leaked resources: no finally, no with, no transfer, no owns marker."""

from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory


def leak_segment(n):
    seg = shared_memory.SharedMemory(create=True, size=n)   # RES-001
    seg.buf[:1] = b"x"
    return n


def leak_pool(items):
    pool = ThreadPoolExecutor(max_workers=2)                # RES-001
    futures = [pool.submit(str, item) for item in items]
    return [f.done() for f in futures]
