"""Every tracked acquisition takes one of the sanctioned release paths."""

from concurrent.futures import ThreadPoolExecutor
from multiprocessing import shared_memory
from tempfile import TemporaryDirectory


def finally_released(n):
    seg = shared_memory.SharedMemory(create=True, size=n)
    try:
        seg.buf[:1] = b"x"
        return bytes(seg.buf[:1])
    finally:
        seg.close()
        seg.unlink()


def with_managed(items):
    with TemporaryDirectory() as scratch:
        return [scratch + "/" + str(item) for item in items]


def transferred(n):
    seg = shared_memory.SharedMemory(create=True, size=n)
    return seg                        # caller owns it now


def handed_off(arena, n):
    seg = shared_memory.SharedMemory(create=True, size=n)
    arena.adopt(seg)                  # repro-lint: owns=seg
    return arena


class PoolHolder:
    def __init__(self):
        pool = ThreadPoolExecutor(max_workers=1)
        self._pool = pool             # instance takes ownership

    def close(self):
        self._pool.shutdown(wait=True)
