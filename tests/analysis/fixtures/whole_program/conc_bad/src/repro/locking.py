"""The classic two-lock deadlock shape."""

import threading

_alpha = threading.Lock()
_beta = threading.Lock()


def forward():
    with _alpha:
        with _beta:                  # CONC-003 vs backward()
            return 1


def backward():
    with _beta:
        with _alpha:
            return 2
