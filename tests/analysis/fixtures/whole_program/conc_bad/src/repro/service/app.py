"""Loop-blocking calls and an unlocked thread-shared write."""

import threading
import time

_pending = []


async def handle_tick():
    time.sleep(0.1)                  # CONC-001: blocks the loop directly


def _drain():
    time.sleep(0.5)


async def handle_flush():
    _drain()                         # CONC-001: blocking via a sync callee


def _record(item):
    _pending.append(item)            # CONC-002: unlocked, thread-reachable


def start():
    worker = threading.Thread(target=_record)
    worker.start()
    return worker
