"""A codec entry point that only raises the decode vocabulary."""

from repro.encoding.container import ChecksumError


def compress(data):
    if not data:
        raise ChecksumError("empty payload")
    return bytes(data)
