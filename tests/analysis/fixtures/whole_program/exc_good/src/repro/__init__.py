"""Fixture package root."""
