"""Handlers whose escapes stay inside the declared vocabulary."""

from repro.encoding.container import DECODE_ERRORS
from repro.service.schemas import BadRequestError


def _lookup(key):
    raise KeyError(key)


def do_fetch(key):
    try:
        return _lookup(key)
    except KeyError as exc:
        raise BadRequestError(str(exc)) from exc


def do_decode(blob):
    try:
        return bytes(blob)
    except DECODE_ERRORS:
        raise BadRequestError("undecodable blob")
