"""A cluster entry point: transport escapes are in *its* vocabulary."""


def _probe(port):
    raise ConnectionError(f"shard on {port} unreachable")


def do_probe_shard(port):
    return _probe(port)          # ConnectionError: declared for cluster
