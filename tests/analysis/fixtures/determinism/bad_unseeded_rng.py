"""Known-bad: unseeded / global-state RNG (DET-002)."""

import random

import numpy as np


def jitter(block):
    noise = np.random.rand(*block.shape)     # DET-002: legacy global RNG
    rng = np.random.default_rng()            # DET-002: no seed
    pick = random.choice([1, 2, 3])          # DET-002: global random module
    return block + noise, rng, pick
