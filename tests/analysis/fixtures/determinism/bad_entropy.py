"""Known-bad: OS entropy sources (DET-003)."""

import os
import uuid


def make_run_id() -> str:
    salt = os.urandom(8)                     # DET-003
    return uuid.uuid4().hex + salt.hex()     # DET-003
