"""Known-good: seeded RNG and monotonic duration timing are allowed."""

import time

import numpy as np


def sample_blocks(shape, seed: int):
    rng = np.random.default_rng(seed)        # seeded: fine
    t0 = time.perf_counter()                 # duration, not wall clock: fine
    idx = rng.integers(0, shape[0], size=4)
    return idx, time.perf_counter() - t0
