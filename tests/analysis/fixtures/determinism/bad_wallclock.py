"""Known-bad: wall-clock reads inside a deterministic package (DET-001)."""

import time
from datetime import datetime


def stamp_header(header: dict) -> dict:
    header["created"] = time.time()          # DET-001
    header["pretty"] = datetime.now()        # DET-001
    return header
