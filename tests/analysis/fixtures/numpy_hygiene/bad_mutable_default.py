"""Known-bad: mutable default arguments (NPY-003)."""


def accumulate(value, into=[]):              # NPY-003
    into.append(value)
    return into


def tag(name, registry={}):                  # NPY-003
    registry[name] = True
    return registry
