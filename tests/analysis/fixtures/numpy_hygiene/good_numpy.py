"""Known-good: explicit dtypes, tolerance compares, None defaults."""

import numpy as np


def scratch(n: int, into=None):
    if into is None:
        into = []
    buf = np.zeros(n, dtype=np.uint8)
    tmp = np.empty((n, 2), dtype=np.float32)
    into.append(buf)
    return buf, tmp, into


def classify(residual, quantum):
    codes = np.rint(residual / quantum).astype(np.int64)
    return codes == 0, np.isclose(residual, 0.0, atol=quantum)
