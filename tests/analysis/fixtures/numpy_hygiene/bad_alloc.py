"""Known-bad: dtype-less allocation in a codec hot path (NPY-002)."""

import numpy as np


def scratch(n: int):
    buf = np.zeros(n)                        # NPY-002: defaults to float64
    tmp = np.empty((n, 2))                   # NPY-002
    return buf, tmp
