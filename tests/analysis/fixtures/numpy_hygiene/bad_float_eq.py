"""Known-bad: exact float comparisons in a numeric kernel (NPY-001)."""


def classify(residual, fill):
    hits = residual == 0.5                   # NPY-001
    if fill != 1e-3:                         # NPY-001
        hits = ~hits
    return hits
