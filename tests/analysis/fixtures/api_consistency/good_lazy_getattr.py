"""Good: PEP 562 lazy exports — __all__ names resolved by __getattr__.

API-002 must not flag 'Codec'/'tune' as unbound: a module-level
__getattr__ makes them importable even though nothing binds them
statically (this is exactly how src/repro/__init__.py avoids importing
numpy at lint time).
"""

import importlib

__all__ = ["Codec", "tune", "VERSION"]

VERSION = "1.0"

_LAZY = {"Codec": ("pkg.codec", "Codec"), "tune": ("pkg.tuner", "tune")}


def __getattr__(name):
    if name in _LAZY:
        module, attr = _LAZY[name]
        return getattr(importlib.import_module(module), attr)
    raise AttributeError(name)
