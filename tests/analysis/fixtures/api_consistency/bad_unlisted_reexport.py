"""Known-bad package __init__: re-export not listed in __all__ (API-003)."""

from json import dumps, loads

__all__ = ["dumps"]                               # loads missing: API-003
