"""Known-bad package __init__: __all__ advertises a ghost (API-002)."""

from json import dumps

__all__ = ["dumps", "loads_that_never_existed"]   # API-002
