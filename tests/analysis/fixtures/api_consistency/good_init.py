"""Known-good package __init__: __all__ present and truthful."""

from json import dumps as _dumps
from json import loads

CONSTANT = 7

__all__ = ["loads", "CONSTANT", "public"]


def public():
    return _dumps({})
