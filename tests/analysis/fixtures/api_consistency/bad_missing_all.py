"""Known-bad package __init__: no __all__ at all (API-001)."""

from json import dumps, loads


def helper():
    return dumps(loads("{}"))
