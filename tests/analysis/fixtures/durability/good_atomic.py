"""Known-good: atomic commits, read-only opens, and append journaling."""

import json
from pathlib import Path

from repro.runtime import atomic_write


def save_report(path, rows):
    atomic_write(path, json.dumps(rows))


def load_blob(path: Path) -> bytes:
    with open(path, "rb") as fh:
        return fh.read()


def append_event(path: Path, record: dict) -> None:
    # append journaling is the other sanctioned durability pattern
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")
