"""Known-bad: artifact writes that a crash can leave torn (DUR-001)."""

import json
from pathlib import Path


def save_report(path, rows):
    with open(path, "w") as fh:                      # DUR-001
        json.dump(rows, fh)


def save_blob(path: Path, blob: bytes) -> None:
    path.write_bytes(blob)                           # DUR-001
