"""functools.partial binds a project function for a later call."""

import functools


def worker(scale, value):
    if scale == 0:
        raise ZeroDivisionError("scale")
    return value / scale


def make_job(scale):
    return functools.partial(worker, scale)


def run(value):
    job = make_job(2)
    return job(value)
