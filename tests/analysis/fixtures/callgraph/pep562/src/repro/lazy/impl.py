def heavy_op(x):
    return x * 2
