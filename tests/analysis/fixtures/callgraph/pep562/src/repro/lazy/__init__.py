"""PEP 562 lazy exports, spelled the way the real package root does."""

import importlib

__all__ = ["heavy_op"]

#: Lazily resolved public symbols: name -> (defining module, attribute).
_LAZY_EXPORTS = {
    "heavy_op": ("repro.lazy.impl", "heavy_op"),
}


def __getattr__(name):
    try:
        modname, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(name) from None
    return getattr(importlib.import_module(modname), attr)
