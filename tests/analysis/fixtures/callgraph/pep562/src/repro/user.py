"""Calls through the lazy package attribute."""

from repro import lazy


def consume(x):
    return lazy.heavy_op(x)
