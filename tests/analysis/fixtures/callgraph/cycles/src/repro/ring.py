"""A call cycle: the fixpoint and reachability must both terminate."""


class RingError(RuntimeError):
    pass


def ping(n):
    if n <= 0:
        raise RingError("bottom")
    return pong(n - 1)


def pong(n):
    return ping(n - 1)


def entry(n):
    return ping(n)
