"""Same-named methods on two classes plus typed/untyped receivers."""


class FastCodec:
    def pack(self, data):
        return bytes(data)

    def get(self, key):
        return key


class SafeCodec:
    def pack(self, data):
        return bytes(reversed(data))


def run_typed(codec: FastCodec, data):
    return codec.pack(data)         # precise: annotation types the receiver


def run_untyped(codec, data):
    return codec.pack(data)         # dynamic: fans out to both classes


def run_ambient(table, key):
    return table.get(key)             # ambient dict-style name: no fallback


def run_constructed(data):
    codec = SafeCodec()
    return codec.pack(data)         # precise: constructor types the local
