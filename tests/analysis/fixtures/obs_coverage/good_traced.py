"""Known-good: decorated entry points and an explicit in-body span."""

from repro.obs import span, traced_compress, traced_decompress


class ToyCodec:
    codec_name = "toy"

    @traced_compress
    def compress(self, data, *, abs_eb=None):
        return bytes(len(data))

    @traced_decompress
    def decompress(self, blob):
        return list(blob)


def compress_many(arrays):
    with span("compress_many", n=len(arrays)):
        return [bytes(len(a)) for a in arrays]


def _compress_block(block):
    # private helper: inherits the caller's span, exempt by convention
    return bytes(len(block))
