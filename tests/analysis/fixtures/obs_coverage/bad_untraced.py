"""Known-bad: codec entry points without any repro.obs coverage (OBS-001)."""


class ToyCodec:
    codec_name = "toy"

    def compress(self, data, *, abs_eb=None):        # OBS-001
        return bytes(len(data))

    def decompress(self, blob):                      # OBS-001
        return list(blob)
