"""Known-bad even at a cluster path: the transport grant does not open
the door to arbitrary catches (DEC-003)."""


def do_forward(port, body):
    try:
        return _send(port, body)                 # noqa: F821 -- stub
    except RuntimeError:                 # DEC-003: not transport, not declared
        return None


def handle_probe(port):
    try:
        return _fetch_health(port)               # noqa: F821 -- stub
    except (MemoryError, Exception):     # DEC-003 twice: foreign + broad
        return None
