"""Known-bad: service handler catches outside the declared vocabulary (DEC-003)."""


def do_compress(req, store):
    try:
        return store.put(req)
    except OSError:                          # DEC-003: raise BlobIOError at the site
        return None


def handle_request(body):
    try:
        return body["array"]
    except (AttributeError, Exception):      # DEC-003 twice: foreign + broad
        return None
