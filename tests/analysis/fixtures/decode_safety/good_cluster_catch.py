"""Known-good *at a cluster path*: router/supervisor handlers speak raw
sockets to shard processes, so the transport family is in their declared
vocabulary — provided each catch folds the failure into the 503 error.

The same file linted as a plain service handler module must fire DEC-003
on every transport catch: the grant is scoped to the cluster modules.
"""

import http.client


class ShardUnavailableError(Exception):
    status = 503


def do_forward(port, body):
    try:
        return _send(port, body)                     # noqa: F821 -- stub
    except (ConnectionError, OSError, TimeoutError) as exc:
        raise ShardUnavailableError(str(exc)) from exc


def do_probe_shard(port):
    try:
        return _fetch_health(port)                   # noqa: F821 -- stub
    except http.client.HTTPException as exc:
        raise ConnectionError(str(exc)) from exc
