"""Known-bad: broad excepts inside decoder functions (DEC-002)."""


def decompress(blob: bytes):
    try:
        return _parse(blob)
    except Exception:                        # DEC-002: swallows codec bugs
        return None


def decode_header(blob: bytes):
    try:
        return blob[:4]
    except:                                  # DEC-002: bare except
        return b""


def _parse(blob):
    return blob
