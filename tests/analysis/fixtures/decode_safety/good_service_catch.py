"""Known-good: service handler catches only DECODE_ERRORS / SERVICE_ERRORS."""

DECODE_ERRORS = (ValueError, EOFError, KeyError, IndexError, OverflowError)


class ServiceError(Exception):
    status = 500


class BlobCorruptError(ServiceError):
    status = 502


def do_decompress(req, store):
    try:
        blob = store.get(req)
    except BlobCorruptError:                 # declared service exception
        blob = store.fetch_raw(req)
    try:
        return blob.decode()
    except DECODE_ERRORS:                    # the decode vocabulary
        return None


def do_estimate(req):
    try:
        return req["codec"]
    except ServiceError:                     # the base class is declared too
        raise
