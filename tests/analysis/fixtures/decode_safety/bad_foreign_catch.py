"""Known-bad: decoder catches a type outside DECODE_ERRORS (DEC-001)."""


def decode_payload(blob: bytes):
    try:
        return memoryview(blob)
    except RuntimeError:                     # DEC-001: not a decode error
        return None


def read_stream(fh):
    try:
        return fh.read()
    except (TypeError, AttributeError):      # DEC-001 twice
        return b""
