"""Known-good: decoders catching only the documented corruption types."""

DECODE_ERRORS = (ValueError, EOFError, KeyError, IndexError, OverflowError)


class CorruptStreamError(ValueError):
    pass


def decompress(blob: bytes):
    try:
        return _parse(blob)
    except DECODE_ERRORS as exc:
        raise CorruptStreamError(str(exc)) from exc


def decode_section(blob: bytes):
    try:
        return blob[4:]
    except (ValueError, EOFError):
        raise CorruptStreamError("truncated section") from None
    except CorruptStreamError:
        raise


def _parse(blob):
    return blob
