"""Suppression-comment semantics: same-line, line-above, families,
reasons, and the requires-reason escalation for DEC-002."""

from pathlib import Path

from repro.analysis import LintConfig, LintEngine
from repro.analysis.suppressions import scan_suppressions

ROOT = Path(__file__).parents[2]


def _lint(source: str, relpath: str):
    return LintEngine(config=LintConfig(), root=ROOT).lint_source(source, relpath)


WALLCLOCK = "import time\n\ndef f():\n    return time.time()%s\n"


def test_unsuppressed_fires():
    res = _lint(WALLCLOCK % "", "src/repro/core/x.py")
    assert [d.rule_id for d in res.diagnostics] == ["DET-001"]


def test_same_line_suppression():
    res = _lint(WALLCLOCK % "  # repro-lint: disable=DET-001",
                "src/repro/core/x.py")
    assert res.diagnostics == []
    assert [d.rule_id for d in res.suppressed] == ["DET-001"]


def test_line_above_suppression():
    src = ("import time\n\ndef f():\n"
           "    # repro-lint: disable=DET-001 -- fixture clock\n"
           "    return time.time()\n")
    res = _lint(src, "src/repro/core/x.py")
    assert res.diagnostics == []
    assert len(res.suppressed) == 1
    supp = scan_suppressions(src)
    assert supp[5].reason == "fixture clock"


def test_family_suppression():
    res = _lint(WALLCLOCK % "  # repro-lint: disable=DET",
                "src/repro/core/x.py")
    assert res.diagnostics == []


def test_wrong_id_does_not_suppress():
    res = _lint(WALLCLOCK % "  # repro-lint: disable=NPY-001",
                "src/repro/core/x.py")
    assert [d.rule_id for d in res.diagnostics] == ["DET-001"]


BROAD = ("def decompress(blob):\n"
         "    try:\n"
         "        return blob\n"
         "    except Exception:%s\n"
         "        return None\n")


def test_requires_reason_without_reason_still_fails():
    res = _lint(BROAD % "  # repro-lint: disable=DEC-002",
                "src/repro/encoding/x.py")
    assert len(res.diagnostics) == 1
    assert "suppression ignored" in res.diagnostics[0].message


def test_requires_reason_with_reason_suppresses():
    res = _lint(BROAD % "  # repro-lint: disable=DEC-002 -- worker boundary",
                "src/repro/encoding/x.py")
    assert res.diagnostics == []
    assert [d.rule_id for d in res.suppressed] == ["DEC-002"]


def test_multiple_ids_one_comment():
    src = ("import time, os\n\ndef f():\n"
           "    return time.time(), os.urandom(4)"
           "  # repro-lint: disable=DET-001,DET-003\n")
    res = _lint(src, "src/repro/core/x.py")
    assert res.diagnostics == []
    assert len(res.suppressed) == 2


def test_stacked_standalone_comments_merge():
    # two separate disable comments above one line must both apply
    src = ("import time, os\n\ndef f():\n"
           "    # repro-lint: disable=DET-001 -- fixture clock\n"
           "    # repro-lint: disable=DET-003 -- nonce, not data-affecting\n"
           "    return time.time(), os.urandom(4)\n")
    res = _lint(src, "src/repro/core/x.py")
    assert res.diagnostics == []
    assert {d.rule_id for d in res.suppressed} == {"DET-001", "DET-003"}
    supp = scan_suppressions(src)
    assert supp[6].ids == frozenset({"DET-001", "DET-003"})
    assert supp[6].reason == "fixture clock; nonce, not data-affecting"


def test_stacked_plus_trailing_comment_merge():
    src = ("import time, os\n\ndef f():\n"
           "    # repro-lint: disable=DET-001\n"
           "    return time.time(), os.urandom(4)"
           "  # repro-lint: disable=DET-003\n")
    res = _lint(src, "src/repro/core/x.py")
    assert res.diagnostics == []
    assert {d.rule_id for d in res.suppressed} == {"DET-001", "DET-003"}


def test_comment_chain_targets_first_code_line():
    src = ("import time\n\ndef f():\n"
           "    # repro-lint: disable=DET-001 -- why\n"
           "    # another comment\n"
           "\n"
           "    return time.time()\n")
    res = _lint(src, "src/repro/core/x.py")
    assert res.diagnostics == []


def test_syntax_error_reported_as_syntax_diagnostic():
    res = _lint("def broken(:\n", "src/repro/core/x.py")
    assert [d.rule_id for d in res.diagnostics] == ["SYNTAX"]
    assert res.diagnostics[0].line == 1
