"""Engine robustness: unparseable inputs, the --jobs fan-out, registry
invariants. A broken file must cost one SYNTAX finding, never a crash."""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, LintEngine
from repro.analysis.cli import main as lint_main
from repro.analysis.registry import _RULES, Rule, register

FIXTURES = Path(__file__).parent / "fixtures"


def _engine(root: Path) -> LintEngine:
    return LintEngine(config=LintConfig(), root=root)


# -- unparseable / unreadable files ---------------------------------------


def test_syntax_error_yields_one_diagnostic(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n    pass\n", encoding="utf-8")
    result = _engine(tmp_path).run([bad])
    assert [d.rule_id for d in result.diagnostics] == ["SYNTAX"]
    assert result.diagnostics[0].line == 1
    assert result.exit_code == 1


def test_null_bytes_yield_syntax_not_crash(tmp_path):
    bad = tmp_path / "nul.py"
    bad.write_bytes(b"x = 1\x00\n")
    result = _engine(tmp_path).run([bad])
    assert [d.rule_id for d in result.diagnostics] == ["SYNTAX"]
    # 3.12+ parses null bytes into a SyntaxError; older ast raised ValueError
    assert "null bytes" in result.diagnostics[0].message


def test_non_utf8_yields_syntax_not_crash(tmp_path):
    bad = tmp_path / "latin.py"
    bad.write_bytes(b"# caf\xe9\nx = 1\n")
    result = _engine(tmp_path).run([bad])
    assert [d.rule_id for d in result.diagnostics] == ["SYNTAX"]
    assert "unreadable" in result.diagnostics[0].message


def test_linting_continues_past_broken_files(tmp_path):
    (tmp_path / "a_broken.py").write_text("def f(:\n", encoding="utf-8")
    (tmp_path / "b_fine.py").write_text("x = 1\n", encoding="utf-8")
    result = _engine(tmp_path).run([tmp_path])
    assert result.files_checked == 2
    assert [d.rule_id for d in result.diagnostics] == ["SYNTAX"]
    assert result.diagnostics[0].path.endswith("a_broken.py")


# -- --jobs fan-out --------------------------------------------------------


def _comparable(result):
    return ([(d.path, d.line, d.rule_id, d.message) for d in result.diagnostics],
            [(d.path, d.line, d.rule_id) for d in result.suppressed],
            result.files_checked)


def test_parallel_jobs_match_serial_run():
    root = Path(__file__).parents[2]
    paths = [root / "src" / "repro" / "analysis"]
    serial = _engine(root).run(paths, jobs=1)
    fanned = _engine(root).run(paths, jobs=2)
    assert _comparable(serial) == _comparable(fanned)


def test_parallel_jobs_match_on_fixture_corpus(tmp_path):
    """Same diagnostics, same order, with broken files in the mix."""
    for i in range(6):
        (tmp_path / f"mod_{i}.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8")
    (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
    serial = _engine(tmp_path).run([tmp_path], jobs=1)
    fanned = _engine(tmp_path).run([tmp_path], jobs=3)
    assert _comparable(serial) == _comparable(fanned)
    assert serial.files_checked == 7


def test_cli_rejects_bad_jobs(capsys):
    code = lint_main([str(FIXTURES / "determinism/bad_wallclock.py"),
                      "--no-config", "--jobs", "0"])
    assert code == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_ignore_is_an_alias_for_disable(capsys):
    fixture = str(FIXTURES / "determinism/bad_wallclock.py")
    args = [fixture, "--lint-as", "src/repro/core/stamp.py",
            "--no-config", "--disable", "HYG"]
    assert lint_main(args) == 1
    capsys.readouterr()
    assert lint_main(args + ["--ignore", "DET"]) == 0


# -- registry invariants ---------------------------------------------------


def test_duplicate_rule_id_is_rejected():
    class Imposter(Rule):
        id = "DET-001"
        family = "determinism"
        description = "duplicate"

        def check(self, ctx):
            return ()

    original = _RULES["DET-001"]
    with pytest.raises(ValueError, match="duplicate rule id 'DET-001'"):
        register(Imposter)
    assert _RULES["DET-001"] is original   # registry left untouched
