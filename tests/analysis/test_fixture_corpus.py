"""Fixture-corpus tests: every rule family has true-positive and
true-negative snippets, and the CLI exits non-zero on each known-bad one.

Each fixture is linted *as if* it lived at an in-scope repo path
(``lint_as``), which is how the engine's path scoping is meant to be
exercised without planting bad code inside ``src/``.
"""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, LintEngine
from repro.analysis.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture relpath, lint-as path, rule ids that must fire, expected count)
BAD_CORPUS = [
    ("determinism/bad_wallclock.py", "src/repro/core/stamp.py",
     {"DET-001"}, 2),
    ("determinism/bad_unseeded_rng.py", "src/repro/prediction/jitter.py",
     {"DET-002"}, 3),
    ("determinism/bad_entropy.py", "src/repro/encoding/ids.py",
     {"DET-003"}, 2),
    ("decode_safety/bad_broad_except.py", "src/repro/encoding/toy.py",
     {"DEC-002"}, 2),
    ("decode_safety/bad_foreign_catch.py", "src/repro/encoding/toy.py",
     {"DEC-001"}, 3),
    ("numpy_hygiene/bad_float_eq.py", "src/repro/quantization/cls.py",
     {"NPY-001"}, 2),
    ("numpy_hygiene/bad_alloc.py", "src/repro/encoding/scratch.py",
     {"NPY-002"}, 2),
    ("numpy_hygiene/bad_mutable_default.py", "src/repro/core/acc.py",
     {"NPY-003"}, 2),
    ("obs_coverage/bad_untraced.py", "src/repro/baselines/toy.py",
     {"OBS-001"}, 2),
    ("api_consistency/bad_missing_all.py", "src/repro/toy/__init__.py",
     {"API-001"}, 1),
    ("api_consistency/bad_stale_entry.py", "src/repro/toy/__init__.py",
     {"API-002"}, 1),
    ("api_consistency/bad_unlisted_reexport.py", "src/repro/toy/__init__.py",
     {"API-003"}, 1),
    ("durability/bad_plain_open.py", "src/repro/io/report.py",
     {"DUR-001"}, 2),
    ("decode_safety/bad_service_catch.py", "src/repro/service/handlers.py",
     {"DEC-003"}, 3),
    ("decode_safety/bad_cluster_catch.py", "src/repro/service/router.py",
     {"DEC-003"}, 3),
    # the transport grant is scoped to the cluster modules: the very file
    # that is clean at a cluster path fires on every transport catch here
    ("decode_safety/good_cluster_catch.py", "src/repro/service/handlers.py",
     {"DEC-003"}, 4),
]

GOOD_CORPUS = [
    ("determinism/good_seeded.py", "src/repro/core/sampling.py"),
    ("decode_safety/good_decode_errors.py", "src/repro/encoding/toy.py"),
    ("numpy_hygiene/good_numpy.py", "src/repro/encoding/scratch.py"),
    ("obs_coverage/good_traced.py", "src/repro/baselines/toy.py"),
    ("api_consistency/good_init.py", "src/repro/toy/__init__.py"),
    ("api_consistency/good_lazy_getattr.py", "src/repro/toy/__init__.py"),
    ("durability/good_atomic.py", "src/repro/io/report.py"),
    ("decode_safety/good_service_catch.py", "src/repro/service/handlers.py"),
    ("decode_safety/good_cluster_catch.py", "src/repro/service/supervise.py"),
]


def _engine() -> LintEngine:
    # no pyproject config: the fixtures dir is excluded there on purpose
    return LintEngine(config=LintConfig(), root=Path(__file__).parents[2])


@pytest.mark.parametrize("relpath,lint_as,expected_ids,count",
                         BAD_CORPUS, ids=[c[0] for c in BAD_CORPUS])
def test_bad_fixture_fires(relpath, lint_as, expected_ids, count):
    result = _engine().run([FIXTURES / relpath], lint_as=lint_as)
    fired = {d.rule_id for d in result.diagnostics}
    assert expected_ids <= fired, f"expected {expected_ids}, got {fired}"
    matching = [d for d in result.diagnostics if d.rule_id in expected_ids]
    assert len(matching) == count, [d.format_text() for d in matching]
    assert result.exit_code == 1


@pytest.mark.parametrize("relpath,lint_as",
                         GOOD_CORPUS, ids=[c[0] for c in GOOD_CORPUS])
def test_good_fixture_clean(relpath, lint_as):
    result = _engine().run([FIXTURES / relpath], lint_as=lint_as)
    assert result.diagnostics == [], [d.format_text() for d in result.diagnostics]
    assert result.exit_code == 0


@pytest.mark.parametrize("relpath,lint_as,expected_ids,count",
                         BAD_CORPUS, ids=[c[0] for c in BAD_CORPUS])
def test_cli_exits_nonzero_on_bad_fixture(relpath, lint_as, expected_ids,
                                          count, capsys):
    code = lint_main([str(FIXTURES / relpath), "--lint-as", lint_as,
                      "--no-config", "--disable", "HYG"])
    out = capsys.readouterr().out
    assert code == 1
    assert any(rid in out for rid in expected_ids)


def test_out_of_scope_fixture_is_silent():
    """The same bad code outside the rule's path scope must not fire."""
    result = _engine().run(
        [FIXTURES / "determinism/bad_wallclock.py"],
        lint_as="src/repro/transfer/stamp.py",   # sim clock territory
    )
    assert not any(d.family == "determinism" for d in result.diagnostics)


def test_every_rule_family_has_a_true_positive():
    covered = set()
    for _, _, ids, _ in BAD_CORPUS:
        covered |= {i.split("-")[0] for i in ids}
    assert {"DET", "DEC", "NPY", "OBS", "API", "DUR"} <= covered
