"""Tests for PSNR, SSIM and rate metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    RateDistortionCurve,
    RatePoint,
    bit_rate,
    compression_ratio,
    max_abs_error,
    mean_abs_error,
    psnr,
    rmse,
    ssim,
    value_range,
)


class TestPointwise:
    def test_rmse_known(self):
        a = np.array([0.0, 0.0, 0.0, 0.0])
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(a, b) == 1.0

    def test_psnr_formula(self):
        """Paper Eq. 3 on a hand-computable case."""
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 10.0])
        expected = 20 * np.log10(10.0 / np.sqrt(0.5))
        assert psnr(a, b) == pytest.approx(expected)

    def test_psnr_perfect_is_inf(self):
        a = np.arange(10.0)
        assert psnr(a, a.copy()) == float("inf")

    def test_psnr_with_mask_ignores_fill(self):
        a = np.array([0.0, 1.0, 9.97e36])
        b = np.array([0.0, 0.9, 0.0])
        mask = np.array([True, True, False])
        p = psnr(a, b, mask)
        # without the mask the 1e36 fill dominates; with it, PSNR is the
        # plain two-point computation
        assert p == pytest.approx(20 * np.log10(1.0 / np.sqrt(0.005)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(3), np.zeros(4))

    def test_max_and_mean_abs(self):
        a = np.array([0.0, 0.0])
        b = np.array([1.0, 3.0])
        assert max_abs_error(a, b) == 3.0
        assert mean_abs_error(a, b) == 2.0

    def test_value_range(self):
        assert value_range(np.array([-2.0, 5.0])) == 7.0

    @given(st.integers(min_value=0, max_value=2**31),
           st.floats(min_value=1e-6, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_psnr_monotone_in_error(self, seed, scale):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(100) * 10
        noise = rng.standard_normal(100)
        small = psnr(a, a + scale * 0.1 * noise)
        large = psnr(a, a + scale * noise)
        assert small >= large


class TestSSIM:
    def test_identical_is_one(self):
        img = np.random.default_rng(0).random((32, 32))
        assert ssim(img, img.copy()) == pytest.approx(1.0)

    def test_degrades_with_noise(self):
        rng = np.random.default_rng(1)
        img = np.outer(np.sin(np.arange(64) / 8.0), np.cos(np.arange(64) / 6.0))
        lo = ssim(img, img + 0.01 * rng.standard_normal(img.shape))
        hi = ssim(img, img + 0.3 * rng.standard_normal(img.shape))
        assert 0 <= hi < lo <= 1

    def test_3d_averages_slices(self):
        rng = np.random.default_rng(2)
        vol = rng.random((4, 24, 24))
        assert ssim(vol, vol.copy()) == pytest.approx(1.0)

    def test_mask_restricts_windows(self):
        rng = np.random.default_rng(3)
        img = rng.random((32, 32))
        bad = img.copy()
        bad[:16] += 100.0  # destroy the top half
        mask = np.zeros(img.shape, dtype=bool)
        mask[16:] = True
        with_mask = ssim(img, bad, mask=mask, data_range=1.0)
        without = ssim(img, bad, data_range=1.0)
        assert with_mask > without

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros(5), np.zeros(5))

    def test_fill_values_do_not_poison_valid_windows(self):
        """Regression: ~1e36 fills upstream of a window used to wipe out the
        box-sum precision and force SSIM to exactly 1.0 under a mask."""
        rng = np.random.default_rng(9)
        img = np.sin(np.arange(40) / 5.0)[:, None] * np.ones(40)
        bad = img + 0.3 * rng.standard_normal(img.shape)
        x = img.copy()
        y = bad.copy()
        mask = np.ones(img.shape, dtype=bool)
        mask[:10] = False
        x[:10] = 9.96921e36
        y[:10] = 9.96921e36
        score = ssim(x, y, mask=mask)
        clean = ssim(img[10:], bad[10:])
        assert score < 0.99
        assert score == pytest.approx(clean, abs=0.1)

    def test_constant_images(self):
        img = np.full((16, 16), 3.0)
        assert ssim(img, img.copy()) == 1.0

    def test_against_naive_reference(self):
        """Box-filter implementation equals the direct windowed formula."""
        rng = np.random.default_rng(4)
        x = rng.random((12, 13))
        y = x + 0.1 * rng.standard_normal((12, 13))
        w = 4
        span = x.max() - x.min()
        c1, c2 = (0.01 * span) ** 2, (0.03 * span) ** 2
        scores = []
        for i in range(12 - w + 1):
            for j in range(13 - w + 1):
                wx = x[i:i+w, j:j+w]
                wy = y[i:i+w, j:j+w]
                mx, my = wx.mean(), wy.mean()
                vx, vy = wx.var(), wy.var()
                cxy = ((wx - mx) * (wy - my)).mean()
                scores.append(((2*mx*my + c1) * (2*cxy + c2))
                              / ((mx*mx + my*my + c1) * (vx + vy + c2)))
        assert ssim(x, y, window=w, data_range=span) == pytest.approx(np.mean(scores))


class TestRate:
    def test_compression_ratio(self):
        assert compression_ratio(1000, 500) == pytest.approx(8.0)

    def test_bit_rate(self):
        assert bit_rate(1000, 500) == pytest.approx(4.0)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            compression_ratio(10, 0)
        with pytest.raises(ValueError):
            bit_rate(0, 10)

    def test_curve_interpolation(self):
        curve = RateDistortionCurve("cliz", "SSH")
        curve.add(RatePoint(1e-2, 1.0, 32.0, 50.0, 0.9))
        curve.add(RatePoint(1e-3, 2.0, 16.0, 70.0, 0.99))
        assert curve.psnr_at_bitrate(1.5) == pytest.approx(60.0)
        # CR interpolates geometrically (log-CR vs PSNR)
        assert curve.ratio_at_psnr(60.0) == pytest.approx(np.sqrt(32.0 * 16.0))

    def test_as_row_formats(self):
        p = RatePoint(1e-3, 2.0, 16.0, 70.0, 0.99)
        row = p.as_row()
        assert "PSNR" in row and "CR" in row
