"""Tests for the Z-checker-style quality assessment."""

import numpy as np
import pytest

from repro.metrics import (
    QualityReport,
    assess,
    error_autocorrelation,
    pearson_correlation,
    wasserstein_distance,
)


class TestPearson:
    def test_identical_is_one(self):
        a = np.random.default_rng(0).random(100)
        assert pearson_correlation(a, a.copy()) == pytest.approx(1.0)

    def test_anticorrelated(self):
        a = np.linspace(0, 1, 50)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_arrays(self):
        a = np.full(10, 3.0)
        assert pearson_correlation(a, a.copy()) == 1.0
        assert pearson_correlation(a, np.full(10, 4.0)) == 0.0

    def test_mask_excludes_fill(self):
        a = np.array([1.0, 2.0, 9e36])
        b = np.array([1.0, 2.0, 0.0])
        mask = np.array([True, True, False])
        assert pearson_correlation(a, b, mask) == pytest.approx(1.0)


class TestWasserstein:
    def test_identical_zero(self):
        a = np.random.default_rng(1).random(200)
        assert wasserstein_distance(a, a.copy()) == 0.0

    def test_shift_equals_offset(self):
        a = np.random.default_rng(2).random(500)
        assert wasserstein_distance(a, a + 0.5) == pytest.approx(0.5, rel=1e-6)


class TestAutocorrelation:
    def test_noise_error_near_zero(self):
        rng = np.random.default_rng(3)
        a = rng.random(5000)
        b = a + 0.01 * rng.standard_normal(5000)
        assert abs(error_autocorrelation(a, b)) < 0.1

    def test_structured_error_detected(self):
        a = np.zeros(1000)
        b = a + 0.01 * np.sin(np.arange(1000) / 30.0)  # banding artifact
        assert error_autocorrelation(a, b) > 0.9

    def test_tiny_input(self):
        assert error_autocorrelation(np.zeros(2), np.zeros(2)) == 0.0


class TestAssess:
    def test_full_report_on_real_compression(self):
        from repro import SZ3
        rng = np.random.default_rng(4)
        y, x = np.mgrid[0:48, 0:64]
        data = np.sin(x / 10.0) + np.cos(y / 8.0) + 0.01 * rng.standard_normal((48, 64))
        eb = 1e-3
        dec = SZ3().decompress(SZ3().compress(data, abs_eb=eb))
        report = assess(data, dec)
        assert report.max_abs_error <= eb
        assert report.pearson > 0.99999
        assert report.psnr > 50
        assert report.ssim is not None and report.ssim > 0.999
        assert report.passes(abs_eb=eb)

    def test_fails_on_bad_reconstruction(self):
        rng = np.random.default_rng(5)
        a = rng.random((20, 20))
        b = rng.random((20, 20))  # unrelated
        report = assess(a, b)
        assert not report.passes(abs_eb=0.01)

    def test_1d_has_no_ssim(self):
        a = np.arange(50.0)
        report = assess(a, a + 1e-6)
        assert report.ssim is None

    def test_text_render(self):
        a = np.zeros((8, 8))
        report = assess(a, a.copy())
        text = report.text()
        assert "Pearson" in text and "Wasserstein" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            assess(np.zeros(3), np.zeros(4))

    def test_masked_assessment_ignores_fill_regions(self):
        a = np.ones((10, 10))
        a[:5] = 9e36
        b = a.copy()
        b[5:] += 1e-4
        mask = np.zeros((10, 10), dtype=bool)
        mask[5:] = True
        report = assess(a, b, mask)
        assert report.max_abs_error == pytest.approx(1e-4)
