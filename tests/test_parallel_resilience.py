"""Self-healing dispatch: retries, timeouts, pool respawn, fault injection."""

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultInjectedError, parse_fault_spec
from repro.parallel import (
    JobResult,
    ParallelJobError,
    RetryPolicy,
    compress_many,
    decompress_many,
)


def arrays(n=3, shape=(12, 10), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, shape).astype(np.float32) for _ in range(n)]


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        p = RetryPolicy(retries=5, backoff=0.1, max_backoff=0.3)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.3)  # capped
        assert p.delay(10) == pytest.approx(0.3)

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1}, {"backoff": -0.1}, {"timeout": 0.0},
    ])
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSerialResilience:
    def test_crash_recovered_by_retry(self):
        blobs = compress_many(arrays(), "sz3", abs_eb=1e-2, retries=1,
                              retry_backoff=0.0,
                              faults="seed=1;crash:only=1")
        out = decompress_many(blobs)
        for a, o in zip(arrays(), out):
            assert np.abs(a - o).max() <= 1e-2 + 1e-9

    def test_retries_exhausted_reraises_original_type(self):
        with pytest.raises(FaultInjectedError, match="job 1 failed after 2"):
            compress_many(arrays(), "sz3", abs_eb=1e-2, retries=1,
                          retry_backoff=0.0,
                          faults="seed=1;crash:only=1:attempts=5")

    def test_strict_false_gives_structured_results(self):
        results = compress_many(arrays(), "sz3", abs_eb=1e-2, strict=False,
                                retry_backoff=0.0,
                                faults="seed=1;crash:only=2:attempts=5")
        assert all(isinstance(r, JobResult) for r in results)
        assert [r.ok for r in results] == [True, True, False]
        failed = results[2]
        assert failed.error_type == "FaultInjectedError"
        assert failed.attempts == 1 and "injected crash" in failed.error
        # the good blobs are still usable
        out = decompress_many([r.value for r in results if r.ok])
        assert len(out) == 2

    def test_timeout_enforced_and_counted(self):
        run = obs.start_run()
        try:
            with pytest.raises(TimeoutError):
                compress_many(arrays(n=1), "sz3", abs_eb=1e-2, timeout=0.05,
                              retry_backoff=0.0,
                              faults="seed=1;slow:delay=0.4")
        finally:
            obs.end_run()
        assert run.metrics.counter("parallel.timeouts").value >= 1

    def test_slow_fault_just_delays(self):
        blobs = compress_many(arrays(n=2), "sz3", abs_eb=1e-2,
                              faults="seed=1;slow:delay=0.01")
        assert all(isinstance(b, bytes) for b in blobs)

    def test_attempts_recorded(self):
        results = compress_many(arrays(n=2), "sz3", abs_eb=1e-2, retries=2,
                                retry_backoff=0.0, strict=False,
                                faults="seed=1;crash:only=0:attempts=2")
        assert results[0].ok and results[0].attempts == 3
        assert results[1].ok and results[1].attempts == 1


class TestPoolResilience:
    def test_worker_crash_respawns_pool_and_recovers(self):
        """A hard worker death (os._exit) breaks the executor; the dispatcher
        must respawn it, requeue unfinished jobs, and still deliver."""
        run = obs.start_run()
        try:
            blobs = compress_many(arrays(n=4), "sz3", abs_eb=1e-2, workers=2,
                                  retries=3, retry_backoff=0.0,
                                  faults="seed=1;crash:only=1")
        finally:
            obs.end_run()
        out = decompress_many(blobs)
        for a, o in zip(arrays(n=4), out):
            assert np.abs(a - o).max() <= 1e-2 + 1e-9
        snap = run.metrics.snapshot()
        assert snap["parallel.worker_crashes"]["value"] >= 1
        assert snap["parallel.pool_respawns"]["value"] >= 1
        assert snap["parallel.jobs_ok"]["value"] == 4

    def test_pool_crash_without_retries_fails_structured(self):
        results = compress_many(arrays(n=2), "sz3", abs_eb=1e-2, workers=2,
                                retries=0, retry_backoff=0.0, strict=False,
                                faults="seed=1;crash:only=0:attempts=9")
        by_index = {r.index: r for r in results}
        assert not by_index[0].ok
        assert by_index[0].error_type == "WorkerCrash"

    def test_pool_crash_strict_raises_parallel_job_error(self):
        with pytest.raises(ParallelJobError) as err:
            compress_many(arrays(n=2), "sz3", abs_eb=1e-2, workers=2,
                          retries=0, retry_backoff=0.0,
                          faults="seed=1;crash:only=0:attempts=9")
        assert any(not r.ok for r in err.value.results)


class TestTelemetryDeterminism:
    COUNTERS = ("faults.crash_planned", "faults.bitflip_injected",
                "parallel.jobs_ok", "parallel.job_failures")

    def _run_once(self):
        run = obs.start_run()
        try:
            compress_many(arrays(n=6), "sz3", abs_eb=1e-2, retries=2,
                          retry_backoff=0.0, strict=False,
                          faults="seed=33;crash:p=0.4;bitflip:p=0.3")
        finally:
            obs.end_run()
        snap = run.metrics.snapshot()
        return {k: snap[k]["value"] for k in self.COUNTERS if k in snap}

    def test_same_seed_identical_counters(self):
        first = self._run_once()
        second = self._run_once()
        assert first == second
        assert first.get("faults.crash_planned", 0) > 0

    def test_different_seed_changes_plan(self):
        plans = set()
        for seed in (1, 2, 3, 4, 5):
            inj = parse_fault_spec(f"seed={seed};crash:p=0.4")
            plans.add(tuple(inj.job_faults("many", i).crash_attempts
                            for i in range(8)))
        assert len(plans) > 1


class TestInputValidation:
    def test_bad_faults_type_rejected(self):
        with pytest.raises(TypeError):
            compress_many(arrays(n=1), "sz3", abs_eb=1e-2, faults=42)

    def test_bad_spec_string_rejected(self):
        with pytest.raises(ValueError):
            compress_many(arrays(n=1), "sz3", abs_eb=1e-2, faults="frobnicate")
