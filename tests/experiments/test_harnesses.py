"""Schema/shape tests for the (fast) experiment harnesses.

The heavy sweeps are exercised by ``benchmarks/``; here we pin down the
row schemas and the cheap invariants so harness regressions surface in the
unit suite.
"""

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS, ExperimentResult
from repro.experiments import (
    fig4_smoothness,
    fig8_period_fft,
    fig9_residual,
    table3_datasets,
)
from repro.experiments.common import format_table, rel_eb_to_abs, tuned_config


class TestInfrastructure:
    def test_all_experiments_importable(self):
        import importlib
        for name in ALL_EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)
            assert callable(module.main)

    def test_result_text_contains_rows_and_notes(self):
        r = ExperimentResult("X", "demo", rows=[{"a": 1}], notes=["hello"])
        text = r.text()
        assert "X: demo" in text and "hello" in text and "a" in text

    def test_rel_eb_to_abs_uses_valid_range(self):
        from repro.datasets import load
        f = load("SSH", shape=(12, 10, 48))
        eb = rel_eb_to_abs(f, 1e-2)
        vals = f.data[f.mask]
        assert eb == pytest.approx(1e-2 * float(vals.max() - vals.min()))

    def test_tuned_config_is_memoized(self):
        from repro.datasets import load
        f = load("Hurricane-T", shape=(6, 20, 20))
        a = tuned_config(f, rel_eb=1e-2, sampling_rate=0.2, max_layouts=2)
        b = tuned_config(f, rel_eb=1e-2, sampling_rate=0.2, max_layouts=2)
        assert a is b


class TestFastHarnesses:
    def test_table3_schema(self):
        result = table3_datasets.run()
        assert {r["Name"] for r in result.rows} == {
            "SSH", "CESM-T", "RELHUM", "SOILLIQ", "Tsfc", "Hurricane-T"}
        for row in result.rows:
            assert set(row) >= {"Paper dims", "Generated dims", "Mask", "Period"}

    def test_fig4_roughest_axes(self):
        result = fig4_smoothness.run(datasets=("CESM-T", "Tsfc"))
        by = {r["Dataset"]: r for r in result.rows}
        assert by["CESM-T"]["Roughest axis"] == "height"
        assert by["Tsfc"]["Roughest axis"] == "time"
        assert by["CESM-T"]["Rough/smooth"] > 5

    def test_fig8_peak_rows(self):
        result = fig8_period_fft.run("SSH", n_rows=4)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["Peak f"] == 21  # 252 / 12

    def test_fig9_requires_periodic_dataset(self):
        with pytest.raises(RuntimeError):
            fig9_residual.run("Hurricane-T")

    def test_fig9_rows(self):
        result = fig9_residual.run("SSH")
        assert [r["Data"] for r in result.rows] == ["original", "residual"]
