"""Fig. 6 harness tests + example smoke tests."""

import runpy

import numpy as np
import pytest

from repro.experiments import fig6_maskfit


class TestFig6:
    def test_theorem1_beats_naive_alternatives(self):
        result = fig6_maskfit.run("Tsfc")
        by = {r["Predictor"].split(",")[0].split()[0]: r for r in result.rows}
        t1 = result.rows[0]["Mean |err|"]
        zero_fill = result.rows[1]["Mean |err|"]
        use_fill = result.rows[2]["Mean |err|"]
        assert t1 < zero_fill          # adjusted coefficients win
        assert use_fill > 1e30         # raw fills are catastrophic
        assert all(r["Stencils"] > 0 for r in result.rows)

    def test_unmasked_dataset_rejected(self):
        with pytest.raises(RuntimeError):
            fig6_maskfit.run("CESM-T")

    def test_same_stencil_count_across_modes(self):
        result = fig6_maskfit.run("SSH")
        counts = {r["Stencils"] for r in result.rows}
        assert len(counts) == 1


class TestExamples:
    """The fast examples must run end to end (slow ones run by hand)."""

    def test_quickstart(self, capsys):
        runpy.run_path("examples/quickstart.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "error bound holds" in out

    def test_custom_pipeline(self, capsys):
        runpy.run_path("examples/custom_pipeline.py", run_name="__main__")
        out = capsys.readouterr().out
        assert "periodic template/residual split" in out
        assert "container codec='cliz'" in out
