"""Tests for chunked / parallel compression."""

import time

import numpy as np
import pytest

from repro.faults import parse_fault_spec
from repro.parallel import (
    DeadlineExceededError,
    compress_chunked,
    compress_many,
    decompress_chunked,
    decompress_many,
)


def field(shape=(32, 24, 20), seed=0):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return sum(np.sin(g) for g in grids) + 0.01 * rng.standard_normal(shape)


class TestChunked:
    def test_roundtrip_serial(self):
        data = field()
        blob = compress_chunked(data, "sz3", axis=0, n_chunks=4, abs_eb=1e-3)
        out = decompress_chunked(blob)
        assert np.abs(out - data).max() <= 1e-3

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_all_axes(self, axis):
        data = field()
        blob = compress_chunked(data, "sz3", axis=axis, n_chunks=3, abs_eb=1e-3)
        out = decompress_chunked(blob)
        assert out.shape == data.shape
        assert np.abs(out - data).max() <= 1e-3

    def test_chunk_bound_is_global_bound(self):
        """abs_eb per chunk implies the same pointwise bound globally."""
        data = field(seed=2)
        blob = compress_chunked(data, "cliz", axis=2, n_chunks=5, abs_eb=5e-3)
        out = decompress_chunked(blob)
        assert np.abs(out - data).max() <= 5e-3

    def test_masked_chunks(self):
        data = field()
        mask = np.ones(data.shape, dtype=bool)
        mask[:, 5:10] = False
        blob = compress_chunked(data, "cliz", axis=0, n_chunks=2,
                                abs_eb=1e-3, mask=mask)
        out = decompress_chunked(blob)
        assert np.abs(out - data)[mask].max() <= 1e-3

    def test_more_chunks_than_slices(self):
        data = field((3, 10, 10))
        blob = compress_chunked(data, "sz3", axis=0, n_chunks=8, abs_eb=1e-2)
        out = decompress_chunked(blob)
        assert np.abs(out - data).max() <= 1e-2

    def test_parallel_workers_match_serial(self):
        data = field(seed=3)
        serial = compress_chunked(data, "sz3", axis=0, n_chunks=4, abs_eb=1e-3)
        parallel = compress_chunked(data, "sz3", axis=0, n_chunks=4,
                                    workers=2, abs_eb=1e-3)
        assert serial == parallel  # deterministic codecs, identical chunks
        out = decompress_chunked(parallel, workers=2)
        assert np.abs(out - data).max() <= 1e-3

    def test_bad_axis_rejected(self):
        with pytest.raises(ValueError):
            compress_chunked(field(), axis=5, abs_eb=1e-3)

    def test_bad_n_chunks_rejected(self):
        with pytest.raises(ValueError):
            compress_chunked(field(), n_chunks=0, abs_eb=1e-3)

    def test_wrong_codec_tag_rejected(self):
        from repro import SZ3
        blob = SZ3().compress(field(), abs_eb=1e-3)
        with pytest.raises(ValueError):
            decompress_chunked(blob)

    def test_chunking_costs_a_little_ratio(self):
        """Predictions cannot cross chunk boundaries: mild size increase."""
        from repro import SZ3
        data = field((64, 20, 20), seed=4)
        whole = len(SZ3().compress(data, abs_eb=1e-3))
        chunked = len(compress_chunked(data, "sz3", axis=0, n_chunks=8, abs_eb=1e-3))
        assert whole < chunked < whole * 2


class TestMany:
    def test_batch_roundtrip(self):
        arrays = [field(seed=s) for s in range(4)]
        blobs = compress_many(arrays, "sz3", abs_eb=1e-3)
        outs = decompress_many(blobs)
        for a, o in zip(arrays, outs):
            assert np.abs(o - a).max() <= 1e-3

    def test_batch_with_masks(self):
        arrays = [field(seed=s) for s in range(2)]
        masks = [np.ones(a.shape, dtype=bool) for a in arrays]
        masks[0][0] = False
        blobs = compress_many(arrays, "cliz", masks=masks, abs_eb=1e-3)
        outs = decompress_many(blobs)
        assert np.abs(outs[0] - arrays[0])[masks[0]].max() <= 1e-3

    def test_mask_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compress_many([field()], masks=[None, None], abs_eb=1e-3)

    def test_parallel_batch(self):
        arrays = [field(seed=s, shape=(16, 12, 10)) for s in range(3)]
        blobs = compress_many(arrays, "sz3", workers=2, abs_eb=1e-2)
        outs = decompress_many(blobs, workers=2)
        for a, o in zip(arrays, outs):
            assert np.abs(o - a).max() <= 1e-2


class TestManyValidation:
    """compress_many must validate inputs before any pool is spawned."""

    def test_bad_array_fails_before_pool(self, monkeypatch):
        import repro.parallel as par

        def _no_pool(*a, **k):
            raise AssertionError("pool spawned before validation")

        monkeypatch.setattr(par, "ProcessPoolExecutor", _no_pool)
        with pytest.raises(ValueError, match="array 1"):
            compress_many([field(shape=(8, 8)), np.zeros((0, 3))],
                          "sz3", workers=2, abs_eb=1e-3)

    def test_bad_mask_fails_before_pool(self, monkeypatch):
        import repro.parallel as par

        def _no_pool(*a, **k):
            raise AssertionError("pool spawned before validation")

        monkeypatch.setattr(par, "ProcessPoolExecutor", _no_pool)
        arrays = [field(shape=(8, 8))]
        with pytest.raises(ValueError, match="array 0"):
            compress_many(arrays, "cliz", workers=2,
                          masks=[np.ones((4, 4), dtype=bool)], abs_eb=1e-3)

    def test_non_numeric_rejected_eagerly(self):
        with pytest.raises(TypeError, match="array 0"):
            compress_many([np.array(["a", "b"])], "sz3", abs_eb=1e-3)

    def test_valid_input_still_works_serial(self):
        arrays = [field(shape=(8, 8), seed=3)]
        blobs = compress_many(arrays, "sz3", abs_eb=1e-3)
        outs = decompress_many(blobs)
        assert np.abs(outs[0] - arrays[0]).max() <= 1e-3


class TestTelemetryMerge:
    """Workers ship spans/metrics back; the parent stitches them under dispatch."""

    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        from repro import obs
        obs.end_run()
        yield
        obs.end_run()

    def test_worker_spans_merge_under_dispatch(self):
        from repro import obs

        arrays = [field(seed=s, shape=(16, 12, 10)) for s in range(3)]
        with obs.run() as run:
            compress_many(arrays, "sz3", workers=2, abs_eb=1e-2)
        spans = run.spans()
        dispatch = next(s for s in spans if s.name == "compress_many")
        workers = [s for s in spans if s.parent_id == dispatch.span_id]
        assert len(workers) == 3  # one worker-root span per array
        for w in workers:
            assert w.tags.get("worker_run")
            assert w.path.startswith("compress_many/")
        # every absorbed span carries the parent's run id but the worker's pid
        assert {s.run_id for s in spans} == {run.run_id}
        assert any(s.pid != dispatch.pid for s in workers)
        # nested codec stages survive the merge with stitched paths
        assert any(s.path == f"{w.path}/compress" for w in workers for s in spans)

    def test_worker_metrics_merge_into_parent(self):
        from repro import obs

        arrays = [field(seed=s, shape=(16, 12, 10)) for s in range(2)]
        with obs.run() as run:
            compress_many(arrays, "sz3", workers=2, abs_eb=1e-2)
        snap = run.metrics.snapshot()
        assert snap["sz3.compress.calls"]["value"] == 2
        assert snap["sz3.compression_ratio"]["count"] == 2

    def test_serial_path_records_in_parent_directly(self):
        from repro import obs

        arrays = [field(seed=0, shape=(16, 12, 10))]
        with obs.run() as run:
            compress_many(arrays, "sz3", abs_eb=1e-2)
        spans = run.spans()
        assert all(s.pid == spans[0].pid for s in spans)
        assert any(s.path == "compress_many/compress" for s in spans)

    def test_no_run_means_no_telemetry_overhead(self):
        from repro import obs

        arrays = [field(seed=0, shape=(16, 12, 10))]
        compress_many(arrays, "sz3", workers=2, abs_eb=1e-2)
        assert obs.get_run() is None


class TestChunkedMaskedParallel:
    def test_chunked_roundtrip_workers_and_mask(self):
        data = field(shape=(24, 16, 10), seed=5)
        mask = np.ones(data.shape, dtype=bool)
        mask[:, :3, :] = False
        data = data.copy()
        data[~mask] = 9.96921e36  # CESM-style fill constant
        blob = compress_chunked(data, "cliz", axis=0, n_chunks=3, workers=2,
                                mask=mask, abs_eb=1e-3)
        out = decompress_chunked(blob, workers=2)
        assert np.abs((out - data))[mask].max() <= 1e-3
        assert np.allclose(out[~mask], 9.96921e36)

    def test_chunked_workers_match_serial_with_mask(self):
        data = field(shape=(20, 12, 8), seed=6)
        mask = np.ones(data.shape, dtype=bool)
        mask[5:7] = False
        serial = compress_chunked(data, "cliz", axis=0, n_chunks=2,
                                  mask=mask, abs_eb=1e-3)
        parallel = compress_chunked(data, "cliz", axis=0, n_chunks=2, workers=2,
                                    mask=mask, abs_eb=1e-3)
        assert serial == parallel


class TestDispatchDeadline:
    """A dispatch-level deadline bounds the whole chunked call."""

    def _field(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(8, 16, 16)).astype(np.float32)

    def test_deadline_exceeded_raises_promptly_serial(self):
        slow = parse_fault_spec("seed=1;slow:p=1:delay=0.2")
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            compress_chunked(self._field(), "cliz", n_chunks=4,
                             rel_eb=1e-3, deadline=0.05, faults=slow)
        assert time.monotonic() - t0 < 2.0

    def test_deadline_exceeded_raises_with_pool(self):
        slow = parse_fault_spec("seed=1;slow:p=1:delay=0.3")
        with pytest.raises(DeadlineExceededError):
            compress_chunked(self._field(), "cliz", n_chunks=4, workers=2,
                             rel_eb=1e-3, deadline=0.05, faults=slow)

    def test_generous_deadline_is_invisible(self):
        data = self._field()
        blob = compress_chunked(data, "cliz", n_chunks=4, rel_eb=1e-3,
                                deadline=60.0)
        back = decompress_chunked(blob, deadline=60.0)
        assert np.abs(back - data).max() <= 1e-3 * np.ptp(data) * 1.0001

    def test_deadline_failures_are_never_retried(self):
        # with retries available, a deadline failure must not consume them
        slow = parse_fault_spec("seed=1;slow:p=1:delay=0.2")
        t0 = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            compress_chunked(self._field(), "cliz", n_chunks=4,
                             rel_eb=1e-3, deadline=0.05, retries=5,
                             faults=slow)
        # 5 retries x 4 chunks x 0.2s stall would take >= 4s if retried
        assert time.monotonic() - t0 < 2.0

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            compress_chunked(self._field(), "cliz", rel_eb=1e-3, deadline=0)

    def test_deadline_exceeded_is_timeout_error(self):
        assert issubclass(DeadlineExceededError, TimeoutError)


class TestTimeoutFallbackWarning:
    """The off-main-thread timeout warning fires exactly once, even when
    many service threads hit the fallback path simultaneously."""

    def test_warning_is_one_shot_under_contention(self, monkeypatch):
        import threading

        import repro.parallel as par

        calls = []
        calls_lock = threading.Lock()

        def _count(*args, **kwargs):
            with calls_lock:
                calls.append(args)

        monkeypatch.setattr(par.warnings, "warn", _count)
        monkeypatch.setattr(par, "_timeout_fallback_warned", False)

        n = 8
        barrier = threading.Barrier(n)

        def _hit():
            barrier.wait()
            par._warn_timeout_fallback()

        threads = [threading.Thread(target=_hit) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
