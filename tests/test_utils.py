"""Tests for shared utilities (validation, timer)."""

import time

import numpy as np
import pytest

from repro.utils import Timer, check_array, check_error_bound, check_mask, ensure_float


class TestCheckArray:
    def test_passthrough_contiguous(self):
        arr = np.zeros((3, 4))
        out = check_array(arr)
        assert out.flags["C_CONTIGUOUS"]

    def test_non_contiguous_made_contiguous(self):
        arr = np.zeros((4, 6))[:, ::2]
        assert check_array(arr).flags["C_CONTIGUOUS"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((0, 3)))

    def test_too_many_dims_rejected(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2,) * 5))

    def test_max_ndim_override(self):
        with pytest.raises(ValueError):
            check_array(np.zeros((2, 2, 2)), max_ndim=2)

    def test_complex_rejected(self):
        with pytest.raises(TypeError):
            check_array(np.zeros(3, dtype=complex))

    def test_int_accepted(self):
        assert check_array(np.arange(5)).dtype == np.arange(5).dtype


class TestEnsureFloat:
    def test_float32_upcast(self):
        out = ensure_float(np.zeros(3, dtype=np.float32))
        assert out.dtype == np.float64

    def test_float64_no_copy(self):
        arr = np.zeros(3)
        assert ensure_float(arr) is arr or np.shares_memory(ensure_float(arr), arr)


class TestCheckErrorBound:
    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_bad_values(self, bad):
        with pytest.raises(ValueError):
            check_error_bound(bad)

    def test_good_value(self):
        assert check_error_bound(0.5) == 0.5


class TestCheckMask:
    def test_none_passthrough(self):
        assert check_mask(None, (3, 3)) is None

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            check_mask(np.ones((2, 2), dtype=bool), (3, 3))

    def test_all_false_rejected(self):
        with pytest.raises(ValueError):
            check_mask(np.zeros((2, 2), dtype=bool), (2, 2))

    def test_int_mask_coerced(self):
        out = check_mask(np.array([[1, 0], [0, 1]]), (2, 2))
        assert out.dtype == bool


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.01

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_nested_use_counts_once(self):
        t = Timer()
        with t:
            with t:
                time.sleep(0.01)
            inner_done = t.elapsed
            time.sleep(0.01)
        # Nothing accumulated until the outermost exit...
        assert inner_done == 0.0
        # ...and the total covers the whole outer block, not double.
        assert 0.02 <= t.elapsed < 0.5

    def test_unmatched_exit_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)

    def test_reset_clears_nesting(self):
        t = Timer()
        t.__enter__()
        t.reset()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)


class TestFormatTable:
    def test_alignment_and_rows(self):
        from repro.experiments.common import format_table
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22.5, "b": "z"}])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("a")

    def test_empty(self):
        from repro.experiments.common import format_table
        assert format_table([]) == "(no rows)"
