"""Tests for the synthetic climate dataset generators."""

import numpy as np
import pytest

from repro.core import detect_period
from repro.datasets import (
    CESM_FILL_VALUE,
    DATASETS,
    load,
    roughness,
    synth_topography,
    table_iii_rows,
    threshold_mask,
)


class TestTopography:
    def test_range_normalized(self):
        t = synth_topography((40, 60))
        assert t.min() == 0.0 and t.max() == 1.0

    def test_deterministic(self):
        np.testing.assert_array_equal(synth_topography((20, 20), seed=3),
                                      synth_topography((20, 20), seed=3))

    def test_seed_changes_field(self):
        assert not np.array_equal(synth_topography((20, 20), seed=0),
                                  synth_topography((20, 20), seed=1))

    def test_smoothness_increases_with_beta(self):
        rough = synth_topography((64, 64), beta=1.0, seed=0)
        smooth = synth_topography((64, 64), beta=3.0, seed=0)
        def tv(f):
            return np.abs(np.diff(f, axis=0)).mean() / (f.std() or 1)
        assert tv(smooth) < tv(rough)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            synth_topography((4, 4, 4))

    def test_threshold_mask_fraction(self):
        t = synth_topography((50, 50))
        m = threshold_mask(t, 0.7)
        assert 0.65 <= m.mean() <= 0.75

    def test_threshold_mask_bad_fraction(self):
        with pytest.raises(ValueError):
            threshold_mask(np.zeros((4, 4)), 1.0)

    def test_roughness_range(self):
        r = roughness(synth_topography((30, 30)))
        assert r.min() >= 0.0 and r.max() <= 1.0


class TestRegistry:
    def test_all_six_datasets_present(self):
        assert set(DATASETS) == {"SSH", "CESM-T", "RELHUM", "SOILLIQ", "Tsfc", "Hurricane-T"}

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            load("TEMP2M")

    def test_table_iii_structure(self):
        rows = table_iii_rows()
        assert len(rows) == 6
        by_name = {r["name"]: r for r in rows}
        assert by_name["SSH"]["mask"] == "Yes" and by_name["SSH"]["period"] == "Yes"
        assert by_name["CESM-T"]["mask"] == "No" and by_name["CESM-T"]["period"] == "No"
        assert by_name["SOILLIQ"]["paper_dims"] == (360, 15, 96, 144)

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_generators_deterministic(self, name):
        a = load(name)
        b = load(name)
        np.testing.assert_array_equal(a.data, b.data)


class TestFieldProperties:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_shape_and_dtype(self, name):
        f = load(name)
        assert f.data.dtype == np.float32
        assert f.data.ndim == len(f.axes)
        if f.mask is not None:
            assert f.mask.shape == f.data.shape

    @pytest.mark.parametrize("name", ["SSH", "SOILLIQ", "Tsfc"])
    def test_masked_datasets_carry_fill_values(self, name):
        f = load(name)
        assert f.mask is not None
        assert (f.data[~f.mask] == CESM_FILL_VALUE).all()
        assert np.abs(f.data[f.mask]).max() < 1e6  # valid data is physical

    @pytest.mark.parametrize("name", ["CESM-T", "RELHUM", "Hurricane-T"])
    def test_unmasked_datasets(self, name):
        f = load(name)
        assert f.mask is None
        assert f.valid_fraction == 1.0

    def test_soilliq_mostly_invalid(self):
        """Paper: ~70% of the surface is water, invalid for the land model."""
        f = load("SOILLIQ")
        assert 0.6 <= 1.0 - f.valid_fraction <= 0.8

    @pytest.mark.parametrize("name", ["SSH", "SOILLIQ", "Tsfc"])
    def test_declared_period_is_detectable(self, name):
        f = load(name)
        detected = detect_period(f.data.astype(np.float64), f.time_axis, mask=f.mask)
        assert detected == f.true_period == 12

    @pytest.mark.parametrize("name", ["CESM-T", "RELHUM", "Hurricane-T"])
    def test_aperiodic_datasets(self, name):
        f = load(name)
        assert f.true_period is None and f.time_axis is None

    def test_mask_time_invariant(self):
        for name in ["SSH", "Tsfc"]:
            f = load(name)
            moved = np.moveaxis(f.mask, f.time_axis, 0)
            assert (moved == moved[0]).all()

    def test_cesm_t_height_axis_roughest(self):
        """§V-B: variation along height dwarfs lat/lon variation."""
        f = load("CESM-T")
        diffs = [np.abs(np.diff(f.data.astype(np.float64), axis=a)).mean() for a in range(3)]
        assert diffs[0] > 5 * diffs[1]
        assert diffs[0] > 5 * diffs[2]

    def test_custom_shape(self):
        f = load("SSH", shape=(12, 10, 48))
        assert f.shape == (12, 10, 48)

    def test_tuner_kwargs(self):
        f = load("SSH")
        kw = f.tuner_kwargs()
        assert kw == {"time_axis": 2, "horiz_axes": (0, 1)}

    def test_hurricane_has_eye_structure(self):
        """The vortex core must be colder than its surroundings at low level."""
        f = load("Hurricane-T")
        low = f.data[0].astype(np.float64)
        nlat, nlon = low.shape
        core = low[nlat // 2 - 5 : nlat // 2 + 5, nlon // 2 - 5 : nlon // 2 + 5]
        edge = low[:5, :5]
        assert core.mean() < edge.mean()
