"""Tests for CESM-style mask-map region labeling (Fig. 3)."""

import numpy as np
import pytest

from repro.datasets import label_mask_regions, load, region_summary


class TestLabeling:
    def test_empty_mask(self):
        out = label_mask_regions(np.zeros((5, 5), dtype=bool))
        assert (out == 0).all()

    def test_single_ocean(self):
        valid = np.ones((6, 6), dtype=bool)
        out = label_mask_regions(valid)
        assert (out == 1).all()

    def test_inland_lake_gets_negative_label(self):
        valid = np.zeros((20, 20), dtype=bool)
        valid[:, :3] = True            # ocean strip touching the edge
        valid[8:11, 8:11] = True       # small enclosed lake
        out = label_mask_regions(valid)
        assert (out[:, :3] == 1).all()
        assert (out[8:11, 8:11] < 0).all()
        assert (out[~valid] == 0).all()

    def test_two_ocean_parts(self):
        valid = np.zeros((10, 30), dtype=bool)
        valid[:, :5] = True
        valid[:, -5:] = True
        out = label_mask_regions(valid)
        labels = set(np.unique(out)) - {0}
        assert labels == {1, 2}

    def test_large_interior_component_counts_as_ocean(self):
        valid = np.zeros((30, 30), dtype=bool)
        valid[5:25, 5:25] = True  # 400 of 400 valid points, not touching edges
        out = label_mask_regions(valid)
        assert out.max() == 1 and out.min() == 0

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            label_mask_regions(np.zeros((3, 3, 3), dtype=bool))

    def test_invalid_points_stay_zero_everywhere(self):
        rng = np.random.default_rng(0)
        valid = rng.random((25, 25)) > 0.5
        out = label_mask_regions(valid)
        assert (out[~valid] == 0).all()
        assert (out[valid] != 0).all()


class TestSummary:
    def test_summary_counts(self):
        valid = np.zeros((20, 20), dtype=bool)
        valid[:, :3] = True
        valid[8:11, 8:11] = True
        summary = region_summary(label_mask_regions(valid))
        assert summary["ocean_parts"] == 1
        assert summary["inland_bodies"] == 1
        assert summary["ocean_points"] == 60
        assert summary["inland_points"] == 9
        assert summary["invalid_points"] == 400 - 69

    def test_ssh_mask_has_all_three_categories(self):
        """The synthetic SSH reproduces the paper's Fig. 3(b) structure."""
        field = load("SSH")
        mask2d = field.mask[:, :, 0]
        summary = region_summary(label_mask_regions(mask2d))
        assert summary["invalid_points"] > 0
        assert summary["ocean_parts"] >= 1
        assert summary["inland_bodies"] >= 1
