"""WAN link faults: outages, drop/retransmit, and the progress guard."""

import numpy as np
import pytest

import repro.transfer.network as network
from repro.faults import LinkFaults, parse_fault_spec
from repro.transfer import (
    WanLink,
    fair_share_completions,
    fair_share_stats,
    simulate_globus,
)

LINK = WanLink(bandwidth=100.0, latency=0.0)


class TestOutages:
    def test_flow_stalls_through_outage(self):
        # 1000 B at 100 B/s = 10 s; a 2-5 s dark window adds exactly 3 s
        faults = LinkFaults(outages=((2.0, 5.0),))
        done, stats = fair_share_stats(np.array([0.0]), np.array([1000.0]),
                                       LINK, faults=faults)
        assert done[0] == pytest.approx(13.0)
        assert stats["outage_time"] == pytest.approx(3.0)

    def test_outage_before_arrival_is_free(self):
        faults = LinkFaults(outages=((0.0, 1.0),))
        done, stats = fair_share_stats(np.array([5.0]), np.array([100.0]),
                                       LINK, faults=faults)
        assert done[0] == pytest.approx(6.0)
        assert stats["outage_time"] == 0.0

    def test_arrival_during_outage_waits(self):
        faults = LinkFaults(outages=((0.0, 4.0),))
        done, _ = fair_share_stats(np.array([1.0]), np.array([100.0]),
                                   LINK, faults=faults)
        assert done[0] == pytest.approx(5.0)

    def test_multiple_windows_accumulate(self):
        faults = LinkFaults(outages=((1.0, 2.0), (3.0, 4.0)))
        done, stats = fair_share_stats(np.array([0.0]), np.array([500.0]),
                                       LINK, faults=faults)
        assert done[0] == pytest.approx(7.0)
        assert stats["outage_time"] == pytest.approx(2.0)


class TestDropRetransmit:
    def test_deterministic_retransmit_math(self):
        # drop_p=1 with max_attempts=3: attempts 1 and 2 drop, 3 delivers.
        # 100 B at 100 B/s = 1 s per attempt; backoff 0.5 then 1.0 between.
        faults = LinkFaults(drop_p=1.0, max_attempts=3, backoff=0.5, seed=1)
        done, stats = fair_share_stats(np.array([0.0]), np.array([100.0]),
                                       LINK, faults=faults)
        assert done[0] == pytest.approx(1 + 0.5 + 1 + 1.0 + 1)
        assert stats["retransmits"] == 2
        assert stats["dropped_bytes"] == pytest.approx(200.0)
        assert stats["drops_exhausted"] == 1
        assert stats["goodput"] == pytest.approx(100.0 / 300.0)

    def test_no_drops_perfect_goodput(self):
        faults = LinkFaults(drop_p=0.0, seed=1)
        _, stats = fair_share_stats(np.array([0.0, 0.0]),
                                    np.array([100.0, 200.0]), LINK,
                                    faults=faults)
        assert stats["retransmits"] == 0 and stats["goodput"] == 1.0

    def test_same_seed_reproduces_exactly(self):
        arrivals = np.linspace(0, 2, 8)
        sizes = np.full(8, 150.0)
        runs = [fair_share_stats(arrivals, sizes, LINK,
                                 faults=LinkFaults(drop_p=0.4, seed=9))
                for _ in range(2)]
        assert np.array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]

    def test_only_pins_drops_to_one_flow(self):
        faults = LinkFaults(drop_p=1.0, max_attempts=2, seed=3, only=1)
        done, stats = fair_share_stats(np.array([0.0, 0.0]),
                                       np.array([100.0, 100.0]), LINK,
                                       faults=faults)
        assert stats["retransmits"] == 1
        assert done[1] > done[0]

    def test_completions_wrapper_matches_stats(self):
        faults = LinkFaults(drop_p=1.0, max_attempts=2, backoff=0.25, seed=2)
        arrivals, sizes = np.array([0.0]), np.array([100.0])
        done = fair_share_completions(arrivals, sizes, LINK, faults=faults)
        done2, _ = fair_share_stats(arrivals, sizes, LINK, faults=faults)
        assert np.array_equal(done, done2)


class TestProgressGuardRegression:
    def test_forced_completion_warns_and_counts(self, monkeypatch):
        """With the completion tolerance forced negative, no flow can finish
        normally — the guard must force each one out, warn, and count it."""
        monkeypatch.setattr(network, "_FINISH_TOL_SCALE", -1.0)
        arrivals = np.zeros(3)
        sizes = np.full(3, 100.0)
        with pytest.warns(RuntimeWarning, match="progress guard"):
            done, stats = fair_share_stats(arrivals, sizes, LINK)
        assert stats["forced_completions"] == 3
        assert (done > 0).all()  # loop still terminated with sane times

    def test_normal_run_never_forces(self):
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 5, 50))
        sizes = rng.uniform(10, 1000, 50)
        _, stats = fair_share_stats(arrivals, sizes, LINK)
        assert stats["forced_completions"] == 0


class TestGlobusWithFaults:
    KW = dict(n_cores=4, uncompressed_bytes=10_000_000,
              compressed_bytes=[500_000] * 8)

    def test_outage_slows_total_time(self):
        link = WanLink(bandwidth=1e6)
        base = simulate_globus("cliz", link=link, **self.KW)
        faults = LinkFaults(outages=((0.0, 30.0),))
        hit = simulate_globus("cliz", link=link, faults=faults, **self.KW)
        assert hit.total_time > base.total_time
        assert hit.outage_time > 0

    def test_fault_injector_spec_accepted(self):
        link = WanLink(bandwidth=1e6)
        inj = parse_fault_spec("seed=2;drop:p=1:max=2:backoff=0.1")
        res = simulate_globus("cliz", link=link, faults=inj, **self.KW)
        assert res.retransmits == 8  # every file dropped exactly once
        assert res.goodput == pytest.approx(0.5)
        assert "retransmits=8" in res.as_row()

    def test_injector_without_wan_clauses_is_noop(self):
        link = WanLink(bandwidth=1e6)
        inj = parse_fault_spec("seed=2;crash")
        res = simulate_globus("cliz", link=link, faults=inj, **self.KW)
        assert res.retransmits == 0 and res.goodput == 1.0
        assert "retransmits" not in res.as_row()
