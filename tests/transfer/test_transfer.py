"""Tests for the WAN link model and the Globus scenario simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer import (
    PAPER_SPEEDS,
    ThroughputModel,
    WanLink,
    fair_share_completions,
    simulate_globus,
)


class TestWanLink:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            WanLink(bandwidth=0)
        with pytest.raises(ValueError):
            WanLink(bandwidth=1, latency=-1)

    def test_single_flow_time(self):
        link = WanLink(bandwidth=100.0, latency=0.0)
        done = fair_share_completions(np.array([0.0]), np.array([1000.0]), link)
        assert done[0] == pytest.approx(10.0)

    def test_latency_added(self):
        link = WanLink(bandwidth=100.0, latency=2.0)
        done = fair_share_completions(np.array([0.0]), np.array([100.0]), link)
        assert done[0] == pytest.approx(3.0)

    def test_two_simultaneous_flows_share(self):
        link = WanLink(bandwidth=100.0, latency=0.0)
        done = fair_share_completions(np.zeros(2), np.array([500.0, 500.0]), link)
        np.testing.assert_allclose(done, [10.0, 10.0])

    def test_short_flow_finishes_first_then_rate_recovers(self):
        link = WanLink(bandwidth=100.0, latency=0.0)
        done = fair_share_completions(np.zeros(2), np.array([100.0, 1000.0]), link)
        # both at 50 B/s until t=2 (short done); long has 900 left at 100 B/s
        assert done[0] == pytest.approx(2.0)
        assert done[1] == pytest.approx(11.0)

    def test_staggered_arrivals(self):
        link = WanLink(bandwidth=100.0, latency=0.0)
        done = fair_share_completions(np.array([0.0, 5.0]), np.array([1000.0, 100.0]), link)
        # flow 0 alone for 5 s (500 done); then shared
        assert done[1] == pytest.approx(7.0)
        assert done[0] == pytest.approx(11.0)

    def test_total_work_conserved(self):
        rng = np.random.default_rng(0)
        link = WanLink(bandwidth=50.0, latency=0.0)
        sizes = rng.uniform(10, 1000, 30)
        arrivals = rng.uniform(0, 10, 30)
        done = fair_share_completions(arrivals, sizes, link)
        # last completion cannot beat total-bytes / bandwidth
        assert done.max() >= sizes.sum() / link.bandwidth - 1e-6
        assert (done >= arrivals).all()

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_completions_after_arrivals_property(self, n, seed):
        rng = np.random.default_rng(seed)
        link = WanLink(bandwidth=float(rng.uniform(1, 100)), latency=float(rng.uniform(0, 2)))
        arrivals = rng.uniform(0, 100, n)
        sizes = rng.uniform(1, 1000, n)
        done = fair_share_completions(arrivals, sizes, link)
        assert (done >= arrivals + link.latency - 1e-9).all()
        assert (done >= arrivals + sizes / link.bandwidth + link.latency - 1e-6).all()


class TestGlobusScenario:
    LINK = WanLink(bandwidth=1e9, latency=0.5)

    def test_smaller_files_finish_sooner(self):
        big = simulate_globus("sz3", n_cores=64, uncompressed_bytes=10**9,
                              compressed_bytes=[10**8] * 64, link=self.LINK)
        small = simulate_globus("cliz", n_cores=64, uncompressed_bytes=10**9,
                                compressed_bytes=[4 * 10**7] * 64, link=self.LINK)
        assert small.total_time < big.total_time

    def test_zfp_compression_slower(self):
        """Paper Fig. 13: ZFP compression is ~20% slower than CliZ/SZ3."""
        cz = simulate_globus("cliz", n_cores=8, uncompressed_bytes=10**9,
                             compressed_bytes=[10**7] * 8, link=self.LINK)
        zf = simulate_globus("zfp", n_cores=8, uncompressed_bytes=10**9,
                             compressed_bytes=[10**7] * 8, link=self.LINK)
        assert zf.compress_time > cz.compress_time
        assert zf.compress_time / cz.compress_time == pytest.approx(8.82 / 7.37, rel=0.01)

    def test_more_files_than_cores_queue(self):
        one_round = simulate_globus("cliz", n_cores=16, uncompressed_bytes=10**8,
                                    compressed_bytes=[10**6] * 16, link=self.LINK)
        two_rounds = simulate_globus("cliz", n_cores=8, uncompressed_bytes=10**8,
                                     compressed_bytes=[10**6] * 16, link=self.LINK)
        assert two_rounds.compress_time == pytest.approx(2 * one_round.compress_time)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            simulate_globus("gzip", n_cores=1, uncompressed_bytes=1,
                            compressed_bytes=[1], link=self.LINK)

    def test_empty_files_rejected(self):
        with pytest.raises(ValueError):
            simulate_globus("cliz", n_cores=1, uncompressed_bytes=1,
                            compressed_bytes=[], link=self.LINK)

    def test_result_row_format(self):
        r = simulate_globus("cliz", n_cores=4, uncompressed_bytes=10**8,
                            compressed_bytes=[10**6] * 4, link=self.LINK)
        assert "cliz" in r.as_row()
        assert r.total_compressed_bytes == 4 * 10**6

    def test_paper_speed_table_complete(self):
        for codec in ("cliz", "sz3", "zfp", "qoz", "sperr"):
            assert isinstance(PAPER_SPEEDS[codec], ThroughputModel)
