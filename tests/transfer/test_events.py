"""Tests for the discrete-event engine, incl. cross-validation vs analytic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer import WanLink, fair_share_completions
from repro.transfer.events import EventQueue, SharedResource, simulate_shared_link


class TestEventQueue:
    def test_ordering(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.schedule(3.0, lambda: fired.append("c"))
        q.run()
        assert fired == ["a", "b", "c"]
        assert q.now == 3.0

    def test_same_time_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in "xyz":
            q.schedule(1.0, lambda t=tag: fired.append(t))
        q.run()
        assert fired == ["x", "y", "z"]

    def test_schedule_into_past_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        q = EventQueue()
        fired = []
        def first():
            fired.append(q.now)
            q.schedule(q.now + 2.0, lambda: fired.append(q.now))
        q.schedule(1.0, first)
        q.run()
        assert fired == [1.0, 3.0]

    def test_run_until(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(10.0, lambda: fired.append(2))
        q.run(until=5.0)
        assert fired == [1]
        assert q.pending == 1


class TestSharedResource:
    def test_single_job(self):
        done = simulate_shared_link(np.array([0.0]), np.array([100.0]), bandwidth=10.0)
        assert done[0] == pytest.approx(10.0)

    def test_bad_capacity(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            SharedResource(q, 0.0, lambda *a: None)

    def test_duplicate_job_rejected(self):
        q = EventQueue()
        r = SharedResource(q, 1.0, lambda *a: None)
        r.submit(1, 10.0)
        with pytest.raises(ValueError):
            r.submit(1, 5.0)

    def test_equal_jobs_finish_together(self):
        done = simulate_shared_link(np.zeros(4), np.full(4, 100.0), bandwidth=40.0)
        np.testing.assert_allclose(done, 10.0)

    def test_staggered_arrivals(self):
        done = simulate_shared_link(np.array([0.0, 5.0]),
                                    np.array([1000.0, 100.0]), bandwidth=100.0)
        assert done[1] == pytest.approx(7.0)
        assert done[0] == pytest.approx(11.0)


class TestCrossValidation:
    """The DES and the analytic fair-share loop must agree exactly."""

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_matches_analytic_model(self, n, seed):
        rng = np.random.default_rng(seed)
        arrivals = rng.uniform(0, 50, n)
        sizes = rng.uniform(1, 500, n)
        bandwidth = float(rng.uniform(1, 100))
        latency = float(rng.uniform(0, 2))
        analytic = fair_share_completions(arrivals, sizes,
                                          WanLink(bandwidth, latency))
        des = simulate_shared_link(arrivals, sizes, bandwidth, latency)
        np.testing.assert_allclose(des, analytic, rtol=1e-6, atol=1e-6)

    def test_many_equal_flows_no_stall(self):
        """The float-cancellation case that used to hang the analytic loop."""
        done = simulate_shared_link(np.full(64, 3.0), np.full(64, 1e8), bandwidth=1e9)
        np.testing.assert_allclose(done, 3.0 + 64 * 1e8 / 1e9)
