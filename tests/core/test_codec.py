"""Tests for the shared stream-codec helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codec import (
    decode_bits,
    decode_code_stream,
    decode_floats,
    encode_bits,
    encode_code_stream,
    encode_floats,
)


class TestCodeStream:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 1000, 5000)
        np.testing.assert_array_equal(decode_code_stream(encode_code_stream(codes)), codes)

    def test_empty(self):
        assert decode_code_stream(encode_code_stream(np.array([], dtype=np.int64))).size == 0

    def test_skewed_stream_compresses(self):
        rng = np.random.default_rng(1)
        codes = np.where(rng.random(30000) < 0.95, 32768, 32768 + rng.integers(-5, 6, 30000))
        blob = encode_code_stream(codes)
        assert len(blob) < codes.size // 4

    def test_shape_flattened(self):
        codes = np.arange(12).reshape(3, 4)
        out = decode_code_stream(encode_code_stream(codes))
        np.testing.assert_array_equal(out, codes.ravel())

    @given(st.lists(st.integers(min_value=0, max_value=70000), max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, values):
        codes = np.array(values, dtype=np.int64)
        np.testing.assert_array_equal(decode_code_stream(encode_code_stream(codes)), codes)


class TestFloats:
    def test_exact_roundtrip_incl_specials(self):
        vals = np.array([0.0, -0.0, 1.5, np.pi, 2.0 ** 122, -2.0 ** -1000, np.inf, -np.inf])
        out = decode_floats(encode_floats(vals))
        np.testing.assert_array_equal(out, vals)

    def test_nan_preserved(self):
        out = decode_floats(encode_floats(np.array([np.nan])))
        assert np.isnan(out[0])

    def test_empty(self):
        assert decode_floats(encode_floats(np.array([]))).size == 0

    def test_repetitive_values_compress(self):
        vals = np.zeros(10000)
        # LZ token format floor: ~3 bytes per 131-byte match
        assert len(encode_floats(vals)) < 80000 * 3 / 131 * 1.2

    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, values):
        vals = np.array(values, dtype=np.float64)
        np.testing.assert_array_equal(decode_floats(encode_floats(vals)), vals)


class TestBits:
    def test_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        assert decode_bits(encode_bits(bits)) == bits

    def test_empty(self):
        assert decode_bits(encode_bits([])) == []

    def test_long_sequences(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 999).tolist()
        assert decode_bits(encode_bits(bits)) == bits

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, bits):
        assert decode_bits(encode_bits(bits)) == bits
