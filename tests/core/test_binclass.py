"""Tests for quantization-bin classification (shifting + dispersion)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binclass import (
    LAMBDA_DEFAULT,
    BinClassification,
    classification_gain_bits,
    classify_bins,
    undo_shift,
)
from repro.encoding.multihuffman import decode_grouped, encode_grouped

RADIUS = 64


def make_stream(per_loc_bins, n_reps=50, seed=0):
    """Build (codes, hpos) with each location drawing bins from its list."""
    rng = np.random.default_rng(seed)
    codes, hpos = [], []
    for loc, bins in enumerate(per_loc_bins):
        draws = rng.choice(bins, size=n_reps)
        codes.append(draws + RADIUS)
        hpos.append(np.full(n_reps, loc))
    return np.concatenate(codes).astype(np.int64), np.concatenate(hpos).astype(np.int64)


class TestShifting:
    def test_shift_detected_per_location(self):
        codes, hpos = make_stream([[0, 0, 0, 1], [1, 1, 1, 0], [-1, -1, -1, 0]])
        cls, shifted, _ = classify_bins(codes, hpos, 3, RADIUS)
        np.testing.assert_array_equal(cls.shift_map, [0, 1, -1])
        # after shifting, every location peaks at bin 0
        for loc in range(3):
            bins = shifted[hpos == loc] - RADIUS
            vals, counts = np.unique(bins, return_counts=True)
            assert vals[counts.argmax()] == 0

    def test_unpredictable_codes_never_shifted(self):
        codes = np.array([0, RADIUS + 1, RADIUS + 1, 0])
        hpos = np.zeros(4, dtype=np.int64)
        cls, shifted, _ = classify_bins(codes, hpos, 1, RADIUS)
        assert (shifted[codes == 0] == 0).all()

    def test_shift_inverts_exactly(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(RADIUS - 3, RADIUS + 4, 500).astype(np.int64)
        codes[rng.random(500) < 0.05] = 0
        hpos = rng.integers(0, 20, 500).astype(np.int64)
        cls, shifted, _ = classify_bins(codes, hpos, 20, RADIUS)
        np.testing.assert_array_equal(undo_shift(shifted, hpos, cls), codes)

    def test_collision_guard_protects_escape_code(self):
        # location peaks at +1 (would shift by 1) but contains code 1,
        # which would collide with the escape code after shifting.
        codes = np.array([RADIUS + 1, RADIUS + 1, RADIUS + 1, 1], dtype=np.int64)
        hpos = np.zeros(4, dtype=np.int64)
        cls, shifted, _ = classify_bins(codes, hpos, 1, RADIUS)
        assert cls.shift_map[0] == 0
        assert (shifted == codes).all()

    def test_j_zero_disables_shifting(self):
        codes, hpos = make_stream([[1, 1, 1]])
        cls, shifted, _ = classify_bins(codes, hpos, 1, RADIUS, j=0)
        assert (cls.shift_map == 0).all()
        np.testing.assert_array_equal(shifted, codes)


class TestDispersion:
    def test_concentrated_vs_dispersed_split(self):
        concentrated = [[0] * 9 + [1]] * 5          # f0 = 0.9 > λ
        dispersed = [list(range(-5, 6))] * 5        # f0 ≈ 1/11 < λ
        codes, hpos = make_stream(concentrated + dispersed, n_reps=100)
        cls, _, groups = classify_bins(codes, hpos, 10, RADIUS)
        assert (cls.group_map[:5] == 0).all()
        assert (cls.group_map[5:] == 1).all()

    def test_k_zero_single_group(self):
        codes, hpos = make_stream([[0, 1], [3, -3]])
        cls, _, groups = classify_bins(codes, hpos, 2, RADIUS, k=0)
        assert (groups == 0).all()

    def test_lambda_threshold_effect(self):
        # f0 = 0.5: concentrated under λ=0.4, dispersed under λ=0.6
        loc = [[0, 0, 2, 3]]
        codes, hpos = make_stream(loc, n_reps=400)
        cls1, _, _ = classify_bins(codes, hpos, 1, RADIUS, lam=0.4)
        cls2, _, _ = classify_bins(codes, hpos, 1, RADIUS, lam=0.6)
        assert cls1.group_map[0] == 0
        assert cls2.group_map[0] == 1


class TestSerialization:
    def test_roundtrip(self):
        rng = np.random.default_rng(2)
        cls = BinClassification(
            shift_map=rng.integers(-1, 2, 500).astype(np.int64),
            group_map=rng.integers(0, 2, 500).astype(np.int64),
            j=1, k=1,
        )
        cls2 = BinClassification.deserialize(cls.serialize())
        np.testing.assert_array_equal(cls2.shift_map, cls.shift_map)
        np.testing.assert_array_equal(cls2.group_map, cls.group_map)
        assert (cls2.j, cls2.k) == (1, 1)

    def test_spatially_coherent_map_is_small(self):
        """§VI-E: map costs ~log2(6)≈2.6 bits/location at worst; coherent
        maps (the realistic case) compress far below that."""
        shift = np.repeat(np.array([0, 1, -1, 0]), 250)
        group = np.repeat(np.array([0, 1, 0, 1]), 250)
        cls = BinClassification(shift, group, 1, 1)
        assert len(cls.serialize()) * 8 < 1000 * 2.6


class TestEndToEnd:
    def test_classified_encoding_roundtrip(self):
        """Full §VI-E path: classify -> multi-Huffman -> decode -> unshift."""
        rng = np.random.default_rng(3)
        n_loc, reps = 40, 80
        per_loc = []
        for loc in range(n_loc):
            if loc % 2 == 0:
                per_loc.append([0, 0, 0, 0, 1])          # concentrated at 0
            else:
                per_loc.append([1, 1, 1, 1, 2])          # shifted peak at +1
        codes, hpos = make_stream(per_loc, n_reps=reps, seed=3)
        cls, shifted, groups = classify_bins(codes, hpos, n_loc, RADIUS)
        blob = encode_grouped(shifted, groups, cls.n_groups)
        # decoder side: rebuild groups from the map, decode, unshift
        cls2 = BinClassification.deserialize(cls.serialize())
        groups2 = cls2.group_map[hpos]
        shifted2, _ = decode_grouped(blob, groups2)
        recovered = undo_shift(shifted2, hpos, cls2)
        np.testing.assert_array_equal(recovered, codes)

    def test_gain_positive_on_shifted_populations(self):
        """Mixed shifted peaks: classification should save bits."""
        per_loc = [[1, 1, 1, 1, 0]] * 30 + [[-1, -1, -1, -1, 0]] * 30
        codes, hpos = make_stream(per_loc, n_reps=200, seed=4)
        cls, shifted, groups = classify_bins(codes, hpos, 60, RADIUS)
        gain = classification_gain_bits(codes, shifted, groups, cls.n_groups, 60, 1, 1)
        assert gain > 0

    def test_gain_negative_on_uniform_population(self):
        """Already-centred bins: the map charge makes classification lose."""
        per_loc = [[0, 0, 0, 1, -1]] * 50
        codes, hpos = make_stream(per_loc, n_reps=20, seed=5)
        cls, shifted, groups = classify_bins(codes, hpos, 50, RADIUS)
        gain = classification_gain_bits(codes, shifted, groups, cls.n_groups, 50, 1, 1)
        assert gain <= 0


class TestValidation:
    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            classify_bins(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64), 1, RADIUS)

    def test_hpos_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            classify_bins(np.zeros(2, dtype=np.int64) + RADIUS,
                          np.array([0, 5]), 2, RADIUS)

    def test_negative_j_rejected(self):
        with pytest.raises(ValueError):
            classify_bins(np.zeros(1, dtype=np.int64) + RADIUS,
                          np.zeros(1, dtype=np.int64), 1, RADIUS, j=-1)


@given(st.integers(min_value=0, max_value=2**31),
       st.integers(min_value=0, max_value=2),
       st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_shift_roundtrip_property(seed, j, k):
    """classify + undo_shift is the identity for any stream and any (j, k)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 400))
    n_loc = int(rng.integers(1, 30))
    codes = rng.integers(1, 2 * RADIUS, n).astype(np.int64)
    codes[rng.random(n) < 0.1] = 0
    hpos = rng.integers(0, n_loc, n).astype(np.int64)
    cls, shifted, groups = classify_bins(codes, hpos, n_loc, RADIUS, j=j, k=k)
    assert shifted.min() >= 0
    if (codes != 0).any():
        assert shifted[codes != 0].min() >= 1
    assert shifted.max() <= 2 * RADIUS - 1
    np.testing.assert_array_equal(undo_shift(shifted, hpos, cls), codes)
    cls2 = BinClassification.deserialize(cls.serialize())
    np.testing.assert_array_equal(cls2.shift_map, cls.shift_map)
    np.testing.assert_array_equal(cls2.group_map, cls.group_map)
