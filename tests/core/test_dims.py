"""Tests for dimension permutation and fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dims import (
    Layout,
    apply_layout,
    enumerate_fusions,
    enumerate_layouts,
    layout_name,
    undo_layout,
)


class TestLayout:
    def test_identity(self):
        lay = Layout.identity(3)
        assert lay.perm == (0, 1, 2)
        assert lay.fusion == (1, 1, 1)
        assert lay.ndim_out == 3

    def test_bad_perm_rejected(self):
        with pytest.raises(ValueError):
            Layout((0, 0, 1), (1, 1, 1))

    def test_bad_fusion_rejected(self):
        with pytest.raises(ValueError):
            Layout((0, 1, 2), (2, 2))

    def test_fused_shape(self):
        lay = Layout((2, 0, 1), (1, 2))
        assert lay.fused_shape((4, 5, 6)) == (6, 20)

    def test_dict_roundtrip(self):
        lay = Layout((1, 0), (2,))
        assert Layout.from_dict(lay.to_dict()) == lay

    def test_equality_and_hash(self):
        assert Layout((0, 1), (1, 1)) == Layout((0, 1), (1, 1))
        assert len({Layout((0, 1), (1, 1)), Layout((0, 1), (1, 1))}) == 1


class TestApplyUndo:
    def test_pure_permutation(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        lay = Layout((2, 0, 1), (1, 1, 1))
        out = apply_layout(data, lay)
        assert out.shape == (4, 2, 3)
        np.testing.assert_array_equal(out, np.transpose(data, (2, 0, 1)))
        np.testing.assert_array_equal(undo_layout(out, data.shape, lay), data)

    def test_fusion_is_reshape_of_permuted(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        lay = Layout((0, 1, 2), (2, 1))
        out = apply_layout(data, lay)
        assert out.shape == (6, 4)
        np.testing.assert_array_equal(out, data.reshape(6, 4))

    def test_full_fusion(self):
        data = np.arange(12.0).reshape(3, 4)
        out = apply_layout(data, Layout((1, 0), (2,)))
        assert out.shape == (12,)
        np.testing.assert_array_equal(out, data.T.ravel())

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_layout(np.zeros((2, 2)), Layout.identity(3))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 5))
        shape = tuple(int(rng.integers(1, 6)) for _ in range(ndim))
        layouts = enumerate_layouts(ndim)
        lay = layouts[int(rng.integers(0, len(layouts)))]
        data = rng.standard_normal(shape)
        out = apply_layout(data, lay)
        assert out.shape == lay.fused_shape(shape)
        np.testing.assert_array_equal(undo_layout(out, shape, lay), data)


class TestEnumeration:
    def test_fusion_counts(self):
        assert len(enumerate_fusions(1)) == 1
        assert len(enumerate_fusions(2)) == 2
        assert len(enumerate_fusions(3)) == 4  # paper's four fusion options
        assert len(enumerate_fusions(4)) == 8

    def test_3d_layout_count_matches_paper(self):
        # 6 sequences x 4 fusions = 24 (paper §VII-C2 counts 192 = 24*2*2*2)
        assert len(enumerate_layouts(3)) == 24

    def test_max_layouts_cap(self):
        assert len(enumerate_layouts(3, max_layouts=5)) == 5

    def test_all_fusions_partition(self):
        for f in enumerate_fusions(4):
            assert sum(f) == 4

    def test_names(self):
        assert layout_name(Layout((0, 1, 2), (1, 1, 1))) == "012"
        assert layout_name(Layout((2, 0, 1), (1, 2))) == "201 fuse 1&2"
        assert layout_name(Layout((0, 1, 2), (3,))) == "012 fuse 0&1&2"
