"""End-to-end tests for the CliZ compressor facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CliZ, Layout, PipelineConfig
from repro.core.compressor import resolve_error_bound
from repro.encoding.container import Container


def climate_like(nlat=24, nlon=30, nt=48, period=12, noise=0.005, seed=0):
    rng = np.random.default_rng(seed)
    lat = np.sin(np.linspace(0, 3, nlat))[:, None, None]
    lon = np.cos(np.linspace(0, 2, nlon))[None, :, None]
    cycle = rng.standard_normal(period)
    temporal = np.tile(cycle, nt // period + 1)[:nt][None, None, :]
    return lat + lon + temporal + noise * rng.standard_normal((nlat, nlon, nt))


class TestResolveErrorBound:
    def test_requires_exactly_one(self):
        data = np.zeros(4)
        with pytest.raises(ValueError):
            resolve_error_bound(data, None, None)
        with pytest.raises(ValueError):
            resolve_error_bound(data, 0.1, 0.1)

    def test_absolute_passthrough(self):
        assert resolve_error_bound(np.zeros(4), 0.25, None) == 0.25

    def test_relative_scales_by_range(self):
        data = np.array([0.0, 10.0])
        assert resolve_error_bound(data, None, 0.01) == pytest.approx(0.1)

    def test_relative_uses_valid_range_only(self):
        data = np.array([0.0, 10.0, 2.0 ** 122])
        mask = np.array([True, True, False])
        assert resolve_error_bound(data, None, 0.01, mask) == pytest.approx(0.1)

    def test_constant_field_fallback(self):
        assert resolve_error_bound(np.full(5, 3.0), None, 0.01) == pytest.approx(0.01)

    def test_all_false_mask_clear_error(self):
        # Regression: an all-False mask used to surface as an opaque NumPy
        # "zero-size array to reduction" ValueError from np.max.
        data = np.array([0.0, 10.0, 20.0])
        mask = np.zeros(3, dtype=bool)
        with pytest.raises(ValueError, match="mask excludes every point"):
            resolve_error_bound(data, None, 0.01, mask)

    def test_all_false_mask_abs_eb_unaffected(self):
        # An absolute bound never inspects the data, so it still resolves.
        mask = np.zeros(3, dtype=bool)
        assert resolve_error_bound(np.zeros(3), 0.5, None, mask) == 0.5


class TestBasicRoundtrip:
    @pytest.mark.parametrize("shape", [(64,), (20, 25), (10, 12, 14), (5, 6, 7, 8)])
    def test_bound_holds(self, shape):
        rng = np.random.default_rng(1)
        data = np.cumsum(rng.standard_normal(shape), axis=-1)
        eb = 1e-3
        blob = CliZ().compress(data, abs_eb=eb)
        dec = CliZ().decompress(blob)
        assert dec.shape == data.shape
        assert np.abs(dec - data).max() <= eb

    def test_float32_dtype_restored(self):
        data = climate_like().astype(np.float32)
        blob = CliZ().compress(data, abs_eb=1e-2)
        dec = CliZ().decompress(blob)
        assert dec.dtype == np.float32
        assert np.abs(dec.astype(np.float64) - data.astype(np.float64)).max() <= 1e-2 + 1e-6

    def test_relative_bound(self):
        data = climate_like()
        blob = CliZ().compress(data, rel_eb=1e-3)
        dec = CliZ().decompress(blob)
        rng_span = data.max() - data.min()
        assert np.abs(dec - data).max() <= 1e-3 * rng_span

    def test_smaller_eb_larger_blob(self):
        data = climate_like()
        b1 = CliZ().compress(data, abs_eb=1e-2)
        b2 = CliZ().compress(data, abs_eb=1e-4)
        assert len(b2) > len(b1)

    def test_wrong_codec_rejected(self):
        blob = Container("zfp").to_bytes()
        with pytest.raises(ValueError):
            CliZ().decompress(blob)

    def test_layout_rank_mismatch_rejected(self):
        cfg = PipelineConfig(layout=Layout.identity(2))
        with pytest.raises(ValueError):
            CliZ(cfg).compress(np.zeros((3, 3, 3)), abs_eb=0.1)

    def test_compresses_smooth_data_well(self):
        y, x = np.mgrid[0:128, 0:128]
        data = np.sin(x / 25.0) * np.cos(y / 20.0)
        blob = CliZ().compress(data, abs_eb=1e-3)
        assert data.size * 4 / len(blob) > 20  # vs 4-byte floats


class TestMaskPath:
    def make_masked(self, use_time=True):
        data = climate_like()
        mask2d = (np.add.outer(np.arange(24), np.arange(30)) % 4) != 0
        mask = np.broadcast_to(mask2d[:, :, None], data.shape).copy()
        data = data.copy()
        data[~mask] = 2.0 ** 100
        return data, mask

    def test_masked_roundtrip(self):
        data, mask = self.make_masked()
        blob = CliZ().compress(data, abs_eb=1e-3, mask=mask)
        dec = CliZ().decompress(blob)
        assert np.abs(dec - data)[mask].max() <= 1e-3
        assert (dec[~mask] == 2.0 ** 100).all()

    def test_custom_fill_value(self):
        data, mask = self.make_masked()
        blob = CliZ().compress(data, abs_eb=1e-3, mask=mask, fill_value=-999.0)
        dec = CliZ().decompress(blob)
        assert (dec[~mask] == -999.0).all()

    def test_mask_improves_ratio_on_filled_data(self):
        """The paper's Table V 'Mask: No' row: ignoring the mask collapses CR."""
        data, mask = self.make_masked()
        eb = 1e-3
        with_mask = CliZ().compress(data, abs_eb=eb, mask=mask)
        cfg = PipelineConfig.default(3).with_(use_mask=False)
        without = CliZ(cfg).compress(data, abs_eb=eb, mask=mask)
        assert len(with_mask) < len(without)

    def test_use_mask_false_still_roundtrips(self):
        data, mask = self.make_masked()
        cfg = PipelineConfig.default(3).with_(use_mask=False)
        blob = CliZ(cfg).compress(data, abs_eb=1e-3, mask=mask)
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3  # bound holds even on fills

    def test_all_invalid_mask_rejected(self):
        data = np.zeros((4, 4))
        with pytest.raises(ValueError):
            CliZ().compress(data, abs_eb=0.1, mask=np.zeros((4, 4), dtype=bool))


class TestPeriodicPath:
    def test_periodic_split_used_and_roundtrips(self):
        data = climate_like(nt=96)
        cfg = PipelineConfig.default(3).with_(periodic=True, time_axis=2)
        blob = CliZ(cfg).compress(data, abs_eb=1e-3)
        header = Container.from_bytes(blob).header
        assert header["period"] == 12
        assert {c["name"] for c in header["components"]} == {"template", "residual"}
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3

    def test_periodicity_improves_ratio(self):
        """§VI-D: monthly-cycle data compresses better with the split."""
        data = climate_like(nt=96, noise=0.0005)
        eb = 1e-3
        plain = CliZ().compress(data, abs_eb=eb)
        cfg = PipelineConfig.default(3).with_(periodic=True, time_axis=2)
        split = CliZ(cfg).compress(data, abs_eb=eb)
        assert len(split) < len(plain)

    def test_aperiodic_data_falls_back(self):
        rng = np.random.default_rng(5)
        data = np.cumsum(rng.standard_normal((10, 12, 64)), axis=2)
        cfg = PipelineConfig.default(3).with_(periodic=True, time_axis=2)
        blob = CliZ(cfg).compress(data, abs_eb=1e-2)
        header = Container.from_bytes(blob).header
        assert header["period"] is None
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data).max() <= 1e-2

    def test_explicit_period_honoured(self):
        data = climate_like(nt=96)
        cfg = PipelineConfig.default(3).with_(periodic=True, time_axis=2, period=24)
        blob = CliZ(cfg).compress(data, abs_eb=1e-3)
        assert Container.from_bytes(blob).header["period"] == 24
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3

    def test_periodic_with_mask(self):
        data = climate_like(nt=96)
        mask2d = (np.add.outer(np.arange(24), np.arange(30)) % 3) != 0
        mask = np.broadcast_to(mask2d[:, :, None], data.shape).copy()
        data = data.copy()
        data[~mask] = 2.0 ** 100
        cfg = PipelineConfig.default(3).with_(periodic=True, time_axis=2)
        blob = CliZ(cfg).compress(data, abs_eb=1e-3, mask=mask)
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data)[mask].max() <= 1e-3

    def test_time_varying_mask_disables_periodic(self):
        data = climate_like(nt=96)
        rng = np.random.default_rng(6)
        mask = rng.random(data.shape) > 0.2  # varies along time
        cfg = PipelineConfig.default(3).with_(periodic=True, time_axis=2)
        blob = CliZ(cfg).compress(data, abs_eb=1e-3, mask=mask)
        assert Container.from_bytes(blob).header["period"] is None


class TestLayoutAndBinclass:
    def test_all_layouts_roundtrip(self):
        from repro.core.dims import enumerate_layouts
        data = climate_like(nlat=10, nlon=12, nt=16)
        eb = 1e-3
        for lay in enumerate_layouts(3):
            cfg = PipelineConfig(layout=lay)
            blob = CliZ(cfg).compress(data, abs_eb=eb)
            dec = CliZ(cfg).decompress(blob)
            assert np.abs(dec - data).max() <= eb, lay

    def test_binclass_roundtrip(self):
        data = climate_like()
        cfg = PipelineConfig.default(3).with_(binclass=True, horiz_axes=(0, 1))
        blob = CliZ(cfg).compress(data, abs_eb=1e-3)
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3

    def test_binclass_with_mask_and_layout(self):
        data = climate_like()
        mask2d = (np.add.outer(np.arange(24), np.arange(30)) % 5) != 0
        mask = np.broadcast_to(mask2d[:, :, None], data.shape).copy()
        cfg = PipelineConfig(layout=Layout((2, 0, 1), (1, 2)),
                             binclass=True, horiz_axes=(0, 1))
        blob = CliZ(cfg).compress(data, abs_eb=1e-3, mask=mask)
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data)[mask].max() <= 1e-3

    def test_everything_on_together(self):
        data = climate_like(nt=96)
        mask2d = (np.add.outer(np.arange(24), np.arange(30)) % 5) != 0
        mask = np.broadcast_to(mask2d[:, :, None], data.shape).copy()
        data = data.copy()
        data[~mask] = 2.0 ** 100
        cfg = PipelineConfig(layout=Layout((2, 0, 1), (1, 2)), fitting="linear",
                             periodic=True, time_axis=2,
                             binclass=True, horiz_axes=(0, 1))
        blob = CliZ(cfg).compress(data, abs_eb=1e-3, mask=mask)
        dec = CliZ(cfg).decompress(blob)
        assert np.abs(dec - data)[mask].max() <= 1e-3
        assert (dec[~mask] == 2.0 ** 100).all()


@given(st.integers(min_value=0, max_value=2**31),
       st.floats(min_value=1e-4, max_value=0.5))
@settings(max_examples=20, deadline=None)
def test_roundtrip_property(seed, eb):
    rng = np.random.default_rng(seed)
    shape = tuple(int(rng.integers(4, 12)) for _ in range(int(rng.integers(1, 4))))
    data = rng.standard_normal(shape) * 3
    blob = CliZ().compress(data, abs_eb=eb)
    dec = CliZ().decompress(blob)
    assert np.abs(dec - data).max() <= eb
