"""Tests for period detection and template/residual decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.periodicity import (
    detect_period,
    merge_periodic,
    row_spectra,
    split_periodic,
)


def periodic_field(n_space=50, n_time=120, period=12, noise=0.01, seed=0, sharp=True):
    rng = np.random.default_rng(seed)
    t = np.arange(n_time)
    if sharp:
        cycle = rng.standard_normal(period)  # arbitrary periodic waveform
        temporal = np.tile(cycle, n_time // period + 1)[:n_time]
    else:
        temporal = np.sin(2 * np.pi * t / period)
    space = rng.standard_normal(n_space)
    return space[:, None] * 0.1 + temporal[None, :] + noise * rng.standard_normal((n_space, n_time))


class TestRowSpectra:
    def test_shape_and_dc_zeroed(self):
        data = periodic_field()
        spec = row_spectra(data, time_axis=1, n_rows=5)
        assert spec.shape == (5, 61)
        assert (spec[:, 0] == 0).all()

    def test_mask_restricts_rows(self):
        data = periodic_field(n_space=20)
        mask = np.ones(data.shape, dtype=bool)
        mask[10:] = False
        spec = row_spectra(data, time_axis=1, n_rows=30, mask=mask)
        assert spec.shape[0] <= 10


class TestDetectPeriod:
    def test_finds_known_period(self):
        data = periodic_field(period=12, n_time=120)
        assert detect_period(data, time_axis=1) == 12

    @pytest.mark.parametrize("period", [6, 8, 24])
    def test_various_periods(self, period):
        data = periodic_field(period=period, n_time=period * 12)
        assert detect_period(data, time_axis=1) == period

    def test_prefers_fundamental_over_harmonics(self):
        """Paper Fig. 8: peaks at f=86 and multiples; take the smallest f."""
        n_time = 1032 // 4  # scaled SSH: 258 steps, period 12 -> f ~ 21.5
        data = periodic_field(period=12, n_time=n_time, n_space=30)
        assert detect_period(data, time_axis=1) == 12

    def test_aperiodic_returns_none(self):
        rng = np.random.default_rng(3)
        data = np.cumsum(rng.standard_normal((30, 200)), axis=1)
        assert detect_period(data, time_axis=1) is None

    def test_white_noise_returns_none(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((30, 200))
        assert detect_period(data, time_axis=1) is None

    def test_too_short_series_returns_none(self):
        data = periodic_field(n_time=6, period=3)
        assert detect_period(data, time_axis=1) is None

    def test_time_axis_zero(self):
        data = periodic_field(period=10, n_time=100).T.copy()
        assert detect_period(data, time_axis=0) == 10


class TestSplitMerge:
    def test_exact_reconstruction(self):
        data = periodic_field()
        template, residual = split_periodic(data, time_axis=1, period=12)
        assert template.shape == (50, 12)
        assert residual.shape == data.shape
        merged = merge_periodic(template, residual, time_axis=1)
        np.testing.assert_allclose(merged, data, atol=1e-12)

    def test_ragged_tail(self):
        data = periodic_field(n_time=125, period=12)  # 125 = 10*12 + 5
        template, residual = split_periodic(data, time_axis=1, period=12)
        merged = merge_periodic(template, residual, time_axis=1)
        np.testing.assert_allclose(merged, data, atol=1e-12)

    def test_residual_much_smaller_than_signal(self):
        """§VI-D: removing the periodic component leaves near-zero residuals."""
        data = periodic_field(noise=0.001)
        _, residual = split_periodic(data, time_axis=1, period=12)
        assert np.abs(residual).mean() < 0.1 * np.abs(data - data.mean()).mean()

    def test_time_axis_position_independent(self):
        data = periodic_field()
        t0, r0 = split_periodic(data.T.copy(), time_axis=0, period=12)
        t1, r1 = split_periodic(data, time_axis=1, period=12)
        np.testing.assert_allclose(t0, t1.T)
        np.testing.assert_allclose(r0, r1.T)

    def test_bad_period_rejected(self):
        data = periodic_field()
        with pytest.raises(ValueError):
            split_periodic(data, time_axis=1, period=1)
        with pytest.raises(ValueError):
            split_periodic(data, time_axis=1, period=1000)


@given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_split_merge_roundtrip_property(period, seed):
    rng = np.random.default_rng(seed)
    n_time = int(rng.integers(period, 6 * period))
    data = rng.standard_normal((7, n_time))
    template, residual = split_periodic(data, time_axis=1, period=period)
    merged = merge_periodic(template, residual, time_axis=1)
    np.testing.assert_allclose(merged, data, atol=1e-10)
