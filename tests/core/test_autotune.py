"""Tests for the sampling-based auto-tuner."""

import numpy as np
import pytest

from repro.core import AutoTuner, CliZ
from repro.core.autotune import assemble_sample, sample_blocks


def field(nlat=36, nlon=30, nt=72, period=12, seed=0, noise=0.002):
    rng = np.random.default_rng(seed)
    lat = np.sin(np.linspace(0, 3, nlat))[:, None, None]
    lon = np.cos(np.linspace(0, 2, nlon))[None, :, None]
    cycle = rng.standard_normal(period)
    temporal = np.tile(cycle, nt // period + 1)[:nt][None, None, :]
    return lat * lon + temporal + noise * rng.standard_normal((nlat, nlon, nt))


class TestSampling:
    def test_block_count_is_2_to_n(self):
        assert len(sample_blocks((100, 100), 0.01)) == 4
        assert len(sample_blocks((50, 50, 50), 0.01)) == 8

    def test_block_volume_approximates_rate(self):
        shape = (200, 300, 400)
        blocks = sample_blocks(shape, 0.01, min_side=1)
        vol = sum(int(np.prod([s.stop - s.start for s in b])) for b in blocks)
        assert 0.25 * 0.01 <= vol / np.prod(shape) <= 4 * 0.01

    def test_blocks_within_bounds(self):
        for b in sample_blocks((17, 23, 31), 0.5):
            for s, n in zip(b, (17, 23, 31)):
                assert 0 <= s.start < s.stop <= n

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            sample_blocks((10, 10), 0.0)
        with pytest.raises(ValueError):
            sample_blocks((10, 10), 1.5)

    def test_assemble_shape(self):
        data = np.arange(1000.0).reshape(10, 10, 10)
        blocks = sample_blocks(data.shape, 0.2)
        sample = assemble_sample(data, blocks)
        assert sample.ndim == 3
        assert all(s % 2 == 0 for s in sample.shape)

    def test_full_axes_span_entirely(self):
        blocks = sample_blocks((100, 100, 100), 0.001, full_axes=(2,))
        assert len(blocks) == 4  # 2^2 corners over the sampled dims
        for b in blocks:
            assert (b[2].start, b[2].stop) == (0, 100)

    def test_all_axes_full_returns_whole_array(self):
        blocks = sample_blocks((10, 12), 0.5, full_axes=(0, 1))
        assert blocks == [(slice(0, 10), slice(0, 12))]


class TestTuner:
    def test_candidate_count_matches_paper(self):
        """§VII-C2: 192 pipelines for a periodic 3D dataset, 96 without."""
        tuner = AutoTuner(time_axis=2, horiz_axes=(0, 1))
        assert len(tuner.candidate_pipelines(3, period=12)) == 192
        assert len(tuner.candidate_pipelines(3, period=None)) == 96

    def test_tune_returns_valid_config(self):
        data = field()
        tuner = AutoTuner(sampling_rate=0.02, time_axis=2, horiz_axes=(0, 1),
                          max_layouts=4)
        res = tuner.tune(data, abs_eb=1e-3)
        assert res.period == 12
        assert res.best in [t.config for t in res.trials]
        assert all(t.est_ratio >= 0 for t in res.trials)
        # the chosen pipeline actually works on the full data
        blob = CliZ(res.best).compress(data, abs_eb=1e-3)
        dec = CliZ(res.best).decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3

    def test_best_is_argmax(self):
        data = field(nlat=18, nlon=16, nt=48)
        tuner = AutoTuner(sampling_rate=0.05, max_layouts=3,
                          fittings=("linear",), try_binclass=False)
        res = tuner.tune(data, abs_eb=1e-3)
        best_ratio = max(t.est_ratio for t in res.trials)
        chosen = [t for t in res.trials if t.config == res.best][0]
        assert chosen.est_ratio == best_ratio

    def test_masked_tuning(self):
        data = field(nlat=18, nlon=16, nt=48)
        mask2d = (np.add.outer(np.arange(18), np.arange(16)) % 3) != 0
        mask = np.broadcast_to(mask2d[:, :, None], data.shape).copy()
        tuner = AutoTuner(sampling_rate=0.05, max_layouts=2, fittings=("linear",),
                          try_binclass=False, try_periodic=False)
        res = tuner.tune(data, abs_eb=1e-3, mask=mask)
        assert max(t.est_ratio for t in res.trials) > 0

    def test_lower_rate_is_faster(self):
        data = field(nlat=48, nlon=40, nt=96)
        common = dict(time_axis=2, max_layouts=6, fittings=("linear",),
                      try_binclass=False, try_periodic=False)
        slow = AutoTuner(sampling_rate=0.2, **common).tune(data, abs_eb=1e-3)
        fast = AutoTuner(sampling_rate=0.005, **common).tune(data, abs_eb=1e-3)
        assert fast.total_time < slow.total_time

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            AutoTuner(sampling_rate=0.0)


class TestDegenerateCandidates:
    """Regression guard for the narrowed candidate-evaluation catch.

    ``AutoTuner.tune`` scores a failing candidate out of the race by
    catching ``(ValueError, ArithmeticError, LookupError,
    NotImplementedError)``. These tests pin the exception types that
    known-invalid layout/period combos actually raise to members of that
    tuple, so narrowing it further would fail here instead of aborting
    tunes in the field.
    """

    CAUGHT = (ValueError, ArithmeticError, LookupError, NotImplementedError)

    def test_known_invalid_combos_raise_within_caught_tuple(self):
        from repro.core import Layout, PipelineConfig

        data = field(nlat=8, nlon=6, nt=24).astype(np.float32)
        bad = [
            # layout dimensionality does not match the data
            PipelineConfig(layout=Layout.identity(2)),
            # periodic extraction along an axis the data does not have
            PipelineConfig(layout=Layout.identity(3), periodic=True,
                           time_axis=7, period=12),
            # bin classification over out-of-range horizontal axes
            PipelineConfig(layout=Layout.identity(3), binclass=True,
                           horiz_axes=(5, 6)),
        ]
        for cfg in bad:
            with pytest.raises(self.CAUGHT):
                CliZ(cfg).compress(data, abs_eb=1e-3)

    def test_tune_scores_degenerate_candidate_out_of_race(self, monkeypatch):
        from repro.core import Layout, PipelineConfig

        data = field(nlat=18, nlon=16, nt=48)
        real = AutoTuner.candidate_pipelines

        def with_bad_candidate(self, ndim, period):
            bad = PipelineConfig(layout=Layout.identity(ndim - 1))
            return [bad] + real(self, ndim, period)

        monkeypatch.setattr(AutoTuner, "candidate_pipelines", with_bad_candidate)
        tuner = AutoTuner(sampling_rate=0.05, max_layouts=2,
                          fittings=("linear",), try_binclass=False,
                          try_periodic=False)
        res = tuner.tune(data, abs_eb=1e-3)
        assert res.trials[0].est_ratio == 0.0          # scored out, not fatal
        assert res.best.layout.ndim_in == data.ndim    # a valid config won
        assert max(t.est_ratio for t in res.trials) > 0
