"""Property tests over CliZ's full feature lattice.

Any combination of {mask, periodicity, layout, fitting, bin classification,
j/k/λ} must round-trip within the bound — these tests randomize the whole
configuration space, which is where cross-feature bugs hide.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CliZ, Layout, PipelineConfig
from repro.core.dims import enumerate_layouts
from repro.prediction.interpolation import InterpSpec, interp_compress, traversal_indices
from repro.quantization.linear import UNPREDICTABLE


def make_field(rng, nlat, nlon, nt, masked, periodic_strength):
    cycle = rng.standard_normal(12) * periodic_strength
    t = np.arange(nt)
    base = rng.standard_normal((nlat, nlon, 1)) * 0.3
    data = base + cycle[t % 12][None, None, :] + 0.05 * rng.standard_normal((nlat, nlon, nt))
    mask = None
    if masked:
        mask2d = rng.random((nlat, nlon)) > 0.35
        if not mask2d.any():
            mask2d[0, 0] = True
        mask = np.broadcast_to(mask2d[:, :, None], data.shape).copy()
        data = data.copy()
        data[~mask] = 9.96921e36
    return data.astype(np.float32), mask


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_full_lattice_roundtrip(seed):
    rng = np.random.default_rng(seed)
    nlat, nlon = int(rng.integers(6, 16)), int(rng.integers(6, 16))
    nt = int(rng.integers(24, 60))
    masked = bool(rng.random() < 0.5)
    data, mask = make_field(rng, nlat, nlon, nt, masked, float(rng.uniform(0, 2)))

    layouts = enumerate_layouts(3)
    cfg = PipelineConfig(
        layout=layouts[int(rng.integers(0, len(layouts)))],
        fitting=str(rng.choice(["linear", "cubic"])),
        periodic=bool(rng.random() < 0.5),
        time_axis=2,
        period=int(rng.choice([0, 12])) or None,
        binclass=bool(rng.random() < 0.5),
        horiz_axes=(0, 1),
        use_mask=bool(rng.random() < 0.8),
        template_eb_ratio=float(rng.uniform(0.05, 0.9)),
        binclass_j=int(rng.integers(0, 3)),
        binclass_k=int(rng.integers(0, 3)),
        binclass_lambda=float(rng.uniform(0.2, 0.6)),
    )
    eb = float(rng.uniform(1e-4, 5e-2))
    comp = CliZ(cfg)
    blob = comp.compress(data, abs_eb=eb, mask=mask)
    dec = comp.decompress(blob)
    err = np.abs(dec.astype(np.float64) - data.astype(np.float64))
    if mask is not None and cfg.use_mask:
        assert err[mask].max() <= eb + 1e-6
        assert (dec[~mask] == data[~mask]).all()
    else:
        assert err.max() <= eb + 1e-6


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_traversal_indices_align_with_stream(seed):
    """The i-th stream code belongs to grid position traversal_indices[i].

    Verified through the unpredictable-value channel: with a tiny radius
    every point escapes, so the unpredictable list must equal the data read
    in traversal order.
    """
    rng = np.random.default_rng(seed)
    ndim = int(rng.integers(1, 4))
    shape = tuple(int(rng.integers(3, 10)) for _ in range(ndim))
    data = rng.standard_normal(shape) * 100
    mask = rng.random(shape) > 0.3 if rng.random() < 0.5 else None
    if mask is not None and not mask.any():
        mask[(0,) * ndim] = True
    order = tuple(rng.permutation(ndim).tolist())
    spec = InterpSpec(order=order, radius=2)  # radius 2 -> almost all escape
    res = interp_compress(data, 1e-12, spec, mask=mask)
    tidx = traversal_indices(shape, order, mask)
    expected = data.ravel()[tidx][res.codes == UNPREDICTABLE]
    np.testing.assert_array_equal(res.unpredictable, expected)
