"""Cross-module integration tests: registry routing, robustness, end-to-end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import COMPRESSORS, compressor_for, decompress
from repro.datasets import load
from repro.encoding.container import Container

BOUNDED = [name for name, cls in COMPRESSORS.items()
           if getattr(cls, "pointwise_bound", True)]


def field2d(seed=0, shape=(40, 48)):
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:shape[0], 0:shape[1]]
    return np.sin(x / 7.0) * np.cos(y / 5.0) + 0.005 * rng.standard_normal(shape)


class TestRegistry:
    def test_every_codec_roundtrips_through_dispatch(self):
        data = field2d()
        for name in COMPRESSORS:
            blob = compressor_for(name).compress(data, abs_eb=1e-2)
            assert Container.peek_codec(blob) == name
            out = decompress(blob)
            assert out.shape == data.shape, name

    @pytest.mark.parametrize("name", BOUNDED)
    def test_bounded_codecs_honour_bound(self, name):
        data = field2d(seed=3)
        eb = 5e-3
        blob = compressor_for(name).compress(data, abs_eb=eb)
        out = decompress(blob)
        assert np.abs(out - data).max() <= eb + 1e-12, name

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            compressor_for("lz4")

    def test_codec_names_match_registry_keys(self):
        for name, cls in COMPRESSORS.items():
            assert cls.codec_name == name


class TestRobustness:
    """Corrupted/truncated inputs must raise, never return wrong data."""

    def make_blob(self, name):
        return compressor_for(name).compress(field2d(), abs_eb=1e-2)

    @pytest.mark.parametrize("name", list(COMPRESSORS))
    def test_truncated_blob_raises(self, name):
        blob = self.make_blob(name)
        for frac in (0.25, 0.6, 0.95):
            cut = blob[: int(len(blob) * frac)]
            with pytest.raises(Exception):
                decompress(cut)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decompress(b"not a container at all")

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_bitflip_never_silently_wrong_shape(self, seed):
        """A random single-byte corruption either raises or still decodes to
        the declared shape (the container self-describes)."""
        rng = np.random.default_rng(seed)
        blob = bytearray(self.make_blob("sz3"))
        pos = int(rng.integers(8, len(blob)))  # keep magic intact
        blob[pos] ^= int(rng.integers(1, 256))
        try:
            out = decompress(bytes(blob))
        except Exception:
            return
        assert out.shape == (40, 48)


class TestEndToEndWorkflows:
    def test_tune_compress_archive_assess(self, tmp_path):
        """The full user journey across core, io and metrics."""
        from repro import AutoTuner, CliZ
        from repro.io import RcdfDataset, read_rcdf, write_rcdf
        from repro.metrics import assess

        fieldobj = load("SSH", shape=(24, 20, 72))
        tuner = AutoTuner(sampling_rate=0.05, max_layouts=3,
                          **fieldobj.tuner_kwargs())
        tuned = tuner.tune(fieldobj.data, rel_eb=1e-3, mask=fieldobj.mask)
        blob = CliZ(tuned.best).compress(fieldobj.data, rel_eb=1e-3,
                                         mask=fieldobj.mask)
        recon = decompress(blob)
        report = assess(fieldobj.data, recon, fieldobj.mask)
        vals = fieldobj.data[fieldobj.mask]
        assert report.passes(abs_eb=1e-3 * float(vals.max() - vals.min()) + 1e-6)

        ds = RcdfDataset()
        for name, size in zip(("lat", "lon", "time"), fieldobj.shape):
            ds.create_dimension(name, size)
        ds.add_variable("ssh", ("lat", "lon", "time"), fieldobj.data,
                        attrs={"missing_value": float(fieldobj.fill_value)},
                        codec="cliz", rel_eb=1e-3)
        path = tmp_path / "a.rcdf"
        write_rcdf(path, ds)
        assert read_rcdf(path).get("ssh").data.shape == fieldobj.shape

    def test_chunked_matches_whole_under_same_bound(self):
        from repro.parallel import compress_chunked, decompress_chunked
        data = field2d(seed=9, shape=(60, 40))
        eb = 1e-3
        whole = decompress(compressor_for("sz3").compress(data, abs_eb=eb))
        parts = decompress_chunked(compress_chunked(data, "sz3", axis=0,
                                                    n_chunks=3, abs_eb=eb))
        assert np.abs(whole - data).max() <= eb
        assert np.abs(parts - data).max() <= eb
