"""Corruption fuzzing: every registered codec must fail *cleanly* on damage.

For each codec we compress a small field, then hammer the blob with seeded
single-bit flips and truncations. Decoding corrupt input must raise from
the documented exception set (``repro.encoding.container.DECODE_ERRORS`` —
``CorruptStreamError`` is a ``ValueError`` subclass), never segfault, hang,
or silently return garbage past the container checksums.
"""

import numpy as np
import pytest

from repro import COMPRESSORS, compressor_for, decompress
from repro.encoding.container import DECODE_ERRORS
from repro.parallel import compress_chunked

N_FLIPS = 20
N_TRUNCATIONS = 10


def small_field(shape=(16, 16), seed=0):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return (sum(np.sin(g) for g in grids)
            + 0.01 * rng.standard_normal(shape)).astype(np.float32)


@pytest.fixture(scope="module")
def clean_blobs():
    """One intact blob per codec (compressed once, reused by every case)."""
    data = small_field()
    blobs = {name: compressor_for(name).compress(data, rel_eb=1e-3)
             for name in COMPRESSORS}
    blobs["chunked"] = compress_chunked(data.astype(np.float64), "sz3",
                                        n_chunks=3, abs_eb=1e-3)
    return blobs


ALL_CODECS = sorted(COMPRESSORS) + ["chunked"]


def flip_bit(blob: bytes, bit: int) -> bytes:
    buf = bytearray(blob)
    buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


@pytest.mark.parametrize("codec", ALL_CODECS)
def test_single_bit_flips_fail_cleanly(codec, clean_blobs):
    blob = clean_blobs[codec]
    rng = np.random.default_rng(hash(codec) % 2**32)
    for bit in rng.integers(0, len(blob) * 8, size=N_FLIPS):
        with pytest.raises(DECODE_ERRORS):
            decompress(flip_bit(blob, int(bit)))


@pytest.mark.parametrize("codec", ALL_CODECS)
def test_truncations_fail_cleanly(codec, clean_blobs):
    blob = clean_blobs[codec]
    rng = np.random.default_rng(hash(codec) % 2**32 + 1)
    cuts = sorted(set(rng.integers(1, len(blob), size=N_TRUNCATIONS)))
    for cut in cuts:
        with pytest.raises(DECODE_ERRORS):
            decompress(blob[: int(cut)])


@pytest.mark.parametrize("codec", ALL_CODECS)
def test_empty_and_tiny_inputs(codec, clean_blobs):
    for junk in (b"", b"R", b"RPRZ", b"RPRZ\x02", clean_blobs[codec][:5]):
        with pytest.raises(DECODE_ERRORS):
            decompress(junk)


def test_clean_blobs_still_decode(clean_blobs):
    """The fuzz fixtures themselves are valid (guards against a suite that
    passes because the baseline blob was already broken)."""
    for codec, blob in clean_blobs.items():
        out = decompress(blob)
        assert out.shape == (16, 16)


def test_corruption_detection_is_deterministic(clean_blobs):
    blob = clean_blobs["cliz"]
    bad = flip_bit(blob, len(blob) * 4)  # middle of the blob
    errors = set()
    for _ in range(3):
        try:
            decompress(bad)
        except DECODE_ERRORS as exc:
            errors.add((type(exc).__name__, str(exc)))
    assert len(errors) == 1
