"""Tests for the SPERR baseline (wavelet, SPECK, compressor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SPERR
from repro.baselines.sperr.speck import speck_decode, speck_encode
from repro.baselines.sperr.wavelet import dwt_forward, dwt_inverse, max_dwt_levels
from repro.encoding.bitstream import BitReader, BitWriter


class TestWavelet:
    @pytest.mark.parametrize("shape", [(64,), (65,), (33, 47), (16, 17, 19), (9,)])
    def test_perfect_reconstruction(self, shape):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(shape) * 10
        levels = max_dwt_levels(shape)
        back = dwt_inverse(dwt_forward(data, levels), levels)
        assert np.abs(back - data).max() < 1e-9

    def test_zero_levels_is_identity(self):
        data = np.arange(12.0)
        np.testing.assert_array_equal(dwt_forward(data, 0), data)

    def test_max_levels_small_array(self):
        assert max_dwt_levels((4,)) == 0
        assert max_dwt_levels((8, 8)) == 1
        assert max_dwt_levels((1024, 1024)) == 4

    def test_energy_compaction_on_smooth_data(self):
        y, x = np.mgrid[0:128, 0:128]
        smooth = np.sin(x / 20.0) * np.cos(y / 15.0)
        co = dwt_forward(smooth, 4)
        mag2 = np.sort((co ** 2).ravel())[::-1]
        assert mag2[:164].sum() / mag2.sum() > 0.99  # 1% of coeffs, 99% energy

    def test_input_not_modified(self):
        data = np.ones((16, 16))
        copy = data.copy()
        dwt_forward(data, 2)
        np.testing.assert_array_equal(data, copy)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_property(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 4))
        shape = tuple(int(rng.integers(2, 20)) for _ in range(ndim))
        data = rng.standard_normal(shape) * 100
        levels = max_dwt_levels(shape)
        back = dwt_inverse(dwt_forward(data, levels), levels)
        assert np.abs(back - data).max() < 1e-7


class TestSpeck:
    def roundtrip(self, values):
        values = np.asarray(values, dtype=np.int64)
        w = BitWriter()
        n_planes = speck_encode(values, w)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        decoded = speck_decode(values.shape, n_planes, r)
        np.testing.assert_array_equal(decoded, values)
        return w

    def test_simple_2d(self):
        self.roundtrip([[0, 1], [-3, 7]])

    def test_all_zero(self):
        w = BitWriter()
        assert speck_encode(np.zeros((5, 5), dtype=np.int64), w) == 0
        assert w.bit_length == 0
        np.testing.assert_array_equal(
            speck_decode((5, 5), 0, BitReader(b"")), np.zeros((5, 5), dtype=np.int64))

    @pytest.mark.parametrize("shape", [(17,), (9, 13), (5, 6, 7)])
    def test_shapes(self, shape):
        rng = np.random.default_rng(1)
        vals = (rng.standard_normal(shape) * 20).astype(np.int64)
        self.roundtrip(vals)

    def test_sparse_is_cheap(self):
        """A lone spike costs far fewer bits than dense data (set pruning)."""
        sparse = np.zeros((64, 64), dtype=np.int64)
        sparse[10, 20] = 1000
        w_sparse = self.roundtrip(sparse)
        rng = np.random.default_rng(2)
        dense = rng.integers(-1000, 1000, (64, 64))
        w_dense = self.roundtrip(dense)
        assert w_sparse.bit_length < w_dense.bit_length / 20

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 4))
        shape = tuple(int(rng.integers(1, 12)) for _ in range(ndim))
        scale = float(rng.choice([1, 100, 10000]))
        vals = (rng.standard_normal(shape) * scale).astype(np.int64)
        self.roundtrip(vals)


class TestCompressor:
    @pytest.mark.parametrize("shape", [(200,), (40, 50), (12, 20, 24)])
    def test_bound_guaranteed(self, shape):
        rng = np.random.default_rng(3)
        grids = np.meshgrid(*[np.linspace(0, 5, n) for n in shape], indexing="ij")
        data = sum(np.sin(g) for g in grids) + 0.002 * rng.standard_normal(shape)
        eb = 1e-3
        dec = SPERR().decompress(SPERR().compress(data, abs_eb=eb))
        assert np.abs(dec - data).max() <= eb + 1e-12

    def test_outliers_corrected_even_on_rough_data(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((30, 30)) * 50
        eb = 0.1
        dec = SPERR().decompress(SPERR().compress(data, abs_eb=eb))
        assert np.abs(dec - data).max() <= eb + 1e-12

    def test_outlier_section_small_on_smooth_data(self):
        from repro.encoding.container import Container
        y, x = np.mgrid[0:64, 0:64]
        data = np.sin(x / 15.0) + np.cos(y / 10.0)
        blob = SPERR().compress(data, abs_eb=1e-3)
        c = Container.from_bytes(blob)
        assert len(c.section("outliers")) < len(c.section("stream")) / 5

    def test_beats_zfp_on_smooth_data(self):
        """Rate-distortion ordering from the paper: SPERR > ZFP at high CR."""
        from repro.baselines import ZFP
        y, x = np.mgrid[0:96, 0:96]
        data = np.sin(x / 18.0) * np.cos(y / 13.0)
        eb = 1e-3
        sperr_blob = SPERR().compress(data, abs_eb=eb)
        zfp_blob = ZFP().compress(data, abs_eb=eb)
        assert len(sperr_blob) < len(zfp_blob)

    def test_float32_restored(self):
        data = np.ones((16, 16), dtype=np.float32)
        dec = SPERR().decompress(SPERR().compress(data, abs_eb=0.1))
        assert dec.dtype == np.float32

    def test_progressive_preview_monotone(self):
        """Embedded streams: more decoded planes -> monotonically better."""
        y, x = np.mgrid[0:48, 0:48]
        data = np.sin(x / 9.0) * np.cos(y / 7.0)
        blob = SPERR().compress(data, abs_eb=1e-4)
        errs = [np.abs(SPERR().decompress(blob, preview_planes=k) - data).max()
                for k in (1, 4, 8)]
        full_err = np.abs(SPERR().decompress(blob) - data).max()
        assert errs[0] >= errs[1] >= errs[2] >= full_err
        assert full_err <= 1e-4 + 1e-12

    def test_preview_beyond_planes_equals_full(self):
        data = np.outer(np.arange(10.0), np.ones(10))
        blob = SPERR().compress(data, abs_eb=1e-3)
        full = SPERR().decompress(blob)
        np.testing.assert_array_equal(SPERR().decompress(blob, preview_planes=99), full)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(4, 16)) for _ in range(int(rng.integers(1, 4))))
        data = rng.standard_normal(shape) * float(rng.uniform(0.5, 20))
        eb = float(rng.uniform(1e-3, 0.5))
        dec = SPERR().decompress(SPERR().compress(data, abs_eb=eb))
        assert np.abs(dec - data).max() <= eb + 1e-12
