"""Tests for the SZ2 regression-predictor baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SZ2, SZ3
from repro.baselines.sz2 import fit_block_planes, predict_from_planes


def smooth(shape, seed=0, noise=0.002):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return sum(np.sin(g * (i + 1)) for i, g in enumerate(grids)) + noise * rng.standard_normal(shape)


class TestRegression:
    def test_plane_fit_exact_on_planes(self):
        """A linear field per block must be predicted exactly."""
        i, j = np.mgrid[0:6, 0:6]
        block = (2.0 + 0.5 * i + 1.5 * j).ravel()[None, :]
        coeffs = fit_block_planes(block, 2)
        np.testing.assert_allclose(coeffs[0], [2.0, 0.5, 1.5], atol=1e-10)
        np.testing.assert_allclose(predict_from_planes(coeffs, 2), block, atol=1e-9)

    def test_fit_is_least_squares(self):
        rng = np.random.default_rng(1)
        blocks = rng.standard_normal((5, 36))
        coeffs = fit_block_planes(blocks, 2)
        preds = predict_from_planes(coeffs, 2)
        # residual orthogonal to the design columns
        from repro.baselines.sz2 import _design_matrix
        design = _design_matrix(2)
        resid = blocks - preds
        np.testing.assert_allclose(resid @ design, 0, atol=1e-8)


class TestCompressor:
    @pytest.mark.parametrize("shape", [(50,), (25, 31), (10, 14, 18)])
    def test_bound_holds(self, shape):
        data = smooth(shape)
        eb = 1e-3
        dec = SZ2().decompress(SZ2().compress(data, abs_eb=eb))
        assert np.abs(dec - data).max() <= eb

    def test_float32_restored(self):
        data = smooth((12, 12)).astype(np.float32)
        assert SZ2().decompress(SZ2().compress(data, abs_eb=1e-2)).dtype == np.float32

    def test_sz3_beats_sz2(self):
        """The SZ3 paper's core claim, reproduced on our substrate."""
        data = smooth((30, 36, 24), seed=2)
        eb = 1e-3
        sz2 = len(SZ2().compress(data, abs_eb=eb))
        sz3 = len(SZ3().compress(data, abs_eb=eb))
        assert sz3 < sz2

    def test_linear_data_compresses_extremely_well(self):
        y, x = np.mgrid[0:60, 0:60]
        data = 1.0 + 0.25 * x + 0.75 * y
        blob = SZ2().compress(data, abs_eb=1e-6)
        assert data.size * 4 / len(blob) > 20

    def test_wrong_codec_rejected(self):
        blob = SZ3().compress(smooth((8, 8)), abs_eb=0.1)
        with pytest.raises(ValueError):
            SZ2().decompress(blob)

    @given(st.integers(min_value=0, max_value=2**31), st.floats(min_value=1e-3, max_value=0.5))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, seed, eb):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(2, 15)) for _ in range(int(rng.integers(1, 4))))
        data = rng.standard_normal(shape) * 5
        dec = SZ2().decompress(SZ2().compress(data, abs_eb=eb))
        assert np.abs(dec - data).max() <= eb
