"""Tests for the ZFP baseline (blocks, transform, codec, compressor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ZFP
from repro.baselines.zfp.blocks import block_grid_shape, gather_blocks, scatter_blocks
from repro.baselines.zfp.codec import (
    decode_block_planes,
    encode_block_planes,
    from_negabinary,
    plane_masks,
    to_negabinary,
)
from repro.baselines.zfp.transform import (
    forward_transform,
    inverse_transform,
    sequency_order,
)
from repro.encoding.bitstream import BitReader, BitWriter


class TestBlocks:
    def test_grid_shape(self):
        assert block_grid_shape((8, 9, 4)) == (2, 3, 1)

    @pytest.mark.parametrize("shape", [(7,), (8,), (9, 10), (5, 6, 7)])
    def test_gather_scatter_roundtrip(self, shape):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(shape)
        blocks = gather_blocks(data)
        assert blocks.shape == (int(np.prod(block_grid_shape(shape))), 4 ** len(shape))
        np.testing.assert_array_equal(scatter_blocks(blocks, shape), data)

    def test_padding_replicates_edge(self):
        data = np.arange(5.0)
        blocks = gather_blocks(data)
        np.testing.assert_array_equal(blocks[1], [4, 4, 4, 4])


class TestTransform:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_exact_inverse(self, ndim):
        rng = np.random.default_rng(1)
        blocks = rng.integers(-2**40, 2**40, (50, 4 ** ndim)).astype(np.int64)
        original = blocks.copy()
        forward_transform(blocks, ndim)
        assert not np.array_equal(blocks, original)  # it does something
        inverse_transform(blocks, ndim)
        np.testing.assert_array_equal(blocks, original)

    def test_constant_block_concentrates_at_dc(self):
        blocks = np.full((1, 64), 1024, dtype=np.int64)
        forward_transform(blocks, 3)
        reordered = blocks[0][sequency_order(3)]
        assert reordered[0] == 1024
        assert (reordered[1:] == 0).all()

    def test_linear_ramp_energy_in_low_sequency(self):
        ramp = np.arange(64, dtype=np.int64).reshape(1, 64) * 1024
        forward_transform(ramp, 3)
        reordered = np.abs(ramp[0][sequency_order(3)])
        assert reordered[:8].sum() > reordered[8:].sum()

    def test_sequency_order_is_permutation(self):
        for d in (1, 2, 3):
            order = sequency_order(d)
            assert sorted(order.tolist()) == list(range(4 ** d))
            assert order[0] == 0  # DC first

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_inverse_property(self, seed):
        rng = np.random.default_rng(seed)
        ndim = int(rng.integers(1, 4))
        blocks = rng.integers(-2**45, 2**45, (10, 4 ** ndim)).astype(np.int64)
        original = blocks.copy()
        inverse_transform(forward_transform(blocks, ndim), ndim)
        np.testing.assert_array_equal(blocks, original)


class TestCodec:
    def test_negabinary_roundtrip(self):
        vals = np.array([0, 1, -1, 2, -2, 2**50, -2**50], dtype=np.int64)
        np.testing.assert_array_equal(from_negabinary(to_negabinary(vals)), vals)

    def test_negabinary_magnitude_monotone_planes(self):
        """Small values must clear high negabinary planes (embedded order)."""
        small = to_negabinary(np.array([3, -3], dtype=np.int64))
        assert (small < (1 << 10)).all()

    def test_plane_masks_values(self):
        nb = np.array([[0b101, 0b011]], dtype=np.uint64)
        masks = plane_masks(nb, 3)
        # plane 0: coeff0 bit=1, coeff1 bit=1 -> 0b11
        assert masks[0, 0] == 0b11
        assert masks[0, 1] == 0b10
        assert masks[0, 2] == 0b01

    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_plane_coder_roundtrip(self, seed, size, n_planes, kmin):
        kmin = min(kmin, n_planes)
        rng = np.random.default_rng(seed)
        planes = [int(rng.integers(0, 1 << size, dtype=np.uint64)) for _ in range(n_planes)]
        w = BitWriter()
        encode_block_planes(planes, size, n_planes, w, kmin=kmin)
        r = BitReader(w.getvalue(), bit_length=w.bit_length)
        dec = decode_block_planes(size, n_planes, r, kmin=kmin)
        assert dec[kmin:] == planes[kmin:]
        assert all(v == 0 for v in dec[:kmin])
        assert r.bits_remaining == 0


class TestCompressor:
    @pytest.mark.parametrize("shape", [(100,), (33, 47), (10, 20, 24)])
    def test_tolerance_respected(self, shape):
        rng = np.random.default_rng(2)
        grids = np.meshgrid(*[np.linspace(0, 4, n) for n in shape], indexing="ij")
        data = sum(np.sin(g) for g in grids) + 0.001 * rng.standard_normal(shape)
        tol = 1e-3
        blob = ZFP().compress(data, abs_eb=tol)
        dec = ZFP().decompress(blob)
        assert np.abs(dec - data).max() <= tol

    def test_zero_blocks_are_cheap(self):
        data = np.zeros((32, 32))
        blob = ZFP().compress(data, abs_eb=1e-6)
        assert len(blob) < 300

    def test_wide_dynamic_range(self):
        """Block-floating-point handles magnitudes spanning many decades."""
        data = np.ones((16, 16))
        data[:8] *= 1e-8
        data[8:] *= 1e8
        tol = 1.0
        dec = ZFP().decompress(ZFP().compress(data, abs_eb=tol))
        assert np.abs(dec - data).max() <= tol

    def test_four_d_folds_leading_axes(self):
        rng = np.random.default_rng(11)
        data = np.cumsum(rng.standard_normal((5, 6, 7, 8)), axis=-1)
        blob = ZFP().compress(data, abs_eb=0.1)
        dec = ZFP().decompress(blob)
        assert dec.shape == data.shape
        assert np.abs(dec - data).max() <= 0.1

    def test_five_d_rejected(self):
        with pytest.raises(ValueError):
            ZFP().compress(np.zeros((2,) * 5), abs_eb=0.1)

    def test_smaller_tolerance_bigger_stream(self):
        rng = np.random.default_rng(3)
        data = np.cumsum(rng.standard_normal((40, 40)), axis=0)
        b1 = ZFP().compress(data, abs_eb=1e-1)
        b2 = ZFP().compress(data, abs_eb=1e-4)
        assert len(b2) > len(b1)

    def test_float32_restored(self):
        data = np.outer(np.sin(np.arange(20) / 3), np.ones(20)).astype(np.float32)
        dec = ZFP().decompress(ZFP().compress(data, abs_eb=1e-3))
        assert dec.dtype == np.float32

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(3, 12)) for _ in range(int(rng.integers(1, 4))))
        data = rng.standard_normal(shape) * float(rng.uniform(0.1, 100))
        tol = float(rng.uniform(1e-4, 0.5))
        dec = ZFP().decompress(ZFP().compress(data, abs_eb=tol))
        assert np.abs(dec - data).max() <= tol
