"""Tests for the related-work compressors: BitGrooming, DigitRounding, TTHRESH."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import TTHRESH, BitGrooming, DigitRounding
from repro.baselines.bitgrooming import bits_for_relative_error, groom
from repro.baselines.digitrounding import round_to_quantum
from repro.baselines.tthresh import hosvd, tucker_reconstruct


def smooth(shape, seed=0, noise=0.002):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return sum(np.sin(g * (i + 1)) for i, g in enumerate(grids)) + noise * rng.standard_normal(shape)


class TestBitGrooming:
    def test_groom_masks_mantissa(self):
        vals = np.array([1.2345678901234, -9.87654321])
        out = groom(vals, keep_bits=10)
        # relative error bounded by kept precision
        assert np.abs((out - vals) / vals).max() <= 2.0 ** -10

    def test_groom_alternates_shave_set(self):
        vals = np.full(4, 1.0 + 2.0 ** -30)
        out = groom(vals, keep_bits=8)
        assert out[0] != out[1]  # shave vs set differ
        assert out[0] == out[2] and out[1] == out[3]

    def test_zeros_stay_zero(self):
        out = groom(np.array([0.0, 1.0, 0.0]), keep_bits=4)
        assert out[0] == 0.0 and out[2] == 0.0

    def test_bits_for_relative_error(self):
        assert bits_for_relative_error(0.5) == 1
        assert bits_for_relative_error(2.0 ** -11) == 10
        with pytest.raises(ValueError):
            bits_for_relative_error(0.0)

    def test_bad_keep_bits_rejected(self):
        with pytest.raises(ValueError):
            groom(np.ones(3), 0)

    def test_roundtrip_and_ratio(self):
        data = smooth((40, 50))
        bg = BitGrooming()
        blob = bg.compress(data, keep_bits=12)
        dec = bg.decompress(blob)
        # per-value relative precision from the explicit mantissa budget
        nz = data != 0
        assert np.abs((dec - data)[nz] / data[nz]).max() <= 2.0 ** -12
        assert len(blob) < data.size * 8

    def test_bound_maps_to_bits(self):
        data = smooth((30, 30)) + 5.0  # keep values away from zero
        bg = BitGrooming()
        dec = bg.decompress(bg.compress(data, rel_eb=1e-3))
        # peak-relative mapping: error <= rel_eb * value range-ish scale
        span = data.max() - data.min()
        assert np.abs(dec - data).max() <= 1e-3 * span * 2

    @given(st.integers(min_value=1, max_value=52), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_relative_error_property(self, bits, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal(50) * 10.0 ** rng.integers(-5, 6)
        out = groom(vals, bits)
        nz = vals != 0
        assert np.abs((out - vals)[nz] / vals[nz]).max() <= 2.0 ** -bits


class TestDigitRounding:
    def test_quantum_bound(self):
        rng = np.random.default_rng(1)
        vals = rng.standard_normal(1000) * 100
        out = round_to_quantum(vals, 0.25)
        assert np.abs(out - vals).max() <= 0.25

    def test_huge_fill_values_pass_through(self):
        vals = np.array([1.0, 9.96921e36])
        out = round_to_quantum(vals, 1e-6)
        assert np.isfinite(out).all()

    def test_bad_eb_rejected(self):
        with pytest.raises(ValueError):
            round_to_quantum(np.ones(3), 0.0)

    def test_roundtrip_bound(self):
        data = smooth((30, 40))
        dr = DigitRounding()
        blob = dr.compress(data, abs_eb=1e-3)
        dec = dr.decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3

    def test_weaker_than_prediction_compressors(self):
        """The Underwood-evaluation ordering: SZ3 far ahead of the trimmers."""
        from repro.baselines import SZ3
        data = smooth((40, 60))
        eb = 1e-3
        sz = len(SZ3().compress(data, abs_eb=eb))
        dr = len(DigitRounding().compress(data, abs_eb=eb))
        assert sz < dr


class TestTTHRESH:
    def test_hosvd_exact_reconstruction(self):
        rng = np.random.default_rng(2)
        t = rng.standard_normal((6, 7, 8))
        core, factors = hosvd(t)
        np.testing.assert_allclose(tucker_reconstruct(core, factors), t, atol=1e-10)

    def test_core_energy_concentrated(self):
        data = smooth((16, 18, 20), noise=0.0)
        core, _ = hosvd(data)
        flat = np.sort(np.abs(core.ravel()))[::-1]
        assert (flat[:20] ** 2).sum() / (flat ** 2).sum() > 0.99

    def test_rmse_in_regime(self):
        data = smooth((16, 30, 36))
        eb = 1e-2
        tt = TTHRESH()
        dec = tt.decompress(tt.compress(data, abs_eb=eb))
        rmse = float(np.sqrt(((dec - data) ** 2).mean()))
        assert rmse <= eb  # mean error well inside the requested bound

    def test_compresses_lowrank_data_extremely_well(self):
        a = np.outer(np.sin(np.arange(40) / 5.0), np.cos(np.arange(50) / 7.0))
        data = np.stack([a * (1 + 0.1 * k) for k in range(12)])
        blob = TTHRESH().compress(data, abs_eb=1e-4)
        assert data.size * 4 / len(blob) > 15

    def test_not_pointwise_bounded_flag(self):
        assert TTHRESH.pointwise_bound is False
        assert BitGrooming.pointwise_bound is False
        assert DigitRounding.pointwise_bound is True

    def test_wrong_codec_rejected(self):
        blob = DigitRounding().compress(np.zeros((4, 4)) + np.eye(4), abs_eb=0.1)
        with pytest.raises(ValueError):
            TTHRESH().decompress(blob)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(3, 10)) for _ in range(int(rng.integers(1, 4))))
        data = rng.standard_normal(shape)
        tt = TTHRESH()
        dec = tt.decompress(tt.compress(data, abs_eb=0.5))
        rmse = float(np.sqrt(((dec - data) ** 2).mean()))
        assert rmse <= 0.5
