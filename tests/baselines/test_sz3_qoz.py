"""Tests for the SZ3 and QoZ baseline compressors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import QoZ, SZ3
from repro.baselines.qoz import _level_factors


def smooth(shape, noise=0.002, seed=0):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return sum(np.sin(g * (i + 1)) for i, g in enumerate(grids)) + noise * rng.standard_normal(shape)


class TestSZ3:
    @pytest.mark.parametrize("shape", [(100,), (30, 40), (12, 14, 16)])
    def test_roundtrip_bound(self, shape):
        data = smooth(shape)
        eb = 1e-3
        blob = SZ3().compress(data, abs_eb=eb)
        dec = SZ3().decompress(blob)
        assert np.abs(dec - data).max() <= eb

    @pytest.mark.parametrize("fitting", ["auto", "linear", "cubic"])
    def test_fittings(self, fitting):
        data = smooth((25, 30))
        blob = SZ3(fitting).compress(data, abs_eb=1e-3)
        dec = SZ3().decompress(blob)
        assert np.abs(dec - data).max() <= 1e-3

    def test_bad_fitting_rejected(self):
        with pytest.raises(ValueError):
            SZ3("spline")

    def test_float32_restored(self):
        data = smooth((20, 20)).astype(np.float32)
        dec = SZ3().decompress(SZ3().compress(data, abs_eb=1e-2))
        assert dec.dtype == np.float32

    def test_relative_bound_with_mask_range(self):
        data = smooth((20, 20))
        data[0, 0] = 1e30
        mask = np.ones(data.shape, dtype=bool)
        mask[0, 0] = False
        blob = SZ3().compress(data, rel_eb=1e-3, mask=mask)
        dec = SZ3().decompress(blob)
        span = data[mask].max() - data[mask].min()
        assert np.abs(dec - data)[mask].max() <= 1e-3 * span

    def test_wrong_codec_rejected(self):
        from repro import CliZ
        blob = CliZ().compress(np.zeros((4, 4)) + np.arange(4), abs_eb=0.1)
        with pytest.raises(ValueError):
            SZ3().decompress(blob)


class TestQoZ:
    def test_roundtrip_bound(self):
        data = smooth((30, 40))
        eb = 1e-3
        blob = QoZ().compress(data, abs_eb=eb)
        dec = QoZ().decompress(blob)
        assert np.abs(dec - data).max() <= eb

    def test_level_factors_shape(self):
        f = _level_factors(5, alpha=2.0, beta=4.0)
        assert len(f) == 5
        assert f[-1] == 1.0            # finest level gets the full bound
        assert f[0] == 0.25            # coarsest floored at 1/beta
        assert all(0 < v <= 1 for v in f)

    def test_alpha_one_is_uniform(self):
        assert _level_factors(4, 1.0, 1.0) == (1.0, 1.0, 1.0, 1.0)

    def test_header_records_tuned_params(self):
        from repro.encoding.container import Container
        data = smooth((40, 40))
        blob = QoZ().compress(data, abs_eb=1e-3)
        header = Container.from_bytes(blob).header
        assert (header["alpha"], header["beta"]) in {(1.0, 1.0), (1.25, 2.0), (1.5, 4.0), (2.0, 4.0)}

    def test_qoz_no_worse_psnr_than_sz3_at_same_eb(self):
        """Level-wise bounds improve quality (the QoZ selling point)."""
        data = smooth((60, 60), noise=0.01, seed=3)
        eb = 5e-3
        sz_dec = SZ3().decompress(SZ3().compress(data, abs_eb=eb))
        qz_dec = QoZ().decompress(QoZ().compress(data, abs_eb=eb))
        sz_rmse = np.sqrt(((sz_dec - data) ** 2).mean())
        qz_rmse = np.sqrt(((qz_dec - data) ** 2).mean())
        assert qz_rmse <= sz_rmse * 1.05  # at least comparable, usually better


@given(st.integers(min_value=0, max_value=2**31), st.floats(min_value=1e-4, max_value=0.3))
@settings(max_examples=15, deadline=None)
def test_sz3_roundtrip_property(seed, eb):
    rng = np.random.default_rng(seed)
    shape = tuple(int(rng.integers(4, 14)) for _ in range(int(rng.integers(1, 4))))
    data = rng.standard_normal(shape) * 2
    dec = SZ3().decompress(SZ3().compress(data, abs_eb=eb))
    assert np.abs(dec - data).max() <= eb
