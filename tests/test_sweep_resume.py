"""Kill-resumable sweeps: ledger replay, breakers, deadlines, and the
SIGKILL crash drill.

The headline contract: a sweep killed at any instant and resumed with
``--resume`` converges to cell artifacts and ``results.json`` that are
**byte-identical** to an uninterrupted run — artifacts and ledger records
are wall-clock-free, and cell identity digests are stable across
processes.
"""

import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import parse_fault_spec
from repro.runtime import InjectedKillError, replay_ledger
from repro.runtime.ledger import LEDGER_FILENAME
from repro.experiments.sweep import (
    CircuitBreaker,
    SweepCell,
    plan_grid,
    run_sweep,
)

ROOT = Path(__file__).parents[1]
SHAPE = (12, 10, 48)  # tiny synthetic SSH: each cell runs in milliseconds


def tiny_plan(compressors=("SZ3", "ZFP"), rel_ebs=(1e-2,)):
    return plan_grid(["SSH"], list(rel_ebs), list(compressors), shape=SHAPE)


def artifact_bytes(out) -> dict:
    """cells/*.json plus results.json, name -> bytes."""
    out = Path(out)
    files = {p.name: p.read_bytes() for p in sorted((out / "cells").glob("*.json"))}
    files["results.json"] = (out / "results.json").read_bytes()
    return files


def done_digests(out) -> dict:
    state = replay_ledger(Path(out) / LEDGER_FILENAME)
    return {c: state.record(c)["digest"] for c in state.by_status("done")}


# ---------------------------------------------------------------------- #
class TestCellIdentity:
    def test_digest_is_stable_and_priority_free(self):
        a = SweepCell(kind="measure", experiment="grid", dataset="SSH",
                      compressor="SZ3", rel_eb=1e-2, priority=0)
        b = SweepCell(kind="measure", experiment="grid", dataset="SSH",
                      compressor="SZ3", rel_eb=1e-2, priority=99)
        assert a.cell_id == b.cell_id  # re-prioritising keeps work valid
        c = SweepCell(kind="measure", experiment="grid", dataset="SSH",
                      compressor="ZFP", rel_eb=1e-2)
        assert a.cell_id != c.cell_id

    def test_plan_grid_ids_unique(self):
        cells = tiny_plan(rel_ebs=(1e-2, 1e-3))
        ids = {c.cell_id for c in cells}
        assert len(ids) == len(cells) == 4


class TestBreaker:
    def test_opens_after_consecutive_failures(self):
        br = CircuitBreaker(threshold=2)
        cell = SweepCell(kind="measure", experiment="grid", compressor="SZ3")
        assert br.record(cell, ok=False) is False
        assert br.record(cell, ok=False) is True   # this one opened it
        assert br.is_open(cell)
        assert br.record(cell, ok=False) is False  # already open

    def test_success_resets_the_streak(self):
        br = CircuitBreaker(threshold=2)
        cell = SweepCell(kind="measure", experiment="grid", compressor="SZ3")
        br.record(cell, ok=False)
        br.record(cell, ok=True)
        assert br.record(cell, ok=False) is False
        assert not br.is_open(cell)

    def test_zero_threshold_disables(self):
        br = CircuitBreaker(threshold=0)
        cell = SweepCell(kind="measure", experiment="grid", compressor="SZ3")
        for _ in range(10):
            assert br.record(cell, ok=False) is False
        assert not br.is_open(cell)


# ---------------------------------------------------------------------- #
class TestRunSweep:
    def test_fresh_run_completes(self, tmp_path):
        report = run_sweep(tmp_path, tiny_plan(), fsync=False)
        assert report.complete and report.executed == 2
        state = replay_ledger(tmp_path / LEDGER_FILENAME)
        assert sorted(state.by_status("done")) == \
            sorted(c.cell_id for c in tiny_plan())
        results = json.loads((tmp_path / "results.json").read_text())
        assert results["complete"] and len(results["cells"]) == 2
        for row in results["cells"]:
            # tiny smoke-scale fields can compress below 1:1; only require
            # a sane, populated measurement
            assert row["compression_ratio"] > 0.0
            assert row["bit_rate"] > 0.0

    def test_refuses_to_reuse_dir_without_resume(self, tmp_path):
        run_sweep(tmp_path, tiny_plan(), fsync=False)
        with pytest.raises(FileExistsError, match="--resume"):
            run_sweep(tmp_path, tiny_plan(), fsync=False)

    def test_resume_skips_verified_done_cells(self, tmp_path):
        run_sweep(tmp_path, tiny_plan(), fsync=False)
        before = artifact_bytes(tmp_path)
        report = run_sweep(tmp_path, tiny_plan(), resume=True, fsync=False)
        assert report.skipped == 2 and report.executed == 0
        assert report.complete
        assert artifact_bytes(tmp_path) == before  # bytes untouched

    def test_resume_recomputes_tampered_artifact(self, tmp_path):
        run_sweep(tmp_path, tiny_plan(), fsync=False)
        victim = next((tmp_path / "cells").glob("*.json"))
        good = victim.read_bytes()
        victim.write_bytes(b"{}")
        report = run_sweep(tmp_path, tiny_plan(), resume=True, fsync=False)
        assert report.requeued == 1 and report.executed == 1
        assert victim.read_bytes() == good  # idempotent recompute

    def test_resume_requeues_running_orphan(self, tmp_path):
        run_sweep(tmp_path, tiny_plan(), fsync=False)
        # forge a process that died mid-cell: running record, no done
        orphan = SweepCell(kind="measure", experiment="grid", dataset="SSH",
                           compressor="SZ3", rel_eb=5e-3,
                           config=(("sampling_rate", 0.01),
                                   ("shape", SHAPE)), priority=99)
        with open(tmp_path / LEDGER_FILENAME, "a") as fh:
            fh.write(json.dumps({"rec": "cell", "cell": orphan.cell_id,
                                 "status": "running", "attempt": 1}) + "\n")
        report = run_sweep(tmp_path, tiny_plan() + [orphan],
                           resume=True, fsync=False)
        assert report.requeued == 1 and report.skipped == 2
        assert report.executed == 1 and report.complete

    def test_failed_cells_are_retried_on_resume(self, tmp_path):
        plan = tiny_plan()
        # cell 0 crashes on its only attempt -> 'failed' in the ledger
        faults = parse_fault_spec("seed=1;crash:only=0")
        report = run_sweep(tmp_path, plan, faults=faults, fsync=False)
        assert report.failed == 1 and report.executed == 1
        report = run_sweep(tmp_path, plan, resume=True, fsync=False)
        assert report.retried_failed == 1 and report.executed == 1
        assert report.complete

    def test_retry_budget_recovers_injected_crash(self, tmp_path):
        faults = parse_fault_spec("seed=1;crash:only=0:attempts=1")
        report = run_sweep(tmp_path, tiny_plan(), faults=faults,
                           retries=1, retry_backoff=0.0, fsync=False)
        assert report.failed == 0 and report.complete

    def test_breaker_skips_remaining_cells_of_broken_codec(self, tmp_path):
        plan = tiny_plan(compressors=("Nope",), rel_ebs=(1e-2, 1e-3))
        report = run_sweep(tmp_path, plan, breaker_threshold=1, fsync=False)
        assert report.failed == 1 and report.breaker_skipped == 1
        assert report.breakers_open == ["Nope"]
        state = replay_ledger(tmp_path / LEDGER_FILENAME)
        kinds = [e["kind"] for e in state.events]
        assert "breaker_open" in kinds and "breaker_skip" in kinds

    def test_deadline_sheds_lowest_priority_cells(self, tmp_path):
        report = run_sweep(tmp_path, tiny_plan(), deadline=-1.0, fsync=False)
        assert report.shed == 2 and report.executed == 0
        assert not report.complete
        state = replay_ledger(tmp_path / LEDGER_FILENAME)
        assert [e["kind"] for e in state.events] == ["shed", "shed"]


# ---------------------------------------------------------------------- #
class TestKillResume:
    """Crash at an artifact-commit stage, resume, compare to a clean run."""

    def reference(self, tmp_path):
        ref = tmp_path / "ref"
        run_sweep(ref, tiny_plan(), fsync=False)
        return artifact_bytes(ref), done_digests(ref)

    @pytest.mark.parametrize("stage", ["mid_write", "pre_commit", "post_commit"])
    def test_soft_kill_then_resume_is_byte_identical(self, tmp_path, stage):
        ref_bytes, ref_digests = self.reference(tmp_path)
        out = tmp_path / "killed"
        faults = parse_fault_spec(f"seed=3;kill:only=1:at={stage}:hard=0")
        with pytest.raises(InjectedKillError):
            run_sweep(out, tiny_plan(), faults=faults, fsync=False)
        # the interrupted run must not have fabricated a 'done' record
        state = replay_ledger(out / LEDGER_FILENAME)
        assert len(state.by_status("done")) == 1

        report = run_sweep(out, tiny_plan(), resume=True, fsync=False)
        assert report.complete and report.requeued == 1
        assert artifact_bytes(out) == ref_bytes
        assert done_digests(out) == ref_digests

    def test_hard_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """The full drill: a real SIGKILL mid-commit in a subprocess,
        then ``--resume`` in a fresh process (satellite d)."""
        ref_bytes, ref_digests = self.reference(tmp_path)
        out = tmp_path / "killed"
        base = [sys.executable, "-m", "repro.experiments.sweep",
                "--out", str(out), "--datasets", "SSH",
                "--shape", ",".join(map(str, SHAPE)),
                "--compressors", "SZ3,ZFP", "--rel-ebs", "1e-2",
                "--no-fsync"]
        env = {"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"}

        killed = subprocess.run(
            base + ["--inject-faults", "seed=3;kill:only=1:at=pre_commit"],
            cwd=ROOT, env=env, capture_output=True, text=True, timeout=120)
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        state = replay_ledger(out / LEDGER_FILENAME)
        assert len(state.by_status("done")) == 1  # first cell committed
        assert state.by_status("running")          # second died mid-cell

        resumed = subprocess.run(base + ["--resume"], cwd=ROOT, env=env,
                                 capture_output=True, text=True, timeout=120)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "1 running orphan(s) requeued" in resumed.stdout
        assert artifact_bytes(out) == ref_bytes
        assert done_digests(out) == ref_digests
