"""Chunk-dispatch internals: shm lifecycle, codebook reuse, timeouts, geometry.

Covers the PR 6 dispatch rework: zero-copy shared-memory chunk payloads
(with unlink guaranteed on every exit path), Huffman codebook reuse
across chunk jobs, the off-main-thread timeout fallback, and the chunk
slicing / header geometry edge cases.
"""

import os
import threading
import warnings

import numpy as np
import pytest

import repro.parallel as par
from repro import obs
from repro.encoding.codebook import CodebookCache, activate, active_cache
from repro.parallel import (
    ParallelJobError,
    _chunk_array,
    _chunk_slices,
    _ShmArena,
    _ShmSlice,
    compress_chunked,
    decompress_chunked,
)


def field(shape=(32, 24, 20), seed=0):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*[np.linspace(0, 3, n) for n in shape], indexing="ij")
    return sum(np.sin(g) for g in grids) + 0.01 * rng.standard_normal(shape)


def shm_segments() -> set[str]:
    """Names of live POSIX shm segments created by this interpreter family."""
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# ---------------------------------------------------------------------- #
# Shared-memory payloads and their lifecycle.

class TestShmLifecycle:
    def test_chunk_array_owns_its_bytes(self):
        """The materialized chunk must survive segment close AND unlink —
        an axis-0 slice of a C-contiguous array is already contiguous, so
        a naive ascontiguousarray would alias the mapped buffer."""
        arr = np.arange(200, dtype=np.float64).reshape(10, 20)
        arena = _ShmArena()
        try:
            name, shape, dtype = arena.share(arr)
            desc = _ShmSlice(name, shape, dtype, 0, 2, 7)
            out = _chunk_array(desc)
        finally:
            arena.close()
        assert out.flags["OWNDATA"] or out.base is None or \
            not isinstance(out.base, np.ndarray) or out.base.flags["OWNDATA"]
        np.testing.assert_array_equal(out, arr[2:7])  # read after unlink

    @pytest.mark.parametrize("axis", [0, 1])
    def test_chunk_array_slices_any_axis(self, axis):
        arr = np.arange(60, dtype=np.float64).reshape(6, 10)
        arena = _ShmArena()
        try:
            name, shape, dtype = arena.share(arr)
            sel = (slice(None),) * axis + (slice(1, 4),)
            out = _chunk_array(_ShmSlice(name, shape, dtype, axis, 1, 4))
            np.testing.assert_array_equal(out, arr[sel])
        finally:
            arena.close()

    def test_plain_ndarray_passthrough(self):
        arr = np.ones(4)
        assert _chunk_array(arr) is arr

    def test_arena_unlinks_on_close(self):
        before = shm_segments()
        arena = _ShmArena()
        arena.share(np.zeros((4, 4)))
        arena.share(np.ones(8, dtype=bool))
        assert len(shm_segments() - before) == 2
        arena.close()
        assert shm_segments() <= before

    def test_pool_dispatch_leaves_no_segments(self):
        before = shm_segments()
        data = field(seed=11)
        blob = compress_chunked(data, "sz3", n_chunks=4, workers=2, abs_eb=1e-3)
        assert shm_segments() <= before
        assert np.abs(decompress_chunked(blob) - data).max() <= 1e-3

    def test_segments_unlinked_after_worker_crash(self):
        """An exhausted crash fault aborts the dispatch; the finally
        block must still unlink every parent-side segment."""
        before = shm_segments()
        with pytest.raises((ParallelJobError, Exception)):
            compress_chunked(field(seed=12), "sz3", n_chunks=4, workers=2,
                             abs_eb=1e-3, retries=0,
                             faults="seed=1;crash:only=2:attempts=9")
        assert shm_segments() <= before

    def test_segments_unlinked_after_timeout(self):
        before = shm_segments()
        with pytest.raises(TimeoutError):
            compress_chunked(field(seed=13), "sz3", n_chunks=3, workers=2,
                             abs_eb=1e-3, timeout=0.05, retries=0,
                             faults="seed=1;slow:only=1:delay=0.5")
        assert shm_segments() <= before


# ---------------------------------------------------------------------- #
# Huffman codebook reuse across chunks.

class TestCodebookReuse:
    def test_recording_then_reuse(self):
        syms = np.arange(20, dtype=np.int64) % 7
        rec = CodebookCache()
        code0 = rec.code_for("stream", syms)
        frozen = CodebookCache(rec.state())
        code1 = frozen.code_for("stream", syms)
        np.testing.assert_array_equal(code0.lengths, code1.lengths)
        assert rec.recording and not frozen.recording

    def test_uncoverable_symbols_fall_back_to_rebuild(self):
        rec = CodebookCache()
        rec.code_for("stream", np.array([1, 2, 3], dtype=np.int64))
        frozen = CodebookCache(rec.state())
        # way outside the recorded (padded) alphabet: must rebuild, not fail
        wild = np.array([1, 2, 100_000], dtype=np.int64)
        code = frozen.code_for("stream", wild)
        assert code.alphabet_size > 100_000
        from repro.encoding.bitstream import BitWriter
        writer = BitWriter()
        code.encode(wild, writer)  # decodable: every symbol has a codeword

    def test_sequence_keys_distinguish_call_sites(self):
        rec = CodebookCache()
        rec.code_for("group0", np.array([1, 1, 2], dtype=np.int64))
        rec.code_for("group1", np.array([5, 5, 6], dtype=np.int64))
        state = rec.state()
        assert set(state) == {"group0:0", "group1:1"}

    def test_corrupt_state_rejected(self):
        with pytest.raises(ValueError):
            CodebookCache({"stream:0": (3, b"\x01")})  # lengths size != alphabet

    def test_activation_is_scoped(self):
        assert active_cache() is None
        cache = CodebookCache()
        with activate(cache):
            assert active_cache() is cache
        assert active_cache() is None

    def test_chunked_counters_record_decisions(self):
        data = field((40, 16, 12), seed=14)
        with obs.run() as run:
            blob = compress_chunked(data, "cliz", n_chunks=4, abs_eb=1e-3)
        snap = run.metrics.snapshot()
        built = snap.get("huffman.codebook_built", {}).get("value", 0)
        reused = snap.get("huffman.codebook_reused", {}).get("value", 0)
        rebuilt = snap.get("huffman.codebook_rebuilt", {}).get("value", 0)
        assert built >= 1  # chunk 0 records
        assert reused + rebuilt >= 3  # every later chunk decided
        assert np.abs(decompress_chunked(blob) - data).max() <= 1e-3

    def test_reuse_fires_on_homogeneous_chunks(self):
        """Near-identical chunk distributions must actually hit the cache
        (the point of the feature), not permanently fall back."""
        base = field((8, 16, 12), seed=15)
        data = np.concatenate([base] * 4, axis=0)
        with obs.run() as run:
            compress_chunked(data, "cliz", n_chunks=4, abs_eb=1e-3)
        reused = run.metrics.snapshot().get(
            "huffman.codebook_reused", {}).get("value", 0)
        assert reused >= 3

    def test_streams_stay_self_describing(self):
        """A chunked blob decodes with no cache in scope: the (reused)
        tables are still serialized per chunk."""
        data = field(seed=16)
        blob = compress_chunked(data, "cliz", n_chunks=4, abs_eb=1e-3)
        assert active_cache() is None
        assert np.abs(decompress_chunked(blob) - data).max() <= 1e-3


# ---------------------------------------------------------------------- #
# S1: per-job timeout off the main thread.

class TestThreadTimeoutFallback:
    def _dispatch_in_thread(self, **kwargs):
        box = {}

        def target():
            try:
                box["result"] = compress_chunked(
                    field((12, 8, 8), seed=17), "sz3", n_chunks=2,
                    abs_eb=1e-2, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - relayed to the test
                box["error"] = exc

        t = threading.Thread(target=target)
        t.start()
        t.join(60)
        assert not t.is_alive()
        return box

    def test_overrun_surfaces_as_timeout_error(self, monkeypatch):
        """The old behaviour silently skipped the timeout budget off the
        main thread; an overrunning job must now fail retryably."""
        monkeypatch.setattr(par, "_timeout_fallback_warned", False)
        with obs.run() as run:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                box = self._dispatch_in_thread(
                    timeout=0.05, retries=0,
                    faults="seed=1;slow:delay=0.3")
        assert isinstance(box.get("error"), TimeoutError)
        assert "post-hoc" in str(box["error"])
        snap = run.metrics.snapshot()
        assert snap["parallel.timeout_unenforced"]["value"] >= 1
        assert snap["parallel.timeouts"]["value"] >= 1
        assert any(issubclass(w.category, RuntimeWarning) and
                   "SIGALRM" in str(w.message) for w in caught)

    def test_warning_is_one_shot(self, monkeypatch):
        monkeypatch.setattr(par, "_timeout_fallback_warned", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            box = self._dispatch_in_thread(timeout=30.0)
        assert "result" in box
        runtime = [w for w in caught if issubclass(w.category, RuntimeWarning)
                   and "SIGALRM" in str(w.message)]
        assert len(runtime) == 1  # one warning, not one per job

    def test_fast_jobs_still_succeed_off_main_thread(self, monkeypatch):
        monkeypatch.setattr(par, "_timeout_fallback_warned", True)
        box = self._dispatch_in_thread(timeout=30.0)
        data = field((12, 8, 8), seed=17)
        assert np.abs(decompress_chunked(box["result"]) - data).max() <= 1e-2


# ---------------------------------------------------------------------- #
# S3: chunk slicing and header geometry.

class TestChunkGeometry:
    @pytest.mark.parametrize("n,k", [(1, 1), (1, 5), (3, 8), (7, 7), (10, 3)])
    def test_chunk_slices_partition(self, n, k):
        slices = _chunk_slices(n, k)
        assert all(sl.stop > sl.start for sl in slices)  # no size-0 chunks
        assert slices[0].start == 0 and slices[-1].stop == n
        for a, b in zip(slices[:-1], slices[1:]):
            assert a.stop == b.start
        assert len(slices) == min(n, k)

    @pytest.mark.parametrize("axis", [1, 2])
    def test_roundtrip_more_chunks_than_axis(self, axis):
        data = field((6, 3, 4), seed=18)
        blob = compress_chunked(data, "sz3", axis=axis, n_chunks=9, abs_eb=1e-2)
        out = decompress_chunked(blob)
        assert out.shape == data.shape
        assert np.abs(out - data).max() <= 1e-2

    @pytest.mark.parametrize("axis", [0, 1, 2])
    def test_roundtrip_one_element_axis(self, axis):
        shape = [5, 5, 5]
        shape[axis] = 1
        data = field(tuple(shape), seed=19)
        blob = compress_chunked(data, "sz3", axis=axis, n_chunks=4, abs_eb=1e-2)
        out = decompress_chunked(blob)
        assert out.shape == data.shape
        assert np.abs(out - data).max() <= 1e-2

    def test_roundtrip_nonzero_axis_parallel(self):
        data = field(seed=20)
        serial = compress_chunked(data, "sz3", axis=2, n_chunks=4, abs_eb=1e-3)
        parallel = compress_chunked(data, "sz3", axis=2, n_chunks=4,
                                    workers=2, abs_eb=1e-3)
        assert serial == parallel
        assert np.abs(decompress_chunked(parallel) - data).max() <= 1e-3

    def test_header_rejects_more_chunks_than_axis(self):
        from repro.encoding.container import CorruptStreamError
        from repro.parallel import _validate_chunked_header
        with pytest.raises(CorruptStreamError):
            _validate_chunked_header(
                {"n_chunks": 9, "axis": 0, "shape": [3, 4]})

    def test_fault_only_indexing_spans_waves(self):
        """``only=N`` fault clauses address logical chunk indices even
        though dispatch happens in two waves (chunk 0 then the rest)."""
        with obs.run() as run:
            blob = compress_chunked(field(seed=21), "sz3", n_chunks=4,
                                    abs_eb=1e-3, retries=2,
                                    faults="seed=7;crash:only=1")
        assert run.metrics.counter("parallel.retries").value >= 1
        data = field(seed=21)
        assert np.abs(decompress_chunked(blob) - data).max() <= 1e-3

    def test_fault_on_chunk_zero_still_recovers(self):
        blob = compress_chunked(field(seed=22), "sz3", n_chunks=4,
                                abs_eb=1e-3, retries=2,
                                faults="seed=7;crash:only=0")
        data = field(seed=22)
        assert np.abs(decompress_chunked(blob) - data).max() <= 1e-3
