"""End-to-end tests for the asyncio /metrics exporter."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import trace
from repro.obs.server import MetricsServer


@pytest.fixture
def clean_run():
    """Isolate the process-global run state around each test."""
    trace.end_run()
    yield
    trace.end_run()


@pytest.fixture
def server(clean_run):
    run = trace.start_run(tags={"test": "server"})
    run.metrics.counter("files.compressed").inc(2)
    run.metrics.gauge("parallel.queue_depth").set(4)
    run.live.summary("span.compress").observe(0.01)
    srv = MetricsServer(port=0).start()
    yield srv, run
    srv.stop()


def get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers, resp.read().decode()


class TestEndpoints:
    def test_metrics_exposition(self, server):
        srv, _ = server
        status, headers, body = get(srv.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        assert "repro_files_compressed_total 2" in body.splitlines()
        assert "repro_parallel_queue_depth 4" in body.splitlines()
        assert 'repro_span_compress{quantile="0.5"}' in body
        assert body.endswith("\n")

    def test_health(self, server):
        srv, run = server
        status, headers, body = get(srv.url + "/health")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["run"] == run.run_id
        assert doc["collecting"] is True

    def test_snapshot(self, server):
        srv, run = server
        _, _, body = get(srv.url + "/snapshot")
        doc = json.loads(body)
        assert doc["run"] == run.run_id
        assert doc["metrics"]["files.compressed"]["value"] == 2
        assert doc["live"]["span.compress"]["count"] == 1

    def test_unknown_path_404(self, server):
        srv, _ = server
        with pytest.raises(urllib.error.HTTPError) as exc:
            get(srv.url + "/nope")
        assert exc.value.code == 404

    def test_post_is_405(self, server):
        srv, _ = server
        req = urllib.request.Request(srv.url + "/metrics", data=b"x",
                                     method="POST")
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 405

    def test_scrapes_are_counted(self, server):
        srv, run = server
        for _ in range(3):
            get(srv.url + "/health")
        assert run.metrics.counter("obs.server.requests").value >= 3


class TestLifecycle:
    def test_ephemeral_port_bound(self, clean_run):
        trace.start_run()
        srv = MetricsServer(port=0).start()
        try:
            assert srv.port not in (None, 0)
        finally:
            srv.stop()

    def test_stop_is_idempotent(self, clean_run):
        trace.start_run()
        srv = MetricsServer(port=0).start()
        srv.stop()
        srv.stop()

    def test_double_start_rejected(self, clean_run):
        trace.start_run()
        srv = MetricsServer(port=0).start()
        try:
            with pytest.raises(RuntimeError):
                srv.start()
        finally:
            srv.stop()

    def test_bind_conflict_raises(self, clean_run):
        trace.start_run()
        first = MetricsServer(port=0).start()
        try:
            with pytest.raises(RuntimeError, match="failed to bind"):
                MetricsServer(port=first.port).start()
        finally:
            first.stop()

    def test_close_then_join_frees_the_port(self, clean_run):
        """The split API: close() is non-blocking, join() waits and frees."""
        trace.start_run()
        srv = MetricsServer(port=0).start()
        port = srv.port
        srv.close()
        srv.close()  # safe to repeat
        srv.join()
        # the port is genuinely free: a new server can bind it immediately
        again = MetricsServer(port=port).start()
        try:
            assert again.port == port
        finally:
            again.stop()

    def test_join_without_start_is_a_noop(self, clean_run):
        MetricsServer(port=0).join()

    def test_restart_after_stop_rebinds(self, clean_run):
        """Regression: a stopped instance must reset its state on restart
        instead of reporting the stale port / startup error."""
        trace.start_run()
        srv = MetricsServer(port=0).start()
        srv.stop()
        srv.start()
        try:
            assert srv.port not in (None, 0)
            status, _, _ = get(srv.url + "/health")
            assert status == 200
        finally:
            srv.stop()

    def test_failed_bind_allows_retry(self, clean_run):
        """Regression: a bind failure must clear the thread handle so the
        same instance can start again once the port is free."""
        trace.start_run()
        holder = MetricsServer(port=0).start()
        contender = MetricsServer(port=holder.port)
        with pytest.raises(RuntimeError, match="failed to bind"):
            contender.start()
        holder.stop()
        contender.start()
        try:
            assert contender.port == contender.requested_port
        finally:
            contender.stop()

    def test_serves_last_run_after_end(self, clean_run):
        """The exporter stays useful after collection stops."""
        run = trace.start_run()
        run.metrics.counter("c").inc()
        trace.end_run()
        srv = MetricsServer(port=0).start()
        try:
            _, _, body = get(srv.url + "/metrics")
            assert "repro_c_total 1" in body.splitlines()
            doc = json.loads(get(srv.url + "/health")[2])
            assert doc["collecting"] is False
        finally:
            srv.stop()

    def test_no_run_serves_empty_doc(self, clean_run):
        srv = MetricsServer(port=0, run_provider=lambda: None).start()
        try:
            status, _, body = get(srv.url + "/metrics")
            assert status == 200
            assert body == "\n"
        finally:
            srv.stop()
