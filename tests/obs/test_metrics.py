"""Tests for the metrics registry: instruments, bucket edges, merge."""

import pytest

from repro.obs import MetricsRegistry, exponential_buckets
from repro.obs.sinks import validate_metrics_line


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.counter("c").value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.5)
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5

    def test_unset_is_none(self):
        assert MetricsRegistry().gauge("g").value is None


class TestHistogramBuckets:
    def test_edge_values_inclusive(self):
        """Values exactly on an edge land in that edge's bucket (le semantics)."""
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 4.0001):
            h.observe(v)
        # 0.5 and 1.0 -> le 1.0; 1.5, 2.0 -> le 2.0; 4.0 -> le 4.0; rest overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.min == 0.5 and h.max == 4.0001
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 4.0001)

    def test_below_first_edge(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[10.0])
        h.observe(-100.0)
        assert h.counts == [1, 0]

    def test_overflow_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0])
        h.observe(1e9)
        assert h.counts == [0, 1]

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=[2.0, 1.0])

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=[1.0, 1.0])

    def test_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[10.0])
        assert h.mean is None
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0

    def test_exponential_buckets(self):
        assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)


class TestRegistry:
    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_records_validate(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.25)
        reg.histogram("c", buckets=[1.0, 2.0]).observe(1.5)
        for rec in reg.records():
            validate_metrics_line(rec)
        snap = reg.snapshot()
        assert set(snap) == {"a", "b", "c"}

    def test_merge_adds_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.histogram("h", buckets=[1.0, 2.0]).observe(0.5)
        b.histogram("h", buckets=[1.0, 2.0]).observe(1.5)
        b.gauge("g").set(7.0)
        a.merge(b.snapshot())
        assert a.counter("n").value == 5
        h = a.histogram("h")
        assert h.counts == [1, 1, 0]
        assert h.count == 2
        assert h.min == 0.5 and h.max == 1.5
        assert a.gauge("g").value == 7.0

    def test_merge_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0])
        b.histogram("h", buckets=[2.0]).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_merge_into_empty_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("h", buckets=[1.0]).observe(0.5)
        a.merge(b.snapshot())
        assert a.histogram("h").count == 1

    def test_merge_empty_histogram_keeps_local_min_max(self):
        """An observation-free histogram (min/max None) must merge as a
        no-op on the extrema, not clobber them or raise on ``min(None, x)``
        — the shape a pool worker ships when it declared a histogram but
        never observed into it."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0]).observe(0.5)
        b.histogram("h", buckets=[1.0])  # declared, never observed
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.count == 1
        assert h.min == 0.5 and h.max == 0.5

    def test_merge_populated_into_empty_histogram(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0])  # local side has no observations
        b.histogram("h", buckets=[1.0]).observe(2.5)
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.count == 1
        assert h.min == 2.5 and h.max == 2.5

    def test_merge_both_histograms_empty(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=[1.0])
        b.histogram("h", buckets=[1.0])
        a.merge(b.snapshot())
        h = a.histogram("h")
        assert h.count == 0
        assert h.min is None and h.max is None


class TestThreadSafety:
    """Two-thread regression tests for the per-metric locks.

    Before the locks, ``Counter.inc`` / ``Histogram.observe`` were bare
    read-modify-write sequences; two threads hammering one instrument
    lost updates. 20k increments across threads must land exactly.
    """

    N_THREADS = 4
    N_OPS = 5000

    def _hammer(self, fn):
        import threading

        threads = [threading.Thread(target=fn) for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_are_atomic(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        self._hammer(lambda: [counter.inc() for _ in range(self.N_OPS)])
        assert counter.value == self.N_THREADS * self.N_OPS

    def test_histogram_observations_are_atomic(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=[0.5, 1.5])
        self._hammer(lambda: [hist.observe(1.0) for _ in range(self.N_OPS)])
        total = self.N_THREADS * self.N_OPS
        assert hist.count == total
        assert hist.sum == pytest.approx(float(total))
        assert hist.counts == [0, total, 0]

    def test_gauge_set_under_contention(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("g")
        self._hammer(lambda: [gauge.set(1.0) for _ in range(self.N_OPS)])
        assert gauge.value == 1.0


class TestLatencyBuckets:
    def test_span_second_scale(self):
        from repro.obs import latency_buckets

        edges = latency_buckets()
        assert edges[0] == pytest.approx(1e-4)
        assert edges[-1] > 60.0  # covers minute-scale cells
        assert edges == sorted(edges)
        # fine enough that sub-ms and multi-second work land in
        # different buckets with room to spare
        assert len(edges) >= 16

    def test_used_by_observe_latency(self):
        from repro import obs

        obs.end_run()
        run = obs.start_run()
        try:
            obs.observe_latency("stage", 0.01)
            hist = run.metrics.histogram("stage.seconds")
            assert hist.buckets == obs.latency_buckets()
            assert hist.count == 1
            assert run.live.summary("stage").count == 1
        finally:
            obs.end_run()


class TestSchemaVersion:
    def test_records_carry_schema_1(self):
        from repro.obs import SCHEMA_VERSION

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h", buckets=[1.0]).observe(0.5)
        for rec in reg.records():
            assert rec["schema"] == SCHEMA_VERSION == 1
            validate_metrics_line(rec)

    def test_validator_accepts_absent_schema(self):
        validate_metrics_line({"type": "counter", "name": "c", "value": 1})

    def test_validator_rejects_future_schema(self):
        with pytest.raises(ValueError, match="schema version 99"):
            validate_metrics_line(
                {"schema": 99, "type": "counter", "name": "c", "value": 1})

    def test_validator_rejects_non_int_schema(self):
        for bad in ("1", 1.5, True):
            with pytest.raises(ValueError, match="schema"):
                validate_metrics_line(
                    {"schema": bad, "type": "counter", "name": "c", "value": 1})
