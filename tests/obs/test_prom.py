"""Prometheus exposition conformance tests for repro.obs.prom."""

import re

import pytest

from repro.obs.live import LiveRegistry
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    CONTENT_TYPE,
    format_value,
    render_registry,
    sanitize_metric_name,
)

#: The legal Prometheus metric-name charset.
NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def sample_lines(text: str) -> list[str]:
    return [ln for ln in text.splitlines() if ln and not ln.startswith("#")]


class TestNameSanitization:
    @pytest.mark.parametrize("raw", [
        "parallel.queue_depth", "span.compress_chunked", "wan.bytes/sent",
        "sweep.breaker_open.SZ3", "0leading.digit", "weird name!", "a-b-c",
    ])
    def test_output_is_legal(self, raw):
        assert NAME_RE.match(sanitize_metric_name(raw, "repro_"))
        assert NAME_RE.match(sanitize_metric_name(raw))

    def test_dots_become_underscores(self):
        assert sanitize_metric_name("a.b.c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sanitize_metric_name("")


class TestFormatValue:
    def test_special_floats(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"

    def test_integral_floats_collapse(self):
        assert format_value(3.0) == "3"
        assert format_value(0) == "0"

    def test_float_round_trips(self):
        assert float(format_value(0.1)) == 0.1


class TestExposition:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("files.compressed").inc(3)
        text = render_registry(reg)
        assert "# TYPE repro_files_compressed_total counter" in text
        assert "repro_files_compressed_total 3" in text.splitlines()

    def test_unset_gauge_omitted(self):
        reg = MetricsRegistry()
        reg.gauge("g.unset")
        reg.gauge("g.set").set(1.5)
        text = render_registry(reg)
        assert "g_unset" not in text
        assert "repro_g_set 1.5" in text.splitlines()

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        text = render_registry(reg)
        counts = [int(m.group(1)) for m in
                  re.finditer(r'repro_lat_bucket\{le="[^"]+"\} (\d+)', text)]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 4, 'le="+Inf" must equal the total count'
        assert 'le="+Inf"' in text
        assert "repro_lat_count 4" in text.splitlines()
        assert re.search(r"repro_lat_sum 14(\.0)?$", text, re.M)

    def test_every_family_has_help_and_type(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h", buckets=[1.0]).observe(0.5)
        live = LiveRegistry()
        live.meter("m").mark(1.0)
        live.summary("s").observe(0.5)
        text = render_registry(reg, live)
        families = {ln.split()[2] for ln in text.splitlines()
                    if ln.startswith("# TYPE")}
        for ln in sample_lines(text):
            name = re.split(r"[{\s]", ln, 1)[0]
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert name in families or base in families, \
                f"sample {name} has no TYPE line"

    def test_summary_quantile_labels(self):
        live = LiveRegistry()
        for v in range(100):
            live.summary("span.compress").observe(float(v))
        text = render_registry(live=live)
        assert "# TYPE repro_span_compress summary" in text
        assert re.search(r'repro_span_compress\{quantile="0\.5"\} \d', text)
        assert re.search(r'repro_span_compress\{quantile="0\.99"\} \d', text)
        assert "repro_span_compress_count 100" in text.splitlines()

    def test_meter_renders_rate_and_total(self):
        live = LiveRegistry()
        live.meter("jobs").mark(5.0)
        text = render_registry(live=live)
        assert "# TYPE repro_jobs_rate gauge" in text
        assert "repro_jobs_total 5" in text.splitlines()

    def test_counter_and_meter_same_name_single_family(self):
        """Series metered AND counted (parallel.retries etc.) must not
        render two identically-named _total families — Prometheus rejects
        scrapes containing duplicate samples."""
        reg = MetricsRegistry()
        reg.counter("parallel.timeouts").inc(2)
        live = LiveRegistry()
        live.meter("parallel.timeouts").mark(2.0)
        text = render_registry(reg, live)
        families = [ln.split()[2] for ln in text.splitlines()
                    if ln.startswith("# TYPE")]
        assert len(families) == len(set(families)), \
            f"duplicate metric families: {families}"
        samples = [re.split(r"[{\s]", ln, 1)[0] for ln in sample_lines(text)]
        assert samples.count("repro_parallel_timeouts_total") == 1
        # the exact counter wins; the meter still contributes its rate
        assert "repro_parallel_timeouts_total 2" in text.splitlines()
        assert "# TYPE repro_parallel_timeouts_rate gauge" in text

    def test_meter_without_counter_keeps_total(self):
        reg = MetricsRegistry()
        reg.counter("unrelated").inc()
        live = LiveRegistry()
        live.meter("jobs").mark(3.0)
        text = render_registry(reg, live)
        assert "repro_jobs_total 3" in text.splitlines()

    def test_window_renders_gauges(self):
        live = LiveRegistry()
        live.window("depth").add(3.0)
        text = render_registry(live=live)
        assert "repro_depth_window_count 1" in text.splitlines()
        assert "repro_depth_window_last 3" in text.splitlines()

    def test_empty_registries_render_newline(self):
        assert render_registry() == "\n"
        assert render_registry(MetricsRegistry(), LiveRegistry()) == "\n"

    def test_all_rendered_names_legal(self):
        reg = MetricsRegistry()
        reg.counter("codec.cliz/SSH@1e-3").inc()
        live = LiveRegistry()
        live.summary("span.weird name!").observe(0.1)
        for ln in sample_lines(render_registry(reg, live)):
            name = re.split(r"[{\s]", ln, 1)[0]
            assert NAME_RE.match(name), f"illegal metric name in {ln!r}"

    def test_content_type_constant(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
