"""Tests for the span tracer: nesting, threads, exports, absorb."""

import json
import threading

import pytest

from repro import obs
from repro.obs.sinks import (
    chrome_trace_events,
    load_jsonl,
    validate_metrics_line,
    validate_trace_line,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.end_run()
    yield
    obs.end_run()


class TestSpans:
    def test_disabled_is_noop(self):
        with obs.span("x") as sp:
            assert sp is None
        assert obs.get_run() is None

    def test_nesting_builds_paths_and_parents(self):
        run = obs.start_run()
        with obs.span("a") as a:
            with obs.span("b") as b:
                assert b.parent_id == a.span_id
                assert b.path == "a/b"
        spans = {s.name: s for s in run.spans()}
        assert spans["b"].parent_id == spans["a"].span_id
        assert spans["a"].parent_id is None
        assert spans["a"].run_id == run.run_id

    def test_tags_nbytes_status(self):
        run = obs.start_run()
        with pytest.raises(RuntimeError):
            with obs.span("boom", nbytes=10, codec="cliz"):
                obs.add_bytes(5)
                obs.set_tag("k", "v")
                raise RuntimeError("x")
        (sp,) = run.spans()
        assert sp.nbytes == 15
        assert sp.tags == {"codec": "cliz", "k": "v"}
        assert sp.status == "error"

    def test_run_contextmanager_deactivates(self):
        with obs.run(tags={"t": 1}) as r:
            assert obs.get_run() is r
        assert obs.get_run() is None
        assert obs.last_run() is r

    def test_record_span_simulated_time(self):
        run = obs.start_run()
        with obs.span("dispatch") as parent:
            sp = run.record_span("sim", t_start=2.0, dur=3.0, parent=parent,
                                 tid=1001, lane="core0")
        assert sp.t_wall == pytest.approx(run.t0_wall + 2.0)
        assert sp.path == "dispatch/sim"
        assert sp.tid == 1001

    def test_threads_do_not_corrupt_each_others_stacks(self):
        """Two threads nesting concurrently each see only their own ancestry."""
        run = obs.start_run()
        barrier = threading.Barrier(2)
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with obs.span(f"{name}.outer") as outer:
                        barrier.wait(timeout=10)
                        with obs.span(f"{name}.inner") as inner:
                            assert inner.parent_id == outer.span_id
                            assert inner.path == f"{name}.outer/{name}.inner"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        paths = {s.path for s in run.spans()}
        assert paths == {"t1.outer", "t1.outer/t1.inner", "t2.outer", "t2.outer/t2.inner"}
        assert len(run.spans()) == 200


class TestExports:
    def _sample_run(self):
        run = obs.start_run(tags={"dataset": "SSH"})
        with obs.span("compress", nbytes=100, codec="cliz"):
            with obs.span("quantize"):
                pass
        run.metrics.counter("calls").inc()
        run.metrics.histogram("ratio", buckets=[1.0, 10.0]).observe(5.0)
        obs.end_run()
        return run

    def test_jsonl_roundtrip_schema_valid(self, tmp_path):
        run = self._sample_run()
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.jsonl"
        run.export_jsonl(trace_path)
        run.export_metrics_jsonl(metrics_path)

        trace = load_jsonl(trace_path)
        assert len(trace) == 2
        for rec in trace:
            validate_trace_line(rec)
        by_name = {r["name"]: r for r in trace}
        assert by_name["quantize"]["parent"] == by_name["compress"]["id"]
        assert by_name["compress"]["tags"]["codec"] == "cliz"

        metrics = load_jsonl(metrics_path)
        assert len(metrics) == 2
        for rec in metrics:
            validate_metrics_line(rec)

    def test_spans_reimport_from_records(self):
        run = self._sample_run()
        records = run.span_records()
        clone = obs.Run()
        clone.absorb(records)
        assert [s.path for s in clone.spans()] == [s.path for s in run.spans()]

    def test_chrome_trace_format(self, tmp_path):
        run = self._sample_run()
        path = tmp_path / "trace.json"
        run.export_chrome_trace(path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # run metadata
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        for e in xs:
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(e)
            assert e["ts"] >= 0 and e["dur"] >= 0
        assert chrome_trace_events(run)[0]["args"]["dataset"] == "SSH"

    def test_jsonl_sink_appends(self, tmp_path):
        path = tmp_path / "a.jsonl"
        sink = obs.JsonlSink(path)
        assert sink.write([{"a": 1}]) == 1
        assert sink.write([{"b": 2}]) == 1
        assert len(load_jsonl(path)) == 2

    def test_load_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_jsonl(path)

    def test_load_jsonl_skips_byte_truncated_tail(self, tmp_path):
        """Regression: a writer killed mid-append leaves an unterminated
        final line — an expected crash signature, not corruption."""
        path = tmp_path / "torn.jsonl"
        whole = b'{"a": 1}\n{"b": 2}\n{"c": 3}\n'
        path.write_bytes(whole[: len(whole) - 4])  # tear the final record
        with pytest.warns(RuntimeWarning, match="torn final line"):
            records = load_jsonl(path)
        assert records == [{"a": 1}, {"b": 2}]

    def test_jsonl_sink_heals_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "a.jsonl"
        sink = obs.JsonlSink(path)
        sink.write([{"a": 1}, {"b": 2}])
        path.write_bytes(path.read_bytes() + b'{"half')  # crashed append
        with pytest.warns(RuntimeWarning, match="healed"):
            sink.write([{"c": 3}])
        assert load_jsonl(path) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_jsonl_sink_concurrent_appends_never_interleave(self, tmp_path):
        """Regression: threads appending to one sink (service handlers +
        exporter flushes) must not tear or interleave each other's lines."""
        import threading

        path = tmp_path / "hot.jsonl"
        n_threads, n_batches, batch = 8, 20, 5
        errors = []

        def pound(tid):
            sink = obs.JsonlSink(path)  # each thread its own sink instance
            try:
                for b in range(n_batches):
                    sink.write([{"t": tid, "b": b, "i": i}
                                for i in range(batch)])
            except Exception as exc:  # noqa: BLE001 - reported via errors
                errors.append(exc)

        threads = [threading.Thread(target=pound, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        records = load_jsonl(path)  # raises on any torn/interleaved line
        assert len(records) == n_threads * n_batches * batch
        # every batch arrived contiguously (the O_APPEND single-write
        # guarantee): its records appear in order with nothing in between
        for tid in range(n_threads):
            mine = [(r["b"], r["i"]) for r in records if r["t"] == tid]
            assert mine == [(b, i) for b in range(n_batches)
                            for i in range(batch)]
        positions = {}
        for pos, r in enumerate(records):
            positions.setdefault((r["t"], r["b"]), []).append(pos)
        for runs in positions.values():
            assert runs == list(range(runs[0], runs[0] + batch))


class TestValidation:
    def test_trace_line_missing_key(self):
        run = obs.start_run()
        with obs.span("x"):
            pass
        (rec,) = run.span_records()
        validate_trace_line(rec)
        del rec["dur"]
        with pytest.raises(ValueError, match="dur"):
            validate_trace_line(rec)

    def test_trace_line_bad_status(self):
        run = obs.start_run()
        with obs.span("x"):
            pass
        (rec,) = run.span_records()
        rec["status"] = "weird"
        with pytest.raises(ValueError, match="status"):
            validate_trace_line(rec)

    def test_metrics_line_histogram_shape(self):
        rec = {"type": "histogram", "name": "h", "buckets": [1.0],
               "counts": [1], "count": 1, "sum": 0.5}
        with pytest.raises(ValueError, match="len"):
            validate_metrics_line(rec)

    def test_metrics_line_unknown_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            validate_metrics_line({"type": "summary", "name": "x"})


class TestAbsorb:
    def test_absorb_reparents_and_prefixes_paths(self):
        parent_run = obs.start_run()
        with obs.span("compress_many") as dispatch:
            pass
        obs.end_run()

        worker_run = obs.Run(tags={"role": "worker"})
        token_spans = [
            {"type": "span", "run": worker_run.run_id, "id": "w-1", "parent": None,
             "name": "worker", "path": "worker", "ts": 1.0, "dur": 0.5,
             "pid": 999, "tid": 1, "nbytes": 0, "tags": {}, "status": "ok"},
            {"type": "span", "run": worker_run.run_id, "id": "w-2", "parent": "w-1",
             "name": "compress", "path": "worker/compress", "ts": 1.1, "dur": 0.4,
             "pid": 999, "tid": 1, "nbytes": 10, "tags": {}, "status": "ok"},
        ]
        parent_run.absorb(token_spans, reparent_to=dispatch)
        by_id = {s.span_id: s for s in parent_run.spans()}
        assert by_id["w-1"].parent_id == dispatch.span_id
        assert by_id["w-1"].path == "compress_many/worker"
        assert by_id["w-2"].parent_id == "w-1"
        assert by_id["w-2"].path == "compress_many/worker/compress"
        assert by_id["w-1"].run_id == parent_run.run_id
        assert by_id["w-1"].pid == 999  # worker pid preserved

    def test_absorb_merges_metrics(self):
        parent_run = obs.start_run()
        worker = obs.MetricsRegistry()
        worker.counter("files").inc(3)
        parent_run.absorb([], worker.snapshot())
        assert parent_run.metrics.counter("files").value == 3
