"""Tests for the streaming aggregates: EWMA meters, windows, P² quantiles."""

import math
import random
import threading

import numpy as np
import pytest

from repro.obs.live import (
    DEFAULT_QUANTILES,
    EwmaMeter,
    LatencySummary,
    LiveRegistry,
    P2Quantile,
    RingWindow,
)


class FakeClock:
    """Injectable monotonic clock for deterministic time arithmetic."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


class TestEwmaMeter:
    def test_steady_rate_converges(self):
        clock = FakeClock()
        meter = EwmaMeter(tau=5.0, clock=clock)
        # 10 marks/second for many time constants
        for _ in range(500):
            clock.advance(0.1)
            meter.mark(1.0)
        assert meter.rate() == pytest.approx(10.0, rel=0.05)

    def test_decays_toward_zero_when_idle(self):
        clock = FakeClock()
        meter = EwmaMeter(tau=2.0, clock=clock)
        for _ in range(100):
            clock.advance(0.1)
            meter.mark(1.0)
        clock.advance(0.1)  # flush the final pending mark into the rate
        busy = meter.rate()
        clock.advance(20.0)  # 10 time constants of silence
        assert meter.rate() < busy * math.exp(-9)

    def test_total_is_exact(self):
        meter = EwmaMeter(clock=FakeClock())
        for n in (1, 2, 3.5):
            meter.mark(n)
        assert meter.total == 6.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            EwmaMeter(tau=0.0)
        with pytest.raises(ValueError):
            EwmaMeter().mark(-1.0)

    def test_record_shape(self):
        rec = EwmaMeter(clock=FakeClock()).to_record()
        assert rec["type"] == "meter"
        assert set(rec) == {"type", "rate", "total", "tau"}


class TestRingWindow:
    def test_prunes_old_samples(self):
        clock = FakeClock()
        win = RingWindow(window=10.0, clock=clock)
        win.add(1.0)
        clock.advance(5.0)
        win.add(2.0)
        assert win.values() == [1.0, 2.0]
        clock.advance(6.0)  # first sample is now 11s old
        assert win.values() == [2.0]

    def test_maxlen_bounds_memory(self):
        clock = FakeClock()
        win = RingWindow(window=1e9, maxlen=8, clock=clock)
        for i in range(100):
            win.add(float(i))
        assert win.count() == 8
        assert win.last() == 99.0

    def test_aggregates(self):
        clock = FakeClock()
        win = RingWindow(window=60.0, clock=clock)
        for v in (1.0, 2.0, 3.0):
            win.add(v)
        assert win.sum() == 6.0
        assert win.mean() == 2.0
        assert win.rate() == pytest.approx(3 / 60.0)

    def test_empty_window(self):
        win = RingWindow(clock=FakeClock())
        assert win.mean() is None
        assert win.last() is None
        assert win.to_record()["count"] == 0


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "exponential"])
    def test_accuracy_vs_numpy(self, q, dist):
        """P² estimates track numpy percentiles on seeded streams."""
        rng = np.random.default_rng(42)
        samples = {
            "uniform": rng.uniform(0, 1, 5000),
            "lognormal": rng.lognormal(0.0, 0.5, 5000),
            "exponential": rng.exponential(1.0, 5000),
        }[dist]
        est = P2Quantile(q)
        for v in samples:
            est.observe(float(v))
        exact = float(np.percentile(samples, q * 100))
        # P² is an approximation; 10% relative error is a loose ceiling
        # (typical error on these streams is well under 2%)
        assert est.value == pytest.approx(exact, rel=0.10)

    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.observe(v)
        assert est.value == 3.0  # exact median of {1, 3, 5}

    def test_empty_is_none(self):
        assert P2Quantile(0.5).value is None

    def test_rejects_degenerate_quantile(self):
        for q in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_monotone_markers(self):
        """Marker heights stay sorted — the P² invariant."""
        rng = random.Random(7)
        est = P2Quantile(0.95)
        for _ in range(2000):
            est.observe(rng.gauss(0.0, 1.0))
        h = est._heights
        assert all(h[i] <= h[i + 1] for i in range(4))


class TestLatencySummary:
    def test_quantiles_and_extremes(self):
        rng = np.random.default_rng(0)
        samples = rng.uniform(0.0, 1.0, 3000)
        summ = LatencySummary()
        for v in samples:
            summ.observe(float(v))
        assert summ.count == 3000
        assert summ.min == float(samples.min())
        assert summ.max == float(samples.max())
        assert summ.mean == pytest.approx(float(samples.mean()), rel=1e-9)
        for q in DEFAULT_QUANTILES:
            assert summ.quantile(q) == pytest.approx(
                float(np.percentile(samples, q * 100)), rel=0.10)

    def test_record_has_named_quantiles(self):
        summ = LatencySummary()
        summ.observe(1.0)
        rec = summ.to_record()
        assert rec["type"] == "summary"
        assert set(rec["quantiles"]) == {"p50", "p95", "p99"}

    def test_unknown_quantile_raises(self):
        with pytest.raises(KeyError):
            LatencySummary().quantile(0.42)

    def test_thread_safety(self):
        """Concurrent observers lose no counts (lock regression test)."""
        summ = LatencySummary()

        def worker():
            for _ in range(5000):
                summ.observe(0.5)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert summ.count == 20000
        assert summ.sum == pytest.approx(10000.0)


class TestLiveRegistry:
    def test_same_name_same_instance(self):
        reg = LiveRegistry(clock=FakeClock())
        assert reg.meter("m") is reg.meter("m")
        assert reg.window("w") is reg.window("w")
        assert reg.summary("s") is reg.summary("s")

    def test_snapshot_is_sorted_and_typed(self):
        clock = FakeClock()
        reg = LiveRegistry(clock=clock)
        reg.meter("b.meter").mark(1.0)
        reg.window("a.window").add(2.0)
        reg.summary("c.summary").observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a.window", "b.meter", "c.summary"]
        assert snap["a.window"]["type"] == "window"
        assert snap["b.meter"]["type"] == "meter"
        assert snap["c.summary"]["type"] == "summary"
        assert all(rec["name"] == name for name, rec in snap.items())

    def test_snapshot_name_shared_across_kinds(self):
        """A name reused by different instrument kinds must neither crash
        the sort (instances aren't orderable) nor shadow an entry."""
        reg = LiveRegistry(clock=FakeClock())
        reg.meter("x").mark(1.0)
        reg.window("x").add(2.0)
        reg.summary("x").observe(0.5)
        snap = reg.snapshot()
        assert len(snap) == 3
        assert sorted(rec["type"] for rec in snap.values()) == \
            ["meter", "summary", "window"]
        assert all(rec["name"] == name for name, rec in snap.items())
