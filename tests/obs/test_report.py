"""Tests for the offline telemetry-analysis CLI (``repro obs ...``)."""

import importlib.util
import json
import pathlib

import pytest

from repro.obs import report, trace

ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = ROOT / "tests" / "fixtures"


def _load_bench_codec():
    spec = importlib.util.spec_from_file_location(
        "bench_codec", ROOT / "benchmarks" / "bench_codec.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def trace_file(tmp_path):
    """A real trace JSONL written by the current pipeline."""
    trace.end_run()
    run = trace.start_run()
    with trace.span("outer", nbytes=1000):
        with trace.span("inner_slow"):
            pass
        with trace.span("inner_fast"):
            pass
    trace.end_run()
    # make the tree's durations deterministic for critical-path assertions
    spans = {sp.name: sp for sp in run.spans()}
    spans["outer"].dur = 1.0
    spans["inner_slow"].dur = 0.8
    spans["inner_fast"].dur = 0.1
    path = tmp_path / "trace.jsonl"
    run.export_jsonl(path)
    return path


class TestClassify:
    def test_pr2_fixtures(self):
        assert report.classify_file(FIXTURES / "trace_pr2.jsonl") == "trace"
        assert report.classify_file(FIXTURES / "metrics_pr2.jsonl") == "metrics"

    def test_ledger_dir(self, tmp_path):
        (tmp_path / "ledger.jsonl").write_text(
            '{"rec": "cell", "cell": "abc", "status": "done"}\n')
        assert report.classify_file(tmp_path) == "ledger"

    def test_bench_json(self, tmp_path):
        doc = tmp_path / "bench.json"
        doc.write_text(json.dumps({"results": [], "config": {}}, indent=1))
        assert report.classify_file(doc) == "bench"

    def test_garbage_is_unknown(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("not telemetry\n")
        assert report.classify_file(path) == "unknown"
        with pytest.raises(ValueError):
            report.load_any(path)


class TestSchemaGate:
    def test_pr2_era_lines_accepted(self):
        """Files written before schema versioning still load (satellite 3)."""
        kind, records = report.load_any(FIXTURES / "trace_pr2.jsonl")
        assert kind == "trace" and len(records) == 4
        kind, records = report.load_any(FIXTURES / "metrics_pr2.jsonl")
        assert kind == "metrics" and len(records) == 3

    def test_future_schema_rejected(self, tmp_path):
        rec = json.loads(
            (FIXTURES / "trace_pr2.jsonl").read_text().splitlines()[0])
        rec["schema"] = 99
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(rec) + "\n")
        with pytest.raises(ValueError, match="schema version 99"):
            report.load_any(path)

    def test_cli_exits_nonzero_on_violation(self, tmp_path, capsys):
        rec = json.loads(
            (FIXTURES / "metrics_pr2.jsonl").read_text().splitlines()[0])
        rec["schema"] = 99
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(rec) + "\n")
        assert report.main(["report", str(path)]) == 2
        assert "SCHEMA VIOLATION" in capsys.readouterr().err


class TestStageTable:
    def test_aggregates_per_path(self):
        _, spans = report.load_any(FIXTURES / "trace_pr2.jsonl")
        rows = report.stage_table(spans)
        by_path = {r["path"]: r for r in rows}
        assert by_path["compress"]["calls"] == 1
        assert by_path["compress"]["mb_s"] == pytest.approx(
            1048576 / 0.08 / 1e6)
        # heaviest total first
        assert rows[0]["path"] == "compress"

    def test_current_pipeline_output(self, trace_file, capsys):
        assert report.main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "p95 ms" in out


class TestCriticalPath:
    def test_follows_heaviest_chain(self, trace_file):
        _, spans = report.load_any(trace_file)
        chain = report.critical_path(spans)
        assert [rec["name"] for rec in chain] == ["outer", "inner_slow"]

    def test_cli(self, trace_file, capsys):
        assert report.main(["critical-path", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "inner_slow" in out and "inner_fast" not in out

    def test_empty(self):
        assert report.critical_path([]) == []

    def test_cycle_raises_instead_of_recursing(self):
        """Untrusted trace input with cyclic parent links (reachable via a
        duplicated span id) must raise cleanly, not RecursionError."""
        spans = [
            {"id": "a", "parent": None, "dur": 1.0, "name": "a", "path": "a"},
            {"id": "b", "parent": "a", "dur": 1.0, "name": "b", "path": "b"},
            {"id": "a", "parent": "b", "dur": 1.0, "name": "a2", "path": "a2"},
        ]
        with pytest.raises(ValueError, match="cycle"):
            report.critical_path(spans)

    def test_deep_chain_no_recursion_error(self):
        depth = 5000  # far beyond the default interpreter recursion limit
        spans = [{"id": f"s{i}", "parent": f"s{i - 1}" if i else None,
                  "dur": 1.0, "name": f"n{i}", "path": f"p{i}"}
                 for i in range(depth)]
        chain = report.critical_path(spans)
        assert len(chain) == depth
        assert chain[0]["id"] == "s0" and chain[-1]["id"] == f"s{depth - 1}"


class TestTop:
    def test_ranks_by_duration(self, trace_file, capsys):
        assert report.main(["top", str(trace_file), "-n", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "outer" in lines[1]
        assert "inner_slow" in lines[2]


class TestDiff:
    BASE_ROWS = [
        {"codec": "cliz", "dataset": "SSH",
         "compress_mb_s": 100.0, "decompress_mb_s": 200.0},
        {"codec": "zfp", "dataset": "SSH",
         "compress_mb_s": 400.0, "decompress_mb_s": 800.0},
    ]

    def _docs(self, tmp_path, scale=1.0, regress=None):
        import copy

        cur = copy.deepcopy(self.BASE_ROWS)
        for row in cur:
            row["compress_mb_s"] *= scale
            row["decompress_mb_s"] *= scale
        if regress:
            cur[0][regress] *= 0.25
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"results": self.BASE_ROWS}, indent=1))
        new = tmp_path / "new.json"
        new.write_text(json.dumps({"results": cur}, indent=1))
        return base, new

    def test_uniform_machine_factor_passes(self, tmp_path):
        base, new = self._docs(tmp_path, scale=0.5)  # CI runner half as fast
        failures, n = report.diff_files(base, new, 0.20)
        assert failures == [] and n == 4

    def test_single_regression_fails(self, tmp_path, capsys):
        base, new = self._docs(tmp_path, regress="compress_mb_s")
        failures, _ = report.diff_files(base, new, 0.20)
        assert len(failures) == 1 and "cliz/SSH/compress_mb_s" in failures[0]
        assert report.main(["diff", str(base), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_no_overlap_fails_loud(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(
            {"results": [{"codec": "other", "dataset": "X",
                          "compress_mb_s": 1.0}]}))
        new = tmp_path / "new.json"
        new.write_text(json.dumps({"results": self.BASE_ROWS}, indent=1))
        failures, n = report.diff_files(base, new, 0.20)
        assert n == 0 and "no comparable rows" in failures[0]

    def test_verdict_matches_bench_gate(self, tmp_path):
        """`repro obs diff` reproduces check_regression's exact verdict."""
        bc = _load_bench_codec()
        import copy

        cur = copy.deepcopy(self.BASE_ROWS)
        for row in cur:
            row["compress_mb_s"] *= 2.0
            row["decompress_mb_s"] *= 2.0
        cur[1]["decompress_mb_s"] = self.BASE_ROWS[1]["decompress_mb_s"] * 0.3
        gate = bc.check_regression(cur, self.BASE_ROWS, 0.20)
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"results": self.BASE_ROWS}, indent=1))
        new = tmp_path / "new.json"
        new.write_text(json.dumps({"results": cur}, indent=1))
        cli, _ = report.diff_files(base, new, 0.20)
        assert sorted(cli) == sorted(gate) and len(gate) == 1

    def test_metrics_jsonl_diff(self, tmp_path):
        """Bench gauges in metrics JSONL diff the same way."""
        base = tmp_path / "base.jsonl"
        base.write_text(json.dumps(
            {"schema": 1, "type": "gauge",
             "name": "bench.codec.cliz.SSH.compress_mb_s",
             "value": 100.0}) + "\n")
        new = tmp_path / "new.jsonl"
        new.write_text(json.dumps(
            {"schema": 1, "type": "gauge",
             "name": "bench.codec.cliz.SSH.compress_mb_s",
             "value": 95.0}) + "\n")
        failures, n = report.diff_files(base, new, 0.20)
        assert failures == [] and n == 1


class TestLedgerReport:
    def test_summarizes_cells_and_events(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        lines = [
            {"rec": "cell", "cell": "a", "status": "planned"},
            {"rec": "cell", "cell": "a", "status": "running", "attempt": 1},
            {"rec": "cell", "cell": "a", "status": "done", "attempt": 1},
            {"rec": "cell", "cell": "b", "status": "running", "attempt": 2},
            {"rec": "cell", "cell": "b", "status": "failed", "attempt": 2},
            {"rec": "event", "kind": "requeue"},
        ]
        ledger.write_text("".join(json.dumps(ln) + "\n" for ln in lines))
        assert report.main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 done" in out and "1 failed" in out
        assert "retried cells: 1" in out
        assert "requeue x1" in out
