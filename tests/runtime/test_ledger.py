"""repro.runtime.ledger: append-only journal, torn-tail replay, digests."""

import json

import pytest

from repro.runtime import RunLedger, atomic_write, blake2b_file, replay_ledger
from repro.runtime.ledger import blake2b_bytes


def test_lifecycle_fold(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl", fsync=False)
    ledger.planned("c1", meta={"dataset": "SSH"})
    ledger.planned("c2")
    ledger.running("c1", 1)
    ledger.done("c1", "cells/c1.json", "deadbeef", 1)
    ledger.running("c2", 1)
    ledger.failed("c2", "boom", "RuntimeError", 1)
    ledger.event("breaker_open", subject="SZ3", failures=3)

    state = replay_ledger(ledger.path)
    assert state.records == 7
    assert state.torn_lines == 0 and state.invalid_lines == 0
    assert state.status("c1") == "done"
    assert state.status("c2") == "failed"
    assert state.status("c3") is None
    assert state.by_status("done") == ["c1"]
    assert state.record("c1")["digest"] == "deadbeef"
    assert state.record("c2")["error_type"] == "RuntimeError"
    (event,) = state.events
    assert event["kind"] == "breaker_open" and event["subject"] == "SZ3"


def test_replay_missing_and_empty(tmp_path):
    assert replay_ledger(tmp_path / "none.jsonl").records == 0
    (tmp_path / "empty.jsonl").write_bytes(b"")
    assert replay_ledger(tmp_path / "empty.jsonl").records == 0


def test_replay_skips_byte_truncated_tail(tmp_path):
    """Regression: a crash mid-append leaves half a record with no
    newline; replay must keep every complete record and count the tear."""
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path, fsync=False)
    ledger.planned("c1")
    ledger.done("c1", "cells/c1.json", "beef", 1)
    whole = path.read_bytes()
    extra = json.dumps({"rec": "cell", "cell": "c2",
                        "status": "running", "attempt": 1}).encode()
    path.write_bytes(whole + extra[: len(extra) // 2])  # torn mid-record

    with pytest.warns(RuntimeWarning, match="torn final ledger line"):
        state = replay_ledger(path)
    assert state.torn_lines == 1
    assert state.invalid_lines == 0
    assert state.records == 2
    assert state.status("c1") == "done"
    assert state.status("c2") is None  # the torn record never happened


def test_replay_counts_invalid_interior_line(tmp_path):
    path = tmp_path / "ledger.jsonl"
    path.write_text('{"rec": "cell", "cell": "c1", "status": "planned"}\n'
                    "garbage\n"
                    '{"rec": "event", "kind": "resume"}\n')
    with pytest.warns(RuntimeWarning, match="invalid ledger line"):
        state = replay_ledger(path)
    assert state.invalid_lines == 1 and state.torn_lines == 0
    assert state.records == 2


def test_replay_rejects_unknown_status(tmp_path):
    path = tmp_path / "ledger.jsonl"
    path.write_text('{"rec": "cell", "cell": "c1", "status": "pondering"}\n')
    with pytest.warns(RuntimeWarning, match="malformed cell record"):
        state = replay_ledger(path)
    assert state.records == 0 and state.invalid_lines == 1


def test_writer_heals_torn_tail_before_appending(tmp_path):
    """A new appender truncates the torn tail so the next append cannot
    fuse with the half-written record into one unparseable line."""
    path = tmp_path / "ledger.jsonl"
    first = RunLedger(path, fsync=False)
    first.planned("c1")
    path.write_bytes(path.read_bytes() + b'{"rec": "cell", "cel')

    second = RunLedger(path, fsync=False)
    assert second.healed_bytes == len(b'{"rec": "cell", "cel')
    second.running("c1", 1)
    state = replay_ledger(path)
    assert state.torn_lines == 0 and state.invalid_lines == 0
    assert state.status("c1") == "running"


def test_verified_done_checks_artifact_digest(tmp_path):
    blob = b'{"bit_rate": 2.5}\n'
    artifact = tmp_path / "cells" / "c1.json"
    artifact.parent.mkdir()
    atomic_write(artifact, blob, fsync=False)

    ledger = RunLedger(tmp_path / "ledger.jsonl", fsync=False)
    ledger.done("c1", "cells/c1.json", blake2b_bytes(blob), 1)
    state = replay_ledger(ledger.path)
    assert state.verified_done("c1", tmp_path)

    artifact.write_bytes(b"tampered")
    assert not replay_ledger(ledger.path).verified_done("c1", tmp_path)
    artifact.unlink()
    assert not replay_ledger(ledger.path).verified_done("c1", tmp_path)
    assert not state.verified_done("c2", tmp_path)  # never recorded


def test_blake2b_file_missing_is_none(tmp_path):
    assert blake2b_file(tmp_path / "nope") is None
    (tmp_path / "a").write_bytes(b"xyz")
    assert blake2b_file(tmp_path / "a") == blake2b_bytes(b"xyz")


def test_ledger_is_wall_clock_free(tmp_path):
    """The determinism contract: two identical record sequences yield
    byte-identical journals (no timestamps, pids, or host state)."""
    for sub in ("a", "b"):
        ledger = RunLedger(tmp_path / sub / "ledger.jsonl", fsync=False)
        ledger.planned("c1", meta={"dataset": "SSH"})
        ledger.running("c1", 1)
        ledger.done("c1", "cells/c1.json", "beef", 1)
    assert (tmp_path / "a/ledger.jsonl").read_bytes() == \
        (tmp_path / "b/ledger.jsonl").read_bytes()
