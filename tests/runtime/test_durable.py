"""repro.runtime.durable: atomic commits and torn-tail healing.

The soft-kill tests observe the exact on-disk state a power cut at each
stage leaves behind — the same states the subprocess SIGKILL test in
``tests/test_sweep_resume.py`` produces with hard kills.
"""

import os

import pytest

from repro.runtime import (
    InjectedKillError,
    KillPoint,
    atomic_write,
    fsync_dir,
    heal_jsonl_tail,
)


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "a.bin"
        assert atomic_write(path, b"payload") == path
        assert path.read_bytes() == b"payload"

    def test_writes_str_as_utf8(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write(path, "héllo")
        assert path.read_bytes() == "héllo".encode("utf-8")

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("old")
        atomic_write(path, "new")
        assert path.read_text() == "new"

    def test_no_fsync_mode(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write(path, "data", fsync=False)
        assert path.read_text() == "data"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write(tmp_path / "a.txt", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]

    def test_fsync_dir_tolerates_missing(self, tmp_path):
        fsync_dir(tmp_path / "definitely-not-here")  # must not raise


class TestKillPoints:
    """Soft kills: the destination state at each crash stage."""

    def test_invalid_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown kill point"):
            KillPoint(at="before_lunch")

    def test_mid_write_preserves_old_contents(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("old")
        with pytest.raises(InjectedKillError) as exc:
            atomic_write(path, "new contents", kill=KillPoint("mid_write", hard=False))
        assert exc.value.at == "mid_write"
        assert path.read_text() == "old"
        (tmp,) = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert tmp.read_bytes() == b"new contents"[: len(b"new contents") // 2]

    def test_pre_commit_preserves_old_contents(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("old")
        with pytest.raises(InjectedKillError):
            atomic_write(path, "new", kill=KillPoint("pre_commit", hard=False))
        assert path.read_text() == "old"
        (tmp,) = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert tmp.read_text() == "new"  # temp complete, rename never ran

    def test_post_commit_leaves_new_contents(self, tmp_path):
        path = tmp_path / "a.txt"
        path.write_text("old")
        with pytest.raises(InjectedKillError):
            atomic_write(path, "new", kill=KillPoint("post_commit", hard=False))
        assert path.read_text() == "new"  # renamed before the kill

    def test_crashed_write_is_retryable(self, tmp_path):
        """The core idempotence contract: redoing the write after any
        crash stage converges to the new contents, no residue."""
        path = tmp_path / "a.txt"
        path.write_text("old")
        for stage in ("mid_write", "pre_commit", "post_commit"):
            with pytest.raises(InjectedKillError):
                atomic_write(path, "new", kill=KillPoint(stage, hard=False))
            atomic_write(path, "new")
            assert path.read_text() == "new"
            assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]
            path.write_text("old")


class TestHealJsonlTail:
    def test_missing_file(self, tmp_path):
        assert heal_jsonl_tail(tmp_path / "none.jsonl") == 0

    def test_empty_file(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_bytes(b"")
        assert heal_jsonl_tail(path) == 0

    def test_clean_file_untouched(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_bytes(b'{"a": 1}\n{"b": 2}\n')
        assert heal_jsonl_tail(path) == 0
        assert path.read_bytes() == b'{"a": 1}\n{"b": 2}\n'

    def test_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_bytes(b'{"a": 1}\n{"b": 2}\n{"c":')
        assert heal_jsonl_tail(path) == len(b'{"c":')
        assert path.read_bytes() == b'{"a": 1}\n{"b": 2}\n'

    def test_torn_only_line_truncates_to_empty(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_bytes(b'{"never finished"')
        assert heal_jsonl_tail(path) == len(b'{"never finished"')
        assert path.read_bytes() == b""

    def test_long_torn_tail_spanning_blocks(self, tmp_path):
        """The backward newline scan must cross its 4 KiB block size."""
        path = tmp_path / "a.jsonl"
        torn = b'{"x": "' + b"y" * 10_000
        path.write_bytes(b'{"a": 1}\n' + torn)
        assert heal_jsonl_tail(path) == len(torn)
        assert path.read_bytes() == b'{"a": 1}\n'


class TestUnwritableDestination:
    """A failing write must surface the OS error and leave no debris."""

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root bypasses directory permission bits")
    def test_read_only_dir_raises_and_leaves_no_temp(self, tmp_path):
        dest_dir = tmp_path / "sealed"
        dest_dir.mkdir()
        (dest_dir / "kept.txt").write_text("old")
        dest_dir.chmod(0o555)
        try:
            with pytest.raises(PermissionError):
                atomic_write(dest_dir / "kept.txt", "new")
            assert (dest_dir / "kept.txt").read_text() == "old"
            assert [p.name for p in dest_dir.iterdir()] == ["kept.txt"]
        finally:
            dest_dir.chmod(0o755)

    def test_parent_is_a_file_raises(self, tmp_path):
        not_a_dir = tmp_path / "file.txt"
        not_a_dir.write_text("x")
        with pytest.raises(OSError):
            atomic_write(not_a_dir / "child.txt", "data")
        assert not_a_dir.read_text() == "x"

    def test_missing_parent_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            atomic_write(tmp_path / "nope" / "f.txt", b"data")
