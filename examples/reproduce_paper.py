"""Regenerate every table and figure of the paper's evaluation section.

Runs all experiment harnesses in sequence and prints their tables; this is
the script that produced the measurements recorded in EXPERIMENTS.md.

Run:  python examples/reproduce_paper.py            # full (several minutes)
      python examples/reproduce_paper.py --quick    # reduced sweeps
"""

import importlib
import sys
import time

from repro.experiments import ALL_EXPERIMENTS

QUICK_OVERRIDES = {
    "fig10_rate_distortion": {"datasets": ("SSH", "CESM-T"), "rel_ebs": (1e-2, 1e-3)},
    "fig11_sampling_time": {"rates": (0.01, 0.1)},
    "fig12_sampling_cr": {"rates": (0.1, 0.01), "max_layouts": 4},
    "table4_sampling_pipeline": {"rates": (1.0, 0.01)},
    "fig13_transfer": {"core_counts": (256, 1024)},
}


def main(quick: bool = False) -> None:
    t_start = time.perf_counter()
    for module_name in ALL_EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{module_name}")
        kwargs = QUICK_OVERRIDES.get(module_name, {}) if quick else {}
        t0 = time.perf_counter()
        result = module.run(**kwargs)
        result.print()
        print(f"   [{time.perf_counter() - t0:.1f}s]\n")
    print(f"total: {time.perf_counter() - t_start:.1f}s")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
