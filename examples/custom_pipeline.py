"""Hand-built pipelines: using CliZ's knobs without the auto-tuner.

Shows the individual optimizations (§V/§VI) applied one at a time on the
SSH dataset — the programmatic counterpart of the paper's Table V — and
how to inspect a compressed container.

Run:  python examples/custom_pipeline.py
"""

import numpy as np

from repro import CliZ, Layout, PipelineConfig
from repro.core import detect_period
from repro.datasets import load
from repro.encoding.container import Container
from repro.metrics import compression_ratio


def main() -> None:
    field = load("SSH")
    data, mask = field.data, field.mask
    eb = 1e-3 * float(data[mask].max() - data[mask].min())

    period = detect_period(data.astype(np.float64), field.time_axis, mask=mask)
    print(f"SSH: shape={field.shape}, valid={field.valid_fraction:.0%}, "
          f"detected period={period}\n")

    steps = [
        ("baseline (identity layout, no extras)",
         PipelineConfig(Layout.identity(3))),
        ("+ mask-aware prediction",  # mask is on by default; baseline above too
         PipelineConfig(Layout.identity(3))),
        ("+ dimension permutation/fusion (time first, fuse lat&lon)",
         PipelineConfig(Layout((2, 0, 1), (1, 2)))),
        ("+ periodic template/residual split",
         PipelineConfig(Layout((2, 0, 1), (1, 2)), periodic=True, time_axis=2)),
        ("+ quantization-bin classification",
         PipelineConfig(Layout((2, 0, 1), (1, 2)), periodic=True, time_axis=2,
                        binclass=True, horiz_axes=(0, 1))),
    ]
    # demonstrate what ignoring the mask costs (Table V's "Mask: No" row)
    steps.insert(1, ("baseline but ignoring the mask",
                     PipelineConfig(Layout.identity(3), use_mask=False)))

    for label, cfg in steps:
        blob = CliZ(cfg).compress(data, abs_eb=eb, mask=mask)
        print(f"{compression_ratio(data.size, len(blob)):8.2f}x  {label}")

    # inspect the last container
    container = Container.from_bytes(blob)
    print(f"\ncontainer codec={container.codec!r}, period={container.header['period']}")
    for name in container.section_names:
        print(f"  section {name:18s} {len(container.section(name)):8d} bytes")


if __name__ == "__main__":
    main()
