"""Progressive decoding and alternative entropy stages.

Two library features beyond the paper's core pipeline:

* SPERR's SPECK stream is *embedded*: any prefix is a valid coarse
  reconstruction, so a browser can render previews long before the full
  download (``decompress(blob, preview_planes=k)``).
* The quantization-code stream can be entropy-coded with the range coder
  instead of Huffman, charging fractional bits on heavily peaked streams.

Run:  python examples/progressive_preview.py
"""

import numpy as np

from repro.baselines import SPERR
from repro.datasets import load
from repro.encoding import RangeModel, rc_decode, rc_encode
from repro.metrics import psnr


def main() -> None:
    field = load("Hurricane-T", shape=(12, 80, 80))
    data = field.data

    print("— SPERR progressive preview —")
    sperr = SPERR()
    blob = sperr.compress(data, rel_eb=1e-4)
    print(f"stream: {len(blob)} bytes "
          f"(CR {data.size * 4 / len(blob):.1f}x)")
    for planes in (1, 2, 4, 8, 12, None):
        recon = sperr.decompress(blob, preview_planes=planes)
        label = f"{planes} planes" if planes else "full"
        print(f"  {label:10s} PSNR {psnr(data, recon):7.2f} dB")

    print("\n— range coder vs Huffman on a peaked code stream —")
    rng = np.random.default_rng(0)
    n = 200_000
    codes = np.where(rng.random(n) < 0.92, 0, rng.integers(1, 65, n))
    model = RangeModel(np.bincount(codes, minlength=65))
    rc_blob = rc_encode(codes, model)
    assert (rc_decode(rc_blob, model, n) == codes).all()

    from repro.encoding import BitWriter, HuffmanCode
    hc = HuffmanCode.from_symbols(codes, 65)
    w = BitWriter()
    hc.encode(codes, w)
    p = np.bincount(codes) / n
    p = p[p > 0]
    print(f"  entropy     : {-(p * np.log2(p)).sum():.3f} bits/symbol")
    print(f"  Huffman     : {w.bit_length / n:.3f} bits/symbol")
    print(f"  range coder : {len(rc_blob) * 8 / n:.3f} bits/symbol")


if __name__ == "__main__":
    main()
