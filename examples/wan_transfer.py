"""WAN transfer scenario: why compression ratio wins the end-to-end race.

Reproduces the mechanism behind the paper's Fig. 13 at example scale:
compress the SSH dataset with CliZ / SZ3 / ZFP tuned to the same PSNR,
then simulate shipping one file per core across a shared WAN link.

Run:  python examples/wan_transfer.py
"""

from repro.experiments.fig13_transfer import run


def main() -> None:
    result = run(dataset="SSH", target_psnr=90.0, core_counts=(256, 512, 1024))
    result.print()


if __name__ == "__main__":
    main()
