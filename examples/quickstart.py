"""Quickstart: compress a climate field with CliZ and verify the bound.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CliZ, decompress
from repro.metrics import compression_ratio, psnr


def main() -> None:
    # A synthetic sea-surface-temperature-like field: smooth in space with a
    # seasonal cycle along the last axis.
    rng = np.random.default_rng(7)
    lat = np.linspace(-np.pi / 2, np.pi / 2, 60)
    lon = np.linspace(0, 2 * np.pi, 90)
    t = np.arange(120)
    field = (
        20 * np.cos(lat)[:, None, None]
        + 3 * np.sin(2 * lon)[None, :, None]
        + 5 * np.sin(2 * np.pi * t / 12)[None, None, :]
        + 0.05 * rng.standard_normal((60, 90, 120))
    ).astype(np.float32)

    # Compress with a 1e-3 relative error bound (0.1% of the value range).
    blob = CliZ().compress(field, rel_eb=1e-3)
    recon = decompress(blob)

    eb_abs = 1e-3 * (field.max() - field.min())
    max_err = np.abs(recon.astype(np.float64) - field.astype(np.float64)).max()
    print(f"original size : {field.nbytes} bytes ({field.shape}, {field.dtype})")
    print(f"compressed    : {len(blob)} bytes")
    print(f"ratio         : {compression_ratio(field.size, len(blob)):.1f}x (vs 32-bit floats)")
    print(f"PSNR          : {psnr(field, recon):.1f} dB")
    print(f"max |error|   : {max_err:.3g}  (bound {eb_abs:.3g})")
    assert max_err <= eb_abs
    print("error bound holds ✔")


if __name__ == "__main__":
    main()
