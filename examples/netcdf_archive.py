"""RCDF archive: the paper's NetCDF/HDF5 future-work integration (§VIII).

Builds a multi-variable climate archive file with per-variable codecs and
error bounds, CF ``missing_value`` masks, lossless coordinate variables —
then reads it back lazily and assesses every variable.

Run:  python examples/netcdf_archive.py
"""

import os
import tempfile

import numpy as np

from repro.datasets import load
from repro.io import RcdfDataset, read_rcdf, write_rcdf
from repro.metrics import assess


def main() -> None:
    ssh = load("SSH", shape=(32, 28, 120))
    hurricane = load("Hurricane-T", shape=(15, 60, 60))

    ds = RcdfDataset(attrs={"title": "repro demo archive",
                            "source": "synthetic CESM (repro.datasets)"})
    for name, size in zip(("lat", "lon", "time"), ssh.shape):
        ds.create_dimension(name, size)
    for name, size in zip(("level", "y", "x"), hurricane.shape):
        ds.create_dimension(name, size)

    # coordinate variables stay lossless
    ds.add_variable("lat", ("lat",), np.linspace(-80, 80, ssh.shape[0]),
                    attrs={"units": "degrees_north"})
    ds.add_variable("time", ("time",), np.arange(ssh.shape[2], dtype=np.float64),
                    attrs={"units": "months since 2000-01"})
    # data variables choose their own codec + bound
    ds.add_variable("ssh", ("lat", "lon", "time"), ssh.data,
                    attrs={"units": "m", "missing_value": float(ssh.fill_value),
                           "axes": "lat,lon,time"},
                    codec="cliz", rel_eb=1e-3)
    ds.add_variable("hurricane_t", ("level", "y", "x"), hurricane.data,
                    attrs={"units": "K"}, codec="sz3", rel_eb=1e-4)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "archive.rcdf")
        write_rcdf(path, ds)
        raw_bytes = ssh.data.nbytes + hurricane.data.nbytes
        print(f"archive: {os.path.getsize(path)} bytes "
              f"(raw variables: {raw_bytes} bytes, "
              f"{raw_bytes / os.path.getsize(path):.1f}x smaller)\n")

        back = read_rcdf(path)
        print(f"dimensions: {back.dimensions}")
        for name in back.variable_names:
            var = back.get(name)
            print(f"\nvariable {name!r} dims={var.dims} codec={var.codec}")
            if name == "ssh":
                report = assess(ssh.data, var.data, ssh.mask)
                print("\n".join("  " + line for line in report.lines()[:4]))
            elif name == "hurricane_t":
                report = assess(hurricane.data, var.data)
                print("\n".join("  " + line for line in report.lines()[:4]))


if __name__ == "__main__":
    main()
