"""Archive scenario: auto-tune once per climate model, compress everything.

The paper's intended workflow (§IV): run the offline auto-tuner on one
field/snapshot of a climate model, then apply the tuned pipeline to every
dataset of that model. This example tunes on each of the six synthetic
datasets, compresses with CliZ and the four baselines, and prints the
comparison table.

Run:  python examples/climate_archive.py [--quick]
"""

import sys
import time

from repro import AutoTuner, CliZ, QoZ, SPERR, SZ3, ZFP, decompress
from repro.datasets import DATASETS, load
from repro.metrics import compression_ratio, psnr


def main(quick: bool = False) -> None:
    names = ["SSH", "Tsfc"] if quick else list(DATASETS)
    rel_eb = 1e-3
    print(f"{'dataset':12s} {'codec':6s} {'CR':>8s} {'PSNR dB':>8s} {'time s':>7s}")
    for name in names:
        field = load(name)
        vals = field.data[field.mask] if field.mask is not None else field.data
        eb = rel_eb * float(vals.max() - vals.min())

        t0 = time.perf_counter()
        tuner = AutoTuner(sampling_rate=0.01, **field.tuner_kwargs())
        tuned = tuner.tune(field.data, abs_eb=eb, mask=field.mask)
        print(f"# {name}: tuned in {time.perf_counter() - t0:.1f}s "
              f"-> {tuned.best.describe()}")

        codecs = [("CliZ", CliZ(tuned.best), True), ("SZ3", SZ3(), False),
                  ("QoZ", QoZ(), False), ("ZFP", ZFP(), False), ("SPERR", SPERR(), False)]
        for label, comp, pass_mask in codecs:
            kwargs = {"abs_eb": eb}
            if pass_mask and field.mask is not None:
                kwargs["mask"] = field.mask
            t0 = time.perf_counter()
            blob = comp.compress(field.data, **kwargs)
            elapsed = time.perf_counter() - t0
            recon = decompress(blob)
            print(f"{name:12s} {label:6s} "
                  f"{compression_ratio(field.data.size, len(blob)):8.2f} "
                  f"{psnr(field.data, recon, field.mask):8.2f} {elapsed:7.2f}")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
