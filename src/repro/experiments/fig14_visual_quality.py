"""Fig. 14 — reconstruction quality at a fixed compression ratio (~25x).

The paper shows that at equal compression ratio CliZ's reconstruction is
visually indistinguishable from the source while SZ3 and QoZ distort.
Without a display, we quantify "visual quality" with the metrics the
community uses for exactly that purpose: SSIM (the perceptual index) and
PSNR at the matched ratio, plus the worst-window SSIM (visible artifacts
live in the worst window, not the average).
"""

from __future__ import annotations

import numpy as np

from repro import CliZ
from repro.datasets import load
from repro.experiments.common import (
    BASELINES,
    ExperimentResult,
    measure_point,
    rel_eb_to_abs,
    tuned_config,
)

__all__ = ["run", "match_ratio", "main"]


def match_ratio(make_compressor, fieldobj, target_cr: float,
                pass_mask: bool, iters: int = 9):
    """Bisection on the error bound to reach a target compression ratio.

    Mask-unaware compressors may *saturate* below the target: the fill
    regions cost a floor number of bits no matter how coarse the bound.
    The returned point is then their best achievable ratio (the comparison
    only gets more favourable to them).
    """
    lo, hi = rel_eb_to_abs(fieldobj, 1e-7), rel_eb_to_abs(fieldobj, 10.0)
    best = None
    for _ in range(iters):
        mid = float(np.sqrt(lo * hi))
        point, _ = measure_point(make_compressor(mid), fieldobj, mid, pass_mask=pass_mask)
        best = point
        if point.compression_ratio < target_cr:
            lo = mid  # need a coarser bound
        else:
            hi = mid
    return best


def run(dataset: str = "SSH", target_cr: float = 25.0) -> ExperimentResult:
    fieldobj = load(dataset)
    tune = tuned_config(fieldobj)
    result = ExperimentResult(
        "Fig. 14", f"Reconstruction quality at matched CR ~{target_cr} ({dataset})"
    )
    entries = [("CliZ", lambda eb: CliZ(tune.best), True)]
    for name in ("SZ3", "QoZ"):
        entries.append((name, lambda eb, cls=BASELINES[name]: cls(), False))
    for name, factory, pass_mask in entries:
        point = match_ratio(factory, fieldobj, target_cr, pass_mask)
        result.rows.append({
            "Compressor": name,
            "CR": point.compression_ratio,
            "PSNR dB": point.psnr,
            "SSIM": point.ssim,
        })
    cliz = result.rows[0]
    others = result.rows[1:]
    best_other = max(others, key=lambda r: r["SSIM"])
    result.notes.append(
        f"at matched CR, CliZ SSIM {cliz['SSIM']:.5f} vs best baseline "
        f"{best_other['Compressor']} {best_other['SSIM']:.5f} "
        "(paper: CliZ visually lossless at CR 25, SZ3/QoZ visibly distorted); "
        "baselines below the target CR saturated on the masked fill regions "
        "and are shown at their best achievable ratio"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
