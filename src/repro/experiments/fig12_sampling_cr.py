"""Fig. 12 — estimated compression ratios per pipeline vs sampling rate.

The paper sorts all pipelines by their true (full-data) compression ratio
and shows that sampled estimates preserve that ordering down to ~0.1%
sampling. This harness ranks a subset of pipelines by their full-data CR on
SSH, then reports each sampling rate's estimate for those pipelines and the
rank correlation (Spearman) between estimated and true orderings.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro import AutoTuner, CliZ
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs
from repro.metrics import compression_ratio

__all__ = ["run", "main"]

DEFAULT_RATES = (1.0, 0.1, 0.01, 0.001)


def run(dataset: str = "SSH", rates=DEFAULT_RATES, rel_eb: float = 1e-3,
        max_layouts: int = 6) -> ExperimentResult:
    fieldobj = load(dataset)
    data, mask = fieldobj.data, fieldobj.mask
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    tuner = AutoTuner(sampling_rate=0.01, max_layouts=max_layouts,
                      **fieldobj.tuner_kwargs())

    # ground truth: full-data CR per candidate pipeline
    from repro.core.periodicity import detect_period
    period = detect_period(np.asarray(data, dtype=np.float64),
                           fieldobj.time_axis, mask=mask)
    candidates = tuner.candidate_pipelines(data.ndim, period)
    true_cr = []
    for cfg in candidates:
        blob = CliZ(cfg).compress(data, abs_eb=eb, mask=mask)
        true_cr.append(compression_ratio(data.size, len(blob)))
    order = np.argsort(true_cr)[::-1]

    result = ExperimentResult(
        "Fig. 12", f"Estimated CR per pipeline vs sampling rate ({dataset}, "
        f"{len(candidates)} pipelines, sorted by full-data CR)"
    )
    for rate in rates:
        t = AutoTuner(sampling_rate=rate, max_layouts=max_layouts,
                      **fieldobj.tuner_kwargs())
        res = t.tune(data, abs_eb=eb, mask=mask)
        est = np.array([tr.est_ratio for tr in res.trials])
        rho = float(stats.spearmanr(est, np.array(true_cr)).statistic)
        best_est_idx = int(np.argmax(est))
        achieved = true_cr[best_est_idx]
        result.rows.append({
            "Sampling rate": rate,
            "Spearman rho vs true": rho,
            "Est-best pipeline": res.trials[best_est_idx].name,
            "Its true CR": achieved,
            "True optimum CR": float(max(true_cr)),
            "Loss %": 100 * (1 - achieved / max(true_cr)),
        })
    top = [candidates[i].describe() for i in order[:3]]
    result.notes.append("true top-3 pipelines: " + " | ".join(top))
    result.notes.append("paper: ordering is preserved for rates >= 0.1% (Fig. 12)")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
