"""Fig. 13 — compression + Globus transfer time at 256/512/1024 cores.

The paper tunes CliZ, SZ3 and ZFP to the same PSNR (~117 dB), compresses
one file per core, and transfers the results between two sites: similar
compression times, but CliZ's smaller files cut total time by 32-38%.

This harness (a) searches each compressor's error bound for the target
PSNR on the SSH dataset, (b) measures the real compressed sizes, and (c)
replays the paper's scenario on the WAN simulator with the
paper-calibrated per-core compression speeds.
"""

from __future__ import annotations

import numpy as np

from repro import CliZ
from repro.datasets import load
from repro.experiments.common import (
    BASELINES,
    ExperimentResult,
    measure_point,
    rel_eb_to_abs,
    tuned_config,
)
from repro.transfer import WanLink, simulate_globus

__all__ = ["run", "match_psnr", "main"]


def match_psnr(make_compressor, fieldobj, target_psnr: float,
               pass_mask: bool, iters: int = 8) -> tuple[float, int, float]:
    """Bisection on the (log) error bound to hit ``target_psnr``.

    Returns (abs_eb, compressed_bytes, achieved_psnr).
    """
    lo, hi = rel_eb_to_abs(fieldobj, 1e-7), rel_eb_to_abs(fieldobj, 1e-1)
    best = None
    for _ in range(iters):
        mid = float(np.sqrt(lo * hi))
        point, blob = measure_point(make_compressor(mid), fieldobj, mid, pass_mask=pass_mask)
        best = (mid, len(blob), point.psnr)
        if point.psnr > target_psnr:
            lo = mid  # too precise: relax the bound
        else:
            hi = mid
    return best


def run(dataset: str = "SSH", target_psnr: float = 90.0,
        core_counts=(256, 512, 1024),
        bandwidth_gbps: float = 8.0) -> ExperimentResult:
    fieldobj = load(dataset)
    link = WanLink(bandwidth=bandwidth_gbps * 1e9 / 8, latency=0.5)

    # per-codec compressed size at matched PSNR
    sizes: dict[str, int] = {}
    achieved: dict[str, float] = {}
    tune = tuned_config(fieldobj)

    def cliz_factory(eb):
        return CliZ(tune.best)

    eb, size, p = match_psnr(cliz_factory, fieldobj, target_psnr, pass_mask=True)
    sizes["cliz"], achieved["cliz"] = size, p
    for name, cls in (("sz3", BASELINES["SZ3"]), ("zfp", BASELINES["ZFP"])):
        eb, size, p = match_psnr(lambda _eb: cls(), fieldobj, target_psnr, pass_mask=False)
        sizes[name], achieved[name] = size, p

    # scale the per-file workload up to the paper's per-core volume
    per_core_uncompressed = 2 * 1024 ** 3  # 2 GiB of source data per core
    scale = per_core_uncompressed / (fieldobj.data.size * 4)

    result = ExperimentResult(
        "Fig. 13", f"Compression and Globus transfer time ({dataset}, PSNR ~{target_psnr} dB)"
    )
    totals: dict[tuple[str, int], float] = {}
    for cores in core_counts:
        for codec in ("cliz", "sz3", "zfp"):
            file_bytes = int(sizes[codec] * scale)
            res = simulate_globus(codec, n_cores=cores,
                                  uncompressed_bytes=per_core_uncompressed,
                                  compressed_bytes=[file_bytes] * cores,
                                  link=link)
            totals[(codec, cores)] = res.total_time
            result.rows.append({
                "Cores": cores,
                "Codec": codec.upper(),
                "PSNR dB": achieved[codec],
                "File MB": file_bytes / 1e6,
                "Compress s": res.compress_time,
                "Transfer s": res.total_time - res.compress_time,
                "Total s": res.total_time,
            })
    for cores in core_counts:
        vs_sz3 = 100 * (1 - totals[("cliz", cores)] / totals[("sz3", cores)])
        vs_zfp = 100 * (1 - totals[("cliz", cores)] / totals[("zfp", cores)])
        result.notes.append(
            f"{cores} cores: CliZ total time reduction {vs_sz3:.0f}% vs SZ3, {vs_zfp:.0f}% vs ZFP "
            "(paper: 32-38% overall)"
        )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
