"""Fig. 4 / §V-B — diverse smoothness across dimensions.

The paper motivates dimension permutation with the atmosphere temperature
dataset: mean variation per step is 4.425 along height but 0.053 / 0.017
along latitude/longitude, and center slices look flat in-plane but banded
across height. This harness prints the per-dimension mean |difference| for
every dataset and the ratio between the roughest and smoothest axis.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import DATASETS, load
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def run(datasets=tuple(DATASETS)) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 4", "Mean per-step variation along each dimension"
    )
    for name in datasets:
        fieldobj = load(name)
        data = fieldobj.data.astype(np.float64)
        mask = fieldobj.mask
        variations = []
        for axis in range(data.ndim):
            diff = np.abs(np.diff(data, axis=axis))
            if mask is not None:
                a = tuple(slice(0, -1) if ax == axis else slice(None) for ax in range(data.ndim))
                b = tuple(slice(1, None) if ax == axis else slice(None) for ax in range(data.ndim))
                sel = mask[a] & mask[b]
                diff = diff[sel]
            variations.append(float(diff.mean()) if diff.size else 0.0)
        nz = [v for v in variations if v > 0]
        rough_axis = fieldobj.axes[int(np.argmax(variations))]
        result.rows.append({
            "Dataset": name,
            "Per-axis |Δ|": "  ".join(
                f"{ax}={v:.4g}" for ax, v in zip(fieldobj.axes, variations)
            ),
            "Roughest axis": rough_axis,
            "Rough/smooth": max(nz) / min(nz) if len(nz) > 1 else 1.0,
        })
    result.notes.append(
        "paper §V-B (CESM-T): height 4.425 vs lat 0.053 / lon 0.017 — "
        "the smoothest dimension should receive the most predictions"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
