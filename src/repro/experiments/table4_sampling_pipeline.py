"""Table IV — estimated optimal pipeline and CR loss per sampling rate.

For each sampling rate the tuner's chosen pipeline is applied to the *full*
dataset and its actual compression ratio compared against the rate-1.0
(exhaustive) choice — reproducing the paper's table where 1% sampling loses
0.7% CR and 0.001% loses 17.5%.
"""

from __future__ import annotations

from repro import AutoTuner, CliZ
from repro.core.dims import layout_name
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs
from repro.metrics import compression_ratio

__all__ = ["run", "main"]

DEFAULT_RATES = (1.0, 0.1, 0.01, 0.001)


def run(dataset: str = "SSH", rates=DEFAULT_RATES,
        rel_eb: float = 1e-3) -> ExperimentResult:
    fieldobj = load(dataset)
    data, mask = fieldobj.data, fieldobj.mask
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    result = ExperimentResult(
        "Table IV", f"Estimated optimal pipeline and CR loss vs sampling rate ({dataset})"
    )
    ratios = {}
    for rate in rates:
        tuner = AutoTuner(sampling_rate=rate, **fieldobj.tuner_kwargs())
        res = tuner.tune(data, abs_eb=eb, mask=mask)
        cfg = res.best
        blob = CliZ(cfg).compress(data, abs_eb=eb, mask=mask)
        cr = compression_ratio(data.size, len(blob))
        ratios[rate] = cr
        result.rows.append({
            "Sampling rate": f"{100 * rate:g}%",
            "Periodicity": res.period if cfg.periodic else "No",
            "Classification": "Yes" if cfg.binclass else "No",
            "Permutation": "".join(map(str, cfg.layout.perm)),
            "Fusion": layout_name(cfg.layout).split("fuse")[-1].strip() if "fuse" in layout_name(cfg.layout) else "No",
            "Fitting": cfg.fitting.capitalize(),
            "Compression Ratio": cr,
            "Loss %": 0.0,  # filled below
        })
    reference = ratios[max(rates)]
    for row, rate in zip(result.rows, rates):
        row["Loss %"] = 100 * (1 - ratios[rate] / reference)
    result.notes.append("paper Table IV: losses 0% / 0.2% / 0.7% / 3.3% / 15.2% / 17.5% from 100% down to 0.001%")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
