"""Design-choice ablations beyond the paper's own tables.

DESIGN.md commits to ablation benches for the tunable constants the paper
fixes by argument rather than measurement:

* the λ dispersion threshold (Theorem 2 proves 0.4 is safe; we sweep it),
* the shift/dispersion group counts j, k (§VI-E argues j=k=1 suffices),
* the template/residual error-bound split for periodic data (the paper
  does not specify one; we default to a 0.1 template share — see DESIGN.md),
* the LZ post-processing stage (SZ3 heritage: Huffman alone vs Huffman+LZ).
"""

from __future__ import annotations

import numpy as np

from repro import CliZ
from repro.core.codec import encode_code_stream
from repro.datasets import load
from repro.encoding.bitstream import BitWriter
from repro.encoding.huffman import HuffmanCode
from repro.experiments.common import ExperimentResult, rel_eb_to_abs, tuned_config
from repro.metrics import compression_ratio

__all__ = [
    "lambda_sweep",
    "group_count_sweep",
    "template_ratio_sweep",
    "lz_stage_ablation",
    "entropy_stage_ablation",
]


def lambda_sweep(dataset: str = "CESM-T", rel_eb: float = 1e-3,
                 lambdas=(0.1, 0.25, 0.4, 0.55, 0.7)) -> ExperimentResult:
    """CR as a function of the dispersion threshold λ (paper fixes 0.4)."""
    fieldobj = load(dataset)
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    base = tuned_config(fieldobj, rel_eb=rel_eb).best.with_(
        binclass=True, horiz_axes=fieldobj.horiz_axes)
    result = ExperimentResult("Ablation λ", f"Bin-classification threshold sweep ({dataset})")
    for lam in lambdas:
        cfg = base.with_(binclass_lambda=lam)
        blob = CliZ(cfg).compress(fieldobj.data, abs_eb=eb, mask=fieldobj.mask)
        result.rows.append({"λ": lam, "CR": compression_ratio(fieldobj.data.size, len(blob))})
    result.notes.append("Theorem 2 derives λ=0.4 as the safe optimum")
    return result


def group_count_sweep(dataset: str = "CESM-T", rel_eb: float = 1e-3,
                      jks=((0, 1), (1, 0), (1, 1), (2, 1), (1, 2), (2, 2))) -> ExperimentResult:
    """CR for different shift ranges j and dispersion group counts k."""
    fieldobj = load(dataset)
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    base = tuned_config(fieldobj, rel_eb=rel_eb).best.with_(
        binclass=True, horiz_axes=fieldobj.horiz_axes)
    result = ExperimentResult("Ablation j/k", f"Shift/dispersion group sweep ({dataset})")
    for j, k in jks:
        cfg = base.with_(binclass_j=j, binclass_k=k)
        blob = CliZ(cfg).compress(fieldobj.data, abs_eb=eb, mask=fieldobj.mask)
        result.rows.append({
            "j": j, "k": k,
            "map bits/loc": float(np.log2((2 * j + 1) * (k + 1))),
            "CR": compression_ratio(fieldobj.data.size, len(blob)),
        })
    result.notes.append("paper §VI-E: 'compression ratio cannot be significantly increased when j or k > 1'")
    return result


def template_ratio_sweep(dataset: str = "SSH", rel_eb: float = 1e-3,
                         ratios=(0.05, 0.1, 0.2, 0.35, 0.5)) -> ExperimentResult:
    """CR as a function of the template/residual error-bound split."""
    fieldobj = load(dataset)
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    base = tuned_config(fieldobj, rel_eb=rel_eb).best.with_(
        periodic=True, time_axis=fieldobj.time_axis)
    result = ExperimentResult(
        "Ablation eb-split", f"Template share of the error bound ({dataset})"
    )
    for ratio in ratios:
        cfg = base.with_(template_eb_ratio=ratio)
        blob = CliZ(cfg).compress(fieldobj.data, abs_eb=eb, mask=fieldobj.mask)
        result.rows.append({
            "template share": ratio,
            "CR": compression_ratio(fieldobj.data.size, len(blob)),
        })
    result.notes.append("the paper leaves this split unspecified; DESIGN.md documents 0.1 as our default")
    return result


def lz_stage_ablation(dataset: str = "SSH", rel_eb: float = 1e-3) -> ExperimentResult:
    """Huffman-only vs Huffman+LZ on a real quantization-code stream."""
    from repro.core.dims import apply_layout
    from repro.prediction.interpolation import InterpSpec, interp_compress

    fieldobj = load(dataset)
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    cfg = tuned_config(fieldobj, rel_eb=rel_eb).best
    laid = apply_layout(fieldobj.data.astype(np.float64), cfg.layout)
    lmask = apply_layout(fieldobj.mask, cfg.layout) if fieldobj.mask is not None else None
    res = interp_compress(laid, eb, InterpSpec(order=tuple(range(laid.ndim)),
                                               fitting=cfg.fitting), mask=lmask)
    code = HuffmanCode.from_symbols(res.codes)
    writer = BitWriter()
    code.encode(res.codes, writer)
    huff_only = len(writer.getvalue()) + len(code.serialize())
    huff_lz = len(encode_code_stream(res.codes))
    result = ExperimentResult("Ablation LZ", f"Huffman vs Huffman+LZ on {dataset} code stream")
    result.rows.append({"Stage": "Huffman only", "Bytes": huff_only,
                        "Bits/code": 8 * huff_only / res.codes.size})
    result.rows.append({"Stage": "Huffman + LZ", "Bytes": huff_lz,
                        "Bits/code": 8 * huff_lz / res.codes.size})
    result.notes.append("SZ3 heritage: the LZ backend squeezes residual redundancy out of the Huffman stream")
    return result


def entropy_stage_ablation(dataset: str = "SSH", rel_eb: float = 1e-3) -> ExperimentResult:
    """Huffman vs range coding (± LZ) on a real quantization-code stream.

    The range coder charges fractional bits (the zero bin often carries
    p >> 0.5), so it wins before LZ; after LZ the gap narrows because LZ
    recovers much of Huffman's whole-bit loss on zero runs.
    """
    from repro.core.dims import apply_layout
    from repro.encoding.bitstream import BitWriter
    from repro.encoding.lz import lz_compress
    from repro.encoding.rangecoder import RangeModel, rc_encode
    from repro.prediction.interpolation import InterpSpec, interp_compress

    fieldobj = load(dataset)
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    cfg = tuned_config(fieldobj, rel_eb=rel_eb).best
    laid = apply_layout(fieldobj.data.astype(np.float64), cfg.layout)
    lmask = apply_layout(fieldobj.mask, cfg.layout) if fieldobj.mask is not None else None
    res = interp_compress(laid, eb, InterpSpec(order=tuple(range(laid.ndim)),
                                               fitting=cfg.fitting), mask=lmask)
    codes = res.codes
    code = HuffmanCode.from_symbols(codes)
    writer = BitWriter()
    code.encode(codes, writer)
    huff = writer.getvalue() + code.serialize()
    model = RangeModel(np.bincount(codes))
    ranged = rc_encode(codes, model) + model.serialize()
    rows = [
        ("Huffman", len(huff)),
        ("Huffman + LZ", len(lz_compress(bytes(huff)))),
        ("Range coder", len(ranged)),
        ("Range coder + LZ", len(lz_compress(bytes(ranged)))),
    ]
    result = ExperimentResult("Ablation entropy",
                              f"Entropy stage on the {dataset} code stream")
    for name, size in rows:
        result.rows.append({"Stage": name, "Bytes": size,
                            "Bits/code": 8 * size / codes.size})
    result.notes.append("Huffman+LZ is the paper's (SZ3's) pipeline; the range "
                        "coder is this library's optional alternative backend")
    return result
