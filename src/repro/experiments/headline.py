"""Headline claim — CliZ's same-PSNR CR advantage over the second best.

The abstract claims 20%-200% compression-ratio improvement over the
second-best compressor (SZ3, SPERR or QoZ) across climate datasets. This
harness measures, per dataset, the same-error-bound CR of every compressor
and the interpolated same-PSNR advantage.
"""

from __future__ import annotations

from repro import CliZ
from repro.datasets import DATASETS, load
from repro.experiments.common import (
    BASELINES,
    ExperimentResult,
    measure_point,
    rel_eb_to_abs,
    tuned_config,
)

__all__ = ["run", "main"]


def run(datasets=tuple(DATASETS), rel_eb: float = 1e-3,
        sampling_rate: float = 0.01) -> ExperimentResult:
    result = ExperimentResult(
        "Headline", f"CliZ vs second-best compressor at rel eb {rel_eb}"
    )
    for dataset in datasets:
        fieldobj = load(dataset)
        eb = rel_eb_to_abs(fieldobj, rel_eb)
        tune = tuned_config(fieldobj, rel_eb=rel_eb, sampling_rate=sampling_rate)
        points = {}
        point, _ = measure_point(CliZ(tune.best), fieldobj, eb, pass_mask=True)
        points["CliZ"] = point
        for name, cls in BASELINES.items():
            points[name], _ = measure_point(cls(), fieldobj, eb)
        second_name, second = max(
            ((n, p) for n, p in points.items() if n != "CliZ"),
            key=lambda kv: kv[1].compression_ratio,
        )
        cliz = points["CliZ"]
        result.rows.append({
            "Dataset": dataset,
            "CliZ CR": cliz.compression_ratio,
            "2nd best": second_name,
            "2nd CR": second.compression_ratio,
            "Advantage %": 100 * (cliz.compression_ratio / second.compression_ratio - 1),
            "CliZ PSNR": cliz.psnr,
            "2nd PSNR": second.psnr,
        })
    result.notes.append("paper abstract: 20%-200% over the second-best compressor")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
