"""§VII speed claims — compression/decompression throughput per codec.

The paper states CliZ's compression and decompression speeds are comparable
to SZ3 and ZFP and substantially faster than SPERR. Absolute Python numbers
are not comparable to the authors' C++, but the *relative* ordering should
hold on the shared substrate. This harness measures per-codec throughput
on one dataset.
"""

from __future__ import annotations

from repro import CliZ
from repro.datasets import load
from repro.experiments.common import BASELINES, ExperimentResult, rel_eb_to_abs, tuned_config
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(dataset: str = "CESM-T", rel_eb: float = 1e-3,
        repeats: int = 2) -> ExperimentResult:
    fieldobj = load(dataset)
    data = fieldobj.data
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    mb = data.size * 4 / 1e6

    entries = [("CliZ", CliZ(tuned_config(fieldobj, rel_eb=rel_eb).best), True)]
    entries += [(name, cls(), False) for name, cls in BASELINES.items()]

    result = ExperimentResult(
        "Speed", f"Compression/decompression throughput on {dataset} ({mb:.1f} MB eq.)"
    )
    for name, comp, pass_mask in entries:
        kwargs = {"abs_eb": eb}
        if pass_mask and fieldobj.mask is not None:
            kwargs["mask"] = fieldobj.mask
        tc, td = Timer(), Timer()
        blob = b""
        for _ in range(repeats):
            with tc:
                blob = comp.compress(data, **kwargs)
            with td:
                comp.decompress(blob)
        result.rows.append({
            "Codec": name,
            "Compress MB/s": mb * repeats / tc.elapsed,
            "Decompress MB/s": mb * repeats / td.elapsed,
            "CR": data.size * 4 / len(blob),
        })
    cliz = result.rows[0]["Compress MB/s"]
    sperr = [r for r in result.rows if r["Codec"] == "SPERR"][0]["Compress MB/s"]
    result.notes.append(
        f"CliZ/SPERR compression speed ratio: {cliz / sperr:.1f}x "
        "(paper: CliZ ~ SZ3 ~ ZFP, substantially faster than SPERR)"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
