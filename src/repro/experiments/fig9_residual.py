"""Fig. 9 — the residual after periodic extraction is far smoother.

The paper shows an SSH slice before and after removing the periodic
component: residuals are near zero and spatially continuous. This harness
quantifies that with amplitude and neighbour-difference (total-variation)
statistics of the original vs residual data over valid points.
"""

from __future__ import annotations

import numpy as np

from repro.core.periodicity import detect_period, split_periodic
from repro.datasets import load
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def _stats(arr: np.ndarray, mask: np.ndarray | None) -> dict:
    vals = arr[mask] if mask is not None else arr.ravel()
    out = {
        "std": float(vals.std()),
        "mean |v|": float(np.abs(vals - vals.mean()).mean()),
    }
    for axis in range(arr.ndim):
        diff = np.abs(np.diff(arr, axis=axis))
        if mask is not None:
            sl = tuple(slice(0, -1) if a == axis else slice(None) for a in range(arr.ndim))
            sl2 = tuple(slice(1, None) if a == axis else slice(None) for a in range(arr.ndim))
            sel = mask[sl] & mask[sl2]
            diff = diff[sel]
        out[f"TV axis{axis}"] = float(diff.mean()) if diff.size else 0.0
    return out


def run(dataset: str = "SSH") -> ExperimentResult:
    fieldobj = load(dataset)
    if fieldobj.time_axis is None:
        raise RuntimeError(f"{dataset} has no time axis; Fig. 9 needs a periodic field")
    data = fieldobj.data.astype(np.float64)
    mask = fieldobj.mask
    period = detect_period(data, fieldobj.time_axis, mask=mask)
    if period is None:
        raise RuntimeError(f"{dataset} shows no period; Fig. 9 needs a periodic field")
    template, residual = split_periodic(data, fieldobj.time_axis, period)

    result = ExperimentResult(
        "Fig. 9", f"Original vs residual smoothness on {dataset} (period {period})"
    )
    for label, arr in [("original", data), ("residual", residual)]:
        row = {"Data": label}
        row.update(_stats(arr, mask))
        result.rows.append(row)
    orig = result.rows[0]
    res = result.rows[1]
    gains = [orig[k] / res[k] for k in orig if k != "Data" and res[k] > 0]
    result.notes.append(
        f"residual variability is {min(gains):.1f}x-{max(gains):.1f}x smaller than the original "
        "(paper: residual slices are near zero / higher continuity)"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
