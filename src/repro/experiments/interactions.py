"""Strategy-interaction matrix — why single-toggle ablations mislead.

EXPERIMENTS.md's deviation D5 observes that the mask and periodicity
strategies overlap on SSH (a time-constant fill value is absorbed by the
periodic template almost for free). Table V toggles one strategy at a time
and therefore cannot show that; this harness runs *all* combinations of
{mask, periodicity, tuned layout} and reports the full interaction matrix.
"""

from __future__ import annotations

from itertools import product

from repro import CliZ
from repro.core.dims import Layout, layout_name
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs, tuned_config
from repro.metrics import compression_ratio

__all__ = ["run", "main"]


def run(dataset: str = "SSH", rel_eb: float = 1e-3) -> ExperimentResult:
    fieldobj = load(dataset)
    if fieldobj.mask is None or fieldobj.time_axis is None:
        raise RuntimeError("the interaction matrix needs a masked, periodic dataset")
    data, mask = fieldobj.data, fieldobj.mask
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    tuned = tuned_config(fieldobj, rel_eb=rel_eb).best
    identity = Layout.identity(data.ndim)

    result = ExperimentResult(
        "Interactions", f"CR for all (mask x periodicity x layout) combinations ({dataset})"
    )
    ratios: dict[tuple[bool, bool, bool], float] = {}
    for use_mask, periodic, tuned_layout in product((False, True), repeat=3):
        cfg = tuned.with_(
            use_mask=use_mask,
            periodic=periodic,
            time_axis=fieldobj.time_axis,
            layout=tuned.layout if tuned_layout else identity,
            binclass=False,
        )
        blob = CliZ(cfg).compress(data, abs_eb=eb, mask=mask)
        cr = compression_ratio(data.size, len(blob))
        ratios[(use_mask, periodic, tuned_layout)] = cr
        result.rows.append({
            "Mask": "Yes" if use_mask else "No",
            "Periodicity": "Yes" if periodic else "No",
            "Layout": layout_name(cfg.layout),
            "CR": cr,
        })
    # quantify the overlap the single-toggle ablation hides
    mask_alone = ratios[(True, False, False)] / ratios[(False, False, False)] - 1
    mask_given_periodic = ratios[(True, True, False)] / ratios[(False, True, False)] - 1
    result.notes.append(
        f"mask gain without periodicity: {100 * mask_alone:+.0f}%; "
        f"with periodicity already on: {100 * mask_given_periodic:+.0f}% "
        "(the periodic template absorbs time-constant fill values, so the two "
        "strategies overlap — see EXPERIMENTS.md D5)"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
