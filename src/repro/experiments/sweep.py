"""Kill-resumable experiment sweeps over {dataset x error bound x codec}.

The paper's evaluation (Tables 3-6, Figs 10-14) is one long grid of
independent measurements. This driver decomposes that grid into
idempotent **cells**, journals each cell's lifecycle in a crash-consistent
run ledger (:mod:`repro.runtime`), and commits every cell's artifact with
:func:`repro.runtime.atomic_write` — so a sweep killed at *any* instant
(SIGKILL included) resumes with ``--resume`` and recomputes only the work
that never durably finished.

Cell identity is a stable BLAKE2b digest of
``(kind, experiment, dataset, compressor, rel_eb, seed, config)``; the
same plan always yields the same ids, which is what lets a resumed
process recognise prior work. The commit-ordering invariant (artifact
committed atomically *before* the ``done`` ledger record) makes replay
conservative: a ``done`` record is proof the artifact exists.

Scheduling features:

* **Resume** — ``done`` cells whose artifact still matches its recorded
  digest are skipped; ``running`` orphans (the process died mid-cell) and
  ``failed`` cells are requeued; all replay decisions are counted in the
  report and in ``sweep.*`` metrics.
* **Retries** — per-cell retry budget with the same bounded exponential
  backoff as :class:`repro.parallel.RetryPolicy`.
* **Circuit breaker** — N *consecutive* failures of one codec opens that
  codec's breaker: its remaining cells are skipped (ledger
  ``breaker_open`` / ``breaker_skip`` events, ``sweep.breaker_open.*``
  gauge) instead of burning the rest of the budget on a broken codec.
* **Deadline** — ``--deadline S`` sheds the lowest-priority (latest in
  plan order) cells once the budget is spent, recording a ``shed`` event
  per cell, instead of dying mid-flight with nothing journaled.
* **Fault injection** — ``--inject-faults`` wires :mod:`repro.faults`
  in: ``crash``/``slow`` clauses apply per cell (serial semantics), and
  the ``kill`` clause crashes the process at a chosen stage of a cell's
  artifact commit — the drill the crash/resume CI job runs.

Run it standalone (``python -m repro.experiments.sweep``) or through the
CLI (``python -m repro sweep``)::

    python -m repro.experiments.sweep --out runs/s1 \\
        --datasets SSH --shape 12,10,48 --compressors SZ3,ZFP \\
        --rel-ebs 1e-2,1e-3 --deadline 600
    python -m repro.experiments.sweep --out runs/s1 --resume  # after a kill
"""

from __future__ import annotations

import argparse
import hashlib
import importlib
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import RunLedger, atomic_write, replay_ledger
from repro.runtime.ledger import LEDGER_FILENAME, blake2b_bytes

__all__ = [
    "SweepCell",
    "SweepReport",
    "CircuitBreaker",
    "plan_grid",
    "plan_experiments",
    "execute_cell",
    "run_sweep",
    "add_arguments",
    "run_from_args",
    "main",
    "DEFAULT_COMPRESSORS",
]

DEFAULT_COMPRESSORS = ("CliZ", "SZ3", "QoZ", "ZFP", "SPERR")


# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepCell:
    """One idempotent unit of sweep work.

    ``priority`` orders execution (lower runs first) and decides what a
    deadline sheds; it is *not* part of the cell's identity digest, so
    re-prioritising a plan never invalidates finished work.
    """

    kind: str                      # 'measure' | 'experiment'
    experiment: str                # harness name (whole-run cells) or grid tag
    dataset: str = ""
    compressor: str = ""
    rel_eb: float = 0.0
    seed: int = 0
    config: tuple = ()             # sorted (key, value) identity pairs
    priority: int = 0

    @property
    def cell_id(self) -> str:
        payload = json.dumps({
            "kind": self.kind,
            "experiment": self.experiment,
            "dataset": self.dataset,
            "compressor": self.compressor,
            "rel_eb": self.rel_eb,
            "seed": self.seed,
            "config": [[k, list(v) if isinstance(v, tuple) else v]
                       for k, v in self.config],
        }, sort_keys=True)
        return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()

    def describe(self) -> dict:
        """Human/ledger-facing identity (stored in the ``planned`` record)."""
        out = {"kind": self.kind, "experiment": self.experiment, "seed": self.seed}
        if self.kind == "measure":
            out.update(dataset=self.dataset, compressor=self.compressor,
                       rel_eb=self.rel_eb)
        return out

    def label(self) -> str:
        if self.kind == "measure":
            return f"{self.dataset}/{self.compressor}@{self.rel_eb:g}"
        return self.experiment


def plan_grid(datasets, rel_ebs, compressors=DEFAULT_COMPRESSORS, *,
              seed: int = 0, shape: tuple | None = None,
              sampling_rate: float = 0.01) -> list[SweepCell]:
    """The rate-distortion grid: one cell per (dataset, eb, compressor)."""
    config = []
    if shape is not None:
        config.append(("shape", tuple(int(s) for s in shape)))
    config.append(("sampling_rate", float(sampling_rate)))
    config = tuple(sorted(config))
    cells = []
    for dataset in datasets:
        for rel_eb in rel_ebs:
            for compressor in compressors:
                cells.append(SweepCell(
                    kind="measure", experiment="grid", dataset=dataset,
                    compressor=compressor, rel_eb=float(rel_eb), seed=seed,
                    config=config, priority=len(cells)))
    return cells


def plan_experiments(names, *, seed: int = 0,
                     priority_base: int = 0) -> list[SweepCell]:
    """Whole-harness cells: one cell per experiment module ``run()``."""
    return [SweepCell(kind="experiment", experiment=name, seed=seed,
                      priority=priority_base + i)
            for i, name in enumerate(names)]


# ---------------------------------------------------------------------- #
def _jsonify(obj):
    """Coerce numpy scalars/arrays into plain JSON types (deterministic)."""
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if hasattr(obj, "item") and not isinstance(obj, (str, bytes)):
        return obj.item()
    return obj


def execute_cell(cell: SweepCell) -> dict:
    """Run one cell and return its artifact payload (JSON-safe, and free
    of wall-clock values for ``measure`` cells, so artifacts are
    byte-reproducible across runs and restarts)."""
    if cell.kind == "experiment":
        module = importlib.import_module(f"repro.experiments.{cell.experiment}")
        result = module.run()
        return {"experiment": cell.experiment, "title": result.title,
                "rows": _jsonify(result.rows), "notes": list(result.notes)}
    if cell.kind != "measure":
        raise ValueError(f"unknown cell kind {cell.kind!r}")

    from repro.datasets import load
    from repro.experiments.common import (
        BASELINES,
        measure_point,
        rel_eb_to_abs,
        tuned_config,
    )

    cfg = dict(cell.config)
    kwargs = {"shape": tuple(cfg["shape"])} if "shape" in cfg else {}
    fieldobj = load(cell.dataset, **kwargs)
    eb = rel_eb_to_abs(fieldobj, cell.rel_eb)
    if cell.compressor == "CliZ":
        from repro import CliZ

        tune = tuned_config(fieldobj, rel_eb=cell.rel_eb,
                            sampling_rate=cfg.get("sampling_rate", 0.01))
        point, _ = measure_point(CliZ(tune.best), fieldobj, eb, pass_mask=True)
    else:
        point, _ = measure_point(BASELINES[cell.compressor](), fieldobj, eb)
    return {
        "dataset": cell.dataset,
        "compressor": cell.compressor,
        "rel_eb": cell.rel_eb,
        "abs_eb": float(eb),
        "bit_rate": float(point.bit_rate),
        "compression_ratio": float(point.compression_ratio),
        "psnr": float(point.psnr),
        "ssim": float(point.ssim),
    }


# ---------------------------------------------------------------------- #
class CircuitBreaker:
    """Per-subject consecutive-failure breaker.

    ``threshold`` consecutive exhausted cells for one subject (codec or
    experiment name) open its breaker; later cells of that subject are
    skipped. ``threshold <= 0`` disables the breaker entirely.
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = int(threshold)
        self.consecutive: dict[str, int] = {}
        self.open: set[str] = set()

    def subject(self, cell: SweepCell) -> str:
        return cell.compressor or cell.experiment

    def is_open(self, cell: SweepCell) -> bool:
        return self.subject(cell) in self.open

    def record(self, cell: SweepCell, ok: bool) -> bool:
        """Record an outcome; returns True when this failure OPENED it."""
        key = self.subject(cell)
        if ok:
            self.consecutive[key] = 0
            return False
        self.consecutive[key] = self.consecutive.get(key, 0) + 1
        if (self.threshold > 0 and key not in self.open
                and self.consecutive[key] >= self.threshold):
            self.open.add(key)
            return True
        return False


@dataclass
class SweepReport:
    """Outcome of one ``run_sweep`` invocation (one process lifetime)."""

    out_dir: str
    planned: int = 0
    executed: int = 0            # cells computed (and committed) this run
    skipped: int = 0             # done-and-verified cells replayed from ledger
    requeued: int = 0            # running orphans found on resume
    retried_failed: int = 0      # previously-failed cells requeued on resume
    failed: int = 0              # cells that exhausted their retry budget
    shed: int = 0                # cells dropped by the deadline
    breaker_skipped: int = 0     # cells skipped by an open breaker
    torn_tail_bytes: int = 0     # journal bytes healed at open
    breakers_open: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)   # artifacts, plan order

    @property
    def complete(self) -> bool:
        return self.skipped + self.executed == self.planned

    def lines(self) -> list[str]:
        out = [f"== sweep: {self.out_dir} =="]
        out.append(f"   cells: {self.planned} planned, {self.executed} executed, "
                   f"{self.skipped} skipped (ledger), {self.failed} failed, "
                   f"{self.shed} shed, {self.breaker_skipped} breaker-skipped")
        if self.requeued or self.retried_failed:
            out.append(f"   resume: {self.requeued} running orphan(s) requeued, "
                       f"{self.retried_failed} failed cell(s) retried")
        if self.torn_tail_bytes:
            out.append(f"   ledger: healed {self.torn_tail_bytes} torn tail byte(s)")
        if self.breakers_open:
            out.append(f"   circuit breaker OPEN for: {', '.join(self.breakers_open)}")
        out.append(f"   status: {'complete' if self.complete else 'INCOMPLETE'}")
        return out

    def text(self) -> str:
        return "\n".join(self.lines())

    def print(self) -> None:  # noqa: A003 - mirrors the harness contract
        print(self.text())


# ---------------------------------------------------------------------- #
def _clean_stale_tmps(directory: Path) -> int:
    """Remove temp files a killed atomic_write left behind (crash janitor)."""
    n = 0
    if directory.is_dir():
        for tmp in directory.glob(".*.tmp"):
            tmp.unlink(missing_ok=True)
            n += 1
    return n


def _delay(backoff: float, attempt: int) -> float:
    """Bounded exponential backoff, mirroring RetryPolicy.delay."""
    return min(backoff * (2.0 ** (attempt - 1)), 2.0)


def _update_live_progress(report: SweepReport, remaining: int,
                          exec_seconds: float) -> None:
    """Refresh the sweep's live progress gauges after each cell.

    ``sweep.eta_seconds`` is the mean executed-cell duration times the
    remaining cell count — crude but honest, and it converges as the
    sweep runs. All of this lands on ``/metrics`` when the sweep was
    started with ``--serve-metrics``.
    """
    from repro import obs

    obs.set_gauge("sweep.progress.done", report.executed)
    obs.set_gauge("sweep.progress.failed", report.failed)
    obs.set_gauge("sweep.progress.pending", remaining)
    if report.executed:
        obs.set_gauge("sweep.eta_seconds",
                      exec_seconds / report.executed * remaining)


def run_sweep(out, cells: list[SweepCell], *, resume: bool = False,
              faults=None, retries: int = 0, retry_backoff: float = 0.05,
              deadline: float | None = None, breaker_threshold: int = 3,
              fsync: bool = True) -> SweepReport:
    """Execute a cell plan under the run ledger; see the module docstring.

    Raises ``FileExistsError`` when ``out`` already holds ledger records
    and ``resume`` is False — continuing a previous run must be an
    explicit decision, not an accident that silently mixes two sweeps.
    """
    from repro import obs
    from repro.faults import FaultInjectedError

    out = Path(out)
    cells_dir = out / "cells"
    cells_dir.mkdir(parents=True, exist_ok=True)
    ledger = RunLedger(out / LEDGER_FILENAME, fsync=fsync)
    state = replay_ledger(ledger.path)
    if state.records and not resume:
        raise FileExistsError(
            f"{ledger.path} already has {state.records} record(s); pass "
            "resume=True (--resume) to continue it, or use a fresh --out dir")

    plan = sorted(cells, key=lambda c: (c.priority,))
    report = SweepReport(out_dir=str(out), planned=len(plan),
                        torn_tail_bytes=ledger.healed_bytes)
    janitor = _clean_stale_tmps(cells_dir)
    if resume:
        ledger.event("resume", records=state.records, torn=state.torn_lines,
                     healed_bytes=ledger.healed_bytes, stale_tmps=janitor)

    breaker = CircuitBreaker(breaker_threshold)
    t0 = time.monotonic()
    pending: list[tuple[int, SweepCell]] = []

    # ----- replay: classify every planned cell against the journal ----- #
    for idx, cell in enumerate(plan):
        cid = cell.cell_id
        status = state.status(cid)
        if status == "done" and state.verified_done(cid, out):
            report.skipped += 1
            obs.inc_counter("sweep.ledger.skipped")
            continue
        if status == "done":
            # artifact vanished or digest mismatch: the ledger is conservative,
            # so recompute rather than trust a torn/tampered file
            ledger.event("requeue", cell=cid, reason="artifact_mismatch")
            obs.inc_counter("sweep.ledger.requeued")
            report.requeued += 1
        elif status == "running":
            ledger.event("requeue", cell=cid, reason="orphan")
            obs.inc_counter("sweep.ledger.requeued")
            report.requeued += 1
        elif status == "failed":
            ledger.event("requeue", cell=cid, reason="retry_failed")
            obs.inc_counter("sweep.ledger.refailed")
            report.retried_failed += 1
        elif status is None:
            ledger.planned(cid, meta=cell.describe())
        pending.append((idx, cell))

    # ----- execute ----------------------------------------------------- #
    exec_seconds = 0.0
    with obs.span("sweep", n_cells=len(plan), pending=len(pending)):
        for pos, (idx, cell) in enumerate(pending):
            if deadline is not None and time.monotonic() - t0 > deadline:
                for _, shed_cell in pending[pos:]:
                    ledger.event("shed", cell=shed_cell.cell_id,
                                 reason="deadline")
                    obs.inc_counter("sweep.cells_shed")
                    report.shed += 1
                break
            if breaker.is_open(cell):
                ledger.event("breaker_skip", cell=cell.cell_id,
                             subject=breaker.subject(cell))
                obs.inc_counter("sweep.breaker_skipped")
                report.breaker_skipped += 1
                continue
            cid = cell.cell_id
            directive = faults.job_faults("sweep", idx) if faults is not None \
                else None
            attempt = 1
            t_cell = time.monotonic()
            while True:
                ledger.running(cid, attempt)
                try:
                    if directive is not None:
                        if attempt <= directive.crash_attempts:
                            raise FaultInjectedError(
                                f"injected cell crash (attempt {attempt}"
                                f"/{directive.crash_attempts})")
                        if directive.delay > 0.0:
                            time.sleep(directive.delay)
                    with obs.span("sweep_cell", cell=cid, label=cell.label()):
                        payload = execute_cell(cell)
                    blob = (json.dumps(payload, sort_keys=True, indent=1)
                            + "\n").encode()
                    kill = faults.kill_directive(cid, index=idx) \
                        if faults is not None else None
                    artifact = f"cells/{cid}.json"
                    # commit-ordering invariant: artifact first, then 'done'
                    atomic_write(out / artifact, blob, fsync=fsync, kill=kill)
                    ledger.done(cid, artifact, blake2b_bytes(blob), attempt)
                    obs.inc_counter("sweep.cells_done")
                    cell_dur = time.monotonic() - t_cell
                    exec_seconds += cell_dur
                    obs.observe_latency("sweep.cell", cell_dur)
                    obs.mark_rate("sweep.cells")
                    report.executed += 1
                    breaker.record(cell, True)
                    break
                # cell boundary: like repro.parallel's job boundary, ANY
                # failure becomes a ledger record (or a retry) so one broken
                # codec cannot abort its siblings mid-sweep.
                except Exception as exc:  # noqa: BLE001
                    from repro.runtime import InjectedKillError

                    if isinstance(exc, InjectedKillError):
                        raise  # simulated process death: nothing may run after
                    if attempt > retries:
                        ledger.failed(cid, f"{exc}", type(exc).__name__, attempt)
                        obs.inc_counter("sweep.cells_failed")
                        report.failed += 1
                        if breaker.record(cell, False):
                            subject = breaker.subject(cell)
                            ledger.event("breaker_open", subject=subject,
                                         failures=breaker.consecutive[subject])
                            obs.set_gauge(f"sweep.breaker_open.{subject}", 1.0)
                        break
                    obs.inc_counter("sweep.retries")
                    obs.mark_rate("sweep.retries")
                    time.sleep(_delay(retry_backoff, attempt))
                    attempt += 1
            _update_live_progress(report, len(pending) - pos - 1, exec_seconds)

    # ----- collect artifacts (plan order) and the aggregate result ----- #
    final = replay_ledger(ledger.path)
    for cell in plan:
        rec = final.record(cell.cell_id)
        if rec is not None and rec["status"] == "done":
            artifact = out / rec["artifact"]
            try:
                report.rows.append(json.loads(artifact.read_text()))
            except (OSError, ValueError):  # pragma: no cover - janitor race
                continue
    results = {"cells": report.rows, "planned": len(plan),
               "complete": report.complete}
    atomic_write(out / "results.json",
                 json.dumps(results, sort_keys=True, indent=1) + "\n",
                 fsync=fsync)
    report.breakers_open = sorted(breaker.open)
    for subject in report.breakers_open:
        obs.set_gauge(f"sweep.breaker_open.{subject}", 1.0)
    return report


# ---------------------------------------------------------------------- #
def _csv(value: str) -> list[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def add_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--out", required=True, metavar="DIR",
                   help="sweep directory (ledger.jsonl, cells/, results.json)")
    p.add_argument("--resume", action="store_true",
                   help="continue a previous run: skip done cells, requeue "
                        "orphans (required when the ledger is non-empty)")
    p.add_argument("--datasets", default="SSH",
                   help="comma-separated dataset names (default: SSH)")
    p.add_argument("--rel-ebs", default="1e-2,1e-3",
                   help="comma-separated relative error bounds")
    p.add_argument("--compressors", default=",".join(DEFAULT_COMPRESSORS),
                   help="comma-separated codec display names")
    p.add_argument("--experiments", default=None,
                   help="also run whole experiment harnesses as cells "
                        "(comma-separated module names)")
    p.add_argument("--shape", default=None,
                   help="synthesize datasets at this shape, e.g. 12,10,48 "
                        "(smoke/CI scale)")
    p.add_argument("--sampling-rate", type=float, default=0.01,
                   help="CliZ tuner sampling rate (default 0.01)")
    p.add_argument("--seed", type=int, default=0,
                   help="sweep seed (part of every cell's identity digest)")
    p.add_argument("--retries", type=int, default=0,
                   help="per-cell retries with exponential backoff")
    p.add_argument("--retry-backoff", type=float, default=0.05,
                   help="base backoff seconds between retries")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive failures that open a codec's circuit "
                        "breaker (0 disables)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="wall-clock budget: shed remaining cells past this")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault spec; the kill clause crashes "
                        "the process at an artifact commit stage "
                        "(see docs/ROBUSTNESS.md)")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip fsyncs (tests only: durability not guaranteed)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write sweep trace spans as JSONL")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write sweep metrics (ledger/breaker counters) as JSONL")
    p.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="serve live telemetry over HTTP while the sweep runs "
                        "(Prometheus /metrics plus /health and /snapshot; "
                        "0 binds an ephemeral port)")


def run_from_args(args) -> int:
    from repro import obs
    from repro.faults import parse_fault_spec

    shape = tuple(int(s) for s in _csv(args.shape)) if args.shape else None
    cells = plan_grid(_csv(args.datasets),
                      [float(e) for e in _csv(args.rel_ebs)],
                      _csv(args.compressors), seed=args.seed, shape=shape,
                      sampling_rate=args.sampling_rate)
    if args.experiments:
        cells += plan_experiments(_csv(args.experiments), seed=args.seed,
                                  priority_base=len(cells))
    faults = parse_fault_spec(args.inject_faults) if args.inject_faults else None
    serve = getattr(args, "serve_metrics", None) is not None
    run = obs.start_run(tags={"command": "sweep"}) \
        if (args.trace_out or args.metrics_out or serve) else None
    server = None
    if serve:
        from repro.obs.server import serve_from_args

        server = serve_from_args(args)
    try:
        report = run_sweep(args.out, cells, resume=args.resume, faults=faults,
                           retries=args.retries, retry_backoff=args.retry_backoff,
                           deadline=args.deadline,
                           breaker_threshold=args.breaker_threshold,
                           fsync=not args.no_fsync)
    finally:
        if server is not None:
            server.stop()
    if run is not None:
        obs.end_run()
        if args.trace_out:
            obs.write_trace_jsonl(run, args.trace_out)
        if args.metrics_out:
            obs.write_metrics_jsonl(run, args.metrics_out)
    report.print()
    return 1 if report.failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="kill-resumable experiment sweep with a crash-consistent "
                    "run ledger")
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
