"""Table III — information about tested datasets.

Prints the dataset inventory: paper dimensions vs generated dimensions,
mask/periodicity flags, and the measured valid fraction of each synthetic
field (checking e.g. SOILLIQ's ~70% invalid surface).
"""

from __future__ import annotations

from repro.datasets import table_iii_rows
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def run() -> ExperimentResult:
    result = ExperimentResult(
        "Table III", "Information about tested datasets (paper vs generated)"
    )
    for row in table_iii_rows():
        result.rows.append({
            "Name": row["name"],
            "Paper dims": "x".join(map(str, row["paper_dims"])),
            "Generated dims": "x".join(map(str, row["generated_dims"])),
            "Axes": ",".join(row["axes"]),
            "Mask": row["mask"],
            "Period": row["period"],
            "Valid frac": row["valid_fraction"],
        })
    result.notes.append("Generated dims are scaled-down (see DESIGN.md §5); structure preserved.")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
