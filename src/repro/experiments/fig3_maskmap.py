"""Fig. 3 — the SSH dataset and its three-category mask map.

The paper shows the SSH field (land missing) next to its mask map: value 0
for non-water regions, positive integers for parts of the world ocean,
negative integers for inland water bodies. This harness derives that
labeling from the synthetic SSH mask and prints the category inventory,
plus the fill-value magnitude that motivates mask-aware prediction.
"""

from __future__ import annotations

from repro.datasets import load
from repro.datasets.maskmap import label_mask_regions, region_summary
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def run(dataset: str = "SSH") -> ExperimentResult:
    fieldobj = load(dataset)
    if fieldobj.mask is None:
        raise RuntimeError(f"{dataset} has no mask; Fig. 3 needs a masked field")
    # the spatial mask: valid/invalid is constant along time for CESM output
    lat_ax, lon_ax = fieldobj.horiz_axes
    index = [0] * fieldobj.data.ndim
    index[lat_ax] = slice(None)
    index[lon_ax] = slice(None)
    mask2d = fieldobj.mask[tuple(index)]
    region_map = label_mask_regions(mask2d)
    summary = region_summary(region_map)

    result = ExperimentResult("Fig. 3", f"{dataset} mask map categories")
    result.rows.append({
        "Category": "0 (invalid / non-water)",
        "Regions": "-",
        "Points": summary["invalid_points"],
    })
    result.rows.append({
        "Category": "positive (ocean parts)",
        "Regions": summary["ocean_parts"],
        "Points": summary["ocean_points"],
    })
    result.rows.append({
        "Category": "negative (inland water)",
        "Regions": summary["inland_bodies"],
        "Points": summary["inland_points"],
    })
    fill = fieldobj.data[~fieldobj.mask]
    if fill.size:
        result.notes.append(
            f"invalid points carry the fill value {float(fill.flat[0]):.5g} "
            "(paper: 'tremendous data values (e.g., 2^122)... would significantly "
            "harm the lossy compression ratios')"
        )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
