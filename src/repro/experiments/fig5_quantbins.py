"""Fig. 5 — quantization bins share topographic structure across heights.

The paper plots log-scaled quantization-bin magnitudes of CESM-T at several
heights: the same (lat, lon) regions are active at every height. This
harness computes the per-height bin-magnitude maps from the real engine and
reports (a) the cross-height correlation of those maps and (b) their
correlation with terrain roughness — both should be strongly positive,
which is the premise of quantization-bin classification.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load, roughness, synth_topography
from repro.experiments.common import ExperimentResult, rel_eb_to_abs
from repro.prediction.interpolation import InterpSpec, interp_compress, traversal_indices

__all__ = ["run", "main"]


def run(dataset: str = "CESM-T", rel_eb: float = 1e-3,
        heights: tuple[int, ...] = (0, 5, 10, 20)) -> ExperimentResult:
    fieldobj = load(dataset)
    data = fieldobj.data.astype(np.float64)
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    spec = InterpSpec(order=tuple(range(data.ndim)))
    res = interp_compress(data, eb, spec)
    # scatter |bin| back onto the grid via the traversal map
    tidx = traversal_indices(data.shape, spec.order)
    binmag = np.zeros(data.size)
    binmag[tidx] = np.abs(res.codes - spec.radius)
    binmag = binmag.reshape(data.shape)
    # per-height mean |bin| maps (log scale, as in the figure)
    maps = {h: np.log1p(binmag[h]) for h in heights if h < data.shape[0]}

    result = ExperimentResult(
        "Fig. 5", f"Quantization-bin maps at different heights ({dataset}, rel eb {rel_eb})"
    )
    hs = sorted(maps)
    for i, h1 in enumerate(hs):
        for h2 in hs[i + 1:]:
            c = float(np.corrcoef(maps[h1].ravel(), maps[h2].ravel())[0, 1])
            result.rows.append({"Pair": f"height {h1} vs {h2}", "Bin-map correlation": c})
    # correlation with the terrain-derived turbulence regions (the CESM-T
    # generator marks the roughest 25% of the terrain as convective)
    rough = roughness(synth_topography(data.shape[1:], seed=1))
    turbulent = (rough > np.quantile(rough, 0.75)).astype(np.float64)
    for h in hs:
        c = float(np.corrcoef(maps[h].ravel(), turbulent.ravel())[0, 1])
        result.rows.append({"Pair": f"height {h} vs terrain turbulence", "Bin-map correlation": c})
    result.notes.append("paper: 'the same locations... exhibit similar values even at different height slices'")
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
