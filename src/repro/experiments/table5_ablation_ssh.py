"""Table V — ablation on SSH: cancel each optimization strategy in turn.

Starting from the estimated optimal pipeline (1% sampling), the harness
toggles each strategy off — mask-map prediction, bin classification,
permutation/fusion (reset to the identity layout), and periodic
extraction — and reports the CR improvement the strategy provides plus the
compression-time increment it costs, exactly like the paper's table.
"""

from __future__ import annotations

from repro import CliZ
from repro.core.dims import Layout, layout_name
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs, tuned_config
from repro.metrics import compression_ratio
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def _describe_row(cfg, label, cr, seconds, base_cr, base_time):
    return {
        "Condition": label,
        "Periodicity": cfg.period if (cfg.periodic and cfg.period) else ("auto" if cfg.periodic else "No"),
        "Mask": "Yes" if cfg.use_mask else "No",
        "Classification": "Yes" if cfg.binclass else "No",
        "Layout": layout_name(cfg.layout),
        "Fitting": cfg.fitting.capitalize(),
        "Compression Ratio": cr,
        "CR Improvement %": 100 * (base_cr / cr - 1) if cr > 0 else float("inf"),
        "Time s": seconds,
        "Time Increment %": 100 * (base_time / seconds - 1) if seconds > 0 else 0.0,
    }


def run(dataset: str = "SSH", rel_eb: float = 1e-3,
        sampling_rate: float = 0.01) -> ExperimentResult:
    fieldobj = load(dataset)
    data, mask = fieldobj.data, fieldobj.mask
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    tune = tuned_config(fieldobj, rel_eb=rel_eb, sampling_rate=sampling_rate)
    base_cfg = tune.best
    # Table V always reports the four strategies; force them on in the base
    # pipeline so each toggle is measurable even if the tuner skipped one.
    base_cfg = base_cfg.with_(
        binclass=fieldobj.horiz_axes is not None,
        horiz_axes=fieldobj.horiz_axes,
        periodic=fieldobj.time_axis is not None,
        time_axis=fieldobj.time_axis,
    )

    variants = [("optimal pipeline", base_cfg)]
    if mask is not None:
        variants.append(("no mask", base_cfg.with_(use_mask=False)))
    if base_cfg.binclass:
        variants.append(("no classification", base_cfg.with_(binclass=False)))
    variants.append(("no permutation/fusion",
                     base_cfg.with_(layout=Layout.identity(data.ndim))))
    if base_cfg.periodic:
        variants.append(("no periodicity", base_cfg.with_(periodic=False)))

    result = ExperimentResult(
        "Table V", f"Optimal pipeline vs each strategy cancelled ({dataset})"
    )
    measurements = []
    for label, cfg in variants:
        timer = Timer()
        with timer:
            blob = CliZ(cfg).compress(data, abs_eb=eb, mask=mask)
        measurements.append((label, cfg, compression_ratio(data.size, len(blob)), timer.elapsed))
    base_cr, base_time = measurements[0][2], measurements[0][3]
    for label, cfg, cr, seconds in measurements:
        result.rows.append(_describe_row(cfg, label, cr, seconds, base_cr, base_time))
    result.notes.append(
        "CR Improvement = how much the optimal pipeline gains over the cancelled variant "
        "(paper SSH: mask +132.7%, permutation/fusion +17.4%, classification +4.4%, periodicity +34.3%)"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
