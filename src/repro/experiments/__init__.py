"""Experiment harnesses — one module per table/figure of the paper.

========================  =============================================
Module                    Paper content
========================  =============================================
table3_datasets           Table III: dataset inventory
fig3_maskmap              Fig. 3: SSH mask-map categories
fig4_smoothness           Fig. 4: per-dimension smoothness diversity
fig5_quantbins            Fig. 5: quantization bins vs topography
fig6_maskfit              Fig. 6 / Tables I-II: mask-aware fitting accuracy
fig7_permutation          Fig. 7: bit rate per permutation/fusion
fig8_period_fft           Fig. 8: FFT spectra of sampled rows
fig9_residual             Fig. 9: original vs residual smoothness
fig10_rate_distortion     Fig. 10: rate-distortion, 5x5 comparison
fig11_sampling_time       Fig. 11: tuning time vs sampling rate
fig12_sampling_cr         Fig. 12: estimated CR ordering vs rate
table4_sampling_pipeline  Table IV: chosen pipeline + CR loss vs rate
table5_ablation_ssh       Table V: strategy ablation on SSH
table6_ablation_hurricane Table VI: strategy ablation on Hurricane-T
fig13_transfer            Fig. 13: Globus compress+transfer times
fig14_visual_quality      Fig. 14: quality at matched CR
headline                  Abstract: CliZ vs second-best CR advantage
speed                     §VII: throughput ordering (CliZ ~ SZ3 >> SPERR)
interactions              extension: strategy interaction matrix
========================  =============================================

Each module exposes ``run(...) -> ExperimentResult`` and is runnable as a
script (``python -m repro.experiments.<module>``). The sweep driver
(:mod:`repro.experiments.sweep`, ``python -m repro.experiments.sweep``)
runs grids of cells across these harnesses under a crash-consistent run
ledger with ``--resume`` support.

``ExperimentResult``/``format_table`` resolve lazily (PEP 562) so that
importing this package — e.g. for the sweep CLI's argument schema — does
not pull in the numpy codec stack.
"""

__all__ = ["ExperimentResult", "format_table", "ALL_EXPERIMENTS"]

_LAZY_EXPORTS = {
    "ExperimentResult": ("repro.experiments.common", "ExperimentResult"),
    "format_table": ("repro.experiments.common", "format_table"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module), attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

#: module name -> short description, for the run-everything example.
ALL_EXPERIMENTS = {
    "table3_datasets": "Table III: dataset inventory",
    "fig3_maskmap": "Fig. 3: SSH mask-map categories",
    "fig4_smoothness": "Fig. 4 / §V-B: per-dimension smoothness diversity",
    "fig5_quantbins": "Fig. 5: quantization bins vs topography",
    "fig6_maskfit": "Fig. 6 / Tables I-II: mask-aware fitting accuracy",
    "fig7_permutation": "Fig. 7: bit rate per permutation/fusion",
    "fig8_period_fft": "Fig. 8: FFT spectra of sampled rows",
    "fig9_residual": "Fig. 9: original vs residual smoothness",
    "fig10_rate_distortion": "Fig. 10: rate-distortion comparison",
    "fig11_sampling_time": "Fig. 11: tuning time vs sampling rate",
    "fig12_sampling_cr": "Fig. 12: estimated CR ordering vs rate",
    "table4_sampling_pipeline": "Table IV: pipeline choice vs sampling rate",
    "table5_ablation_ssh": "Table V: strategy ablation on SSH",
    "table6_ablation_hurricane": "Table VI: strategy ablation on Hurricane-T",
    "fig13_transfer": "Fig. 13: Globus compress+transfer times",
    "fig14_visual_quality": "Fig. 14: quality at matched CR",
    "headline": "Abstract: CliZ vs second-best CR advantage",
    "speed": "§VII: per-codec throughput ordering",
    "interactions": "Extension: mask x periodicity x layout interaction matrix",
}
