"""Fig. 6 / Tables I–II — the mask-aware dynamic fitting predictor.

Fig. 6 illustrates the four-point cubic stencil; Tables I/II give its
coefficients when references are valid/masked. This harness measures what
that machinery buys: prediction accuracy at mask boundaries with the
Theorem-1 coefficient adjustment versus the two naive alternatives
(treating fill values as data, or zero-filling masked references without
re-deriving coefficients).
"""

from __future__ import annotations

import numpy as np

from repro.datasets import load
from repro.experiments.common import ExperimentResult
from repro.prediction.coefficients import CUBIC_OFFSETS, CUBIC_TABLE

__all__ = ["run", "main"]


def _stencil_errors(values: np.ndarray, valid: np.ndarray, mode: str) -> np.ndarray:
    """|prediction error| for every interior 1D stencil with >= 1 masked ref.

    ``values`` and ``valid`` are (n_rows, n) arrays; predictions target
    position i from references at i + {-3,-1,1,3}. Modes:
    ``theorem1`` (adjusted coefficients), ``zero_fill`` (classic stencil,
    masked refs treated as 0), ``use_fill`` (classic stencil on the raw
    values including fills).
    """
    n = values.shape[1]
    targets = np.arange(3, n - 3)
    ref_idx = targets[:, None] + CUBIC_OFFSETS[None, :]
    refs = values[:, ref_idx]                    # (rows, T, 4)
    vref = valid[:, ref_idx]                     # (rows, T, 4)
    tvals = values[:, targets]
    tvalid = valid[:, targets]
    any_masked = ~vref.all(axis=2)
    select = tvalid & any_masked                 # valid target, masked neighbour
    classic = CUBIC_TABLE[0b1111]
    if mode == "theorem1":
        codes = (vref * np.array([8, 4, 2, 1])).sum(axis=2)
        preds = (refs * CUBIC_TABLE[codes]).sum(axis=2)
    elif mode == "zero_fill":
        preds = (np.where(vref, refs, 0.0) * classic).sum(axis=2)
    elif mode == "use_fill":
        preds = (refs * classic).sum(axis=2)
    else:
        raise ValueError(mode)
    return np.abs(preds - tvals)[select]


def run(dataset: str = "SSH") -> ExperimentResult:
    fieldobj = load(dataset)
    if fieldobj.mask is None:
        raise RuntimeError("Fig. 6's comparison needs a masked dataset")
    data = fieldobj.data.astype(np.float64)
    mask = fieldobj.mask
    # 1D rows along latitude of the first time slice (spatial prediction)
    values = np.ascontiguousarray(np.moveaxis(data, fieldobj.time_axis, 0)[0])
    valid = np.ascontiguousarray(np.moveaxis(mask, fieldobj.time_axis, 0)[0])

    result = ExperimentResult(
        "Fig. 6 / Tables I-II",
        f"Prediction error at mask boundaries ({dataset}, cubic stencil)",
    )
    for mode, label in [("theorem1", "Theorem-1 adjusted coefficients"),
                        ("zero_fill", "classic stencil, masked refs = 0"),
                        ("use_fill", "classic stencil on raw fill values")]:
        errs = _stencil_errors(values, valid, mode)
        result.rows.append({
            "Predictor": label,
            "Mean |err|": float(errs.mean()) if errs.size else 0.0,
            "Median |err|": float(np.median(errs)) if errs.size else 0.0,
            "Max |err|": float(errs.max()) if errs.size else 0.0,
            "Stencils": int(errs.size),
        })
    t1 = result.rows[0]["Mean |err|"]
    zf = result.rows[1]["Mean |err|"]
    result.notes.append(
        f"Theorem-1 coefficients cut the boundary prediction error "
        f"{zf / max(t1, 1e-30):.1f}x vs zero-filling, and make fill values "
        "irrelevant entirely (paper §VI-B: 'still an effective polynomial fitting')"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
