"""Fig. 10 — rate-distortion curves: 5 compressors x 5 climate datasets.

For each dataset, every compressor is run across a sweep of relative error
bounds; the harness prints (bit rate, PSNR, SSIM, CR) series per compressor
and the same-PSNR compression-ratio advantage of CliZ over the second-best
compressor — the paper's headline comparison. CliZ uses the auto-tuned
pipeline (1% sampling, as in §VII-C1) and is the only compressor receiving
the mask, mirroring the paper's setup where only CliZ exploits it.
"""

from __future__ import annotations

from repro import CliZ
from repro.datasets import load
from repro.experiments.common import (
    BASELINES,
    ExperimentResult,
    measure_point,
    rel_eb_to_abs,
    tuned_config,
)
from repro.metrics import RateDistortionCurve

__all__ = ["run", "collect_curves", "main", "DEFAULT_DATASETS", "DEFAULT_REL_EBS"]

DEFAULT_DATASETS = ("SSH", "CESM-T", "RELHUM", "SOILLIQ", "Tsfc")
DEFAULT_REL_EBS = (1e-2, 5e-3, 1e-3, 5e-4, 1e-4)


def collect_curves(dataset: str, rel_ebs=DEFAULT_REL_EBS,
                   compressors=("CliZ",) + tuple(BASELINES),
                   sampling_rate: float = 0.01) -> dict[str, RateDistortionCurve]:
    """Measure one dataset's rate-distortion curve per compressor."""
    fieldobj = load(dataset)
    curves: dict[str, RateDistortionCurve] = {}
    for name in compressors:
        curve = RateDistortionCurve(name, dataset)
        for rel_eb in rel_ebs:
            eb = rel_eb_to_abs(fieldobj, rel_eb)
            if name == "CliZ":
                tune = tuned_config(fieldobj, rel_eb=rel_eb, sampling_rate=sampling_rate)
                comp = CliZ(tune.best)
                point, _ = measure_point(comp, fieldobj, eb, pass_mask=True)
            else:
                point, _ = measure_point(BASELINES[name](), fieldobj, eb)
            curve.add(point)
        curves[name] = curve
    return curves


def run(datasets=DEFAULT_DATASETS, rel_ebs=DEFAULT_REL_EBS,
        sampling_rate: float = 0.01) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 10", "Rate-distortion (PSNR / SSIM vs bit rate) on climate datasets"
    )
    for dataset in datasets:
        curves = collect_curves(dataset, rel_ebs, sampling_rate=sampling_rate)
        for name, curve in curves.items():
            for p in curve.sorted_by_rate():
                result.rows.append({
                    "Dataset": dataset,
                    "Compressor": name,
                    "rel eb": p.eb / rel_eb_to_abs(load(dataset), 1.0),
                    "Bit rate": p.bit_rate,
                    "CR": p.compression_ratio,
                    "PSNR dB": p.psnr,
                    "SSIM": p.ssim,
                })
        # same-PSNR CR advantage at the midpoint PSNR of CliZ's curve
        cliz = curves["CliZ"]
        mid_psnr = sorted(p.psnr for p in cliz.points)[len(cliz.points) // 2]
        cliz_cr = cliz.ratio_at_psnr(mid_psnr)
        others = {n: c.ratio_at_psnr(mid_psnr) for n, c in curves.items() if n != "CliZ"}
        second_name, second_cr = max(others.items(), key=lambda kv: kv[1])
        result.notes.append(
            f"{dataset}: at PSNR {mid_psnr:.1f} dB CliZ CR {cliz_cr:.1f} vs second-best "
            f"{second_name} {second_cr:.1f} ({100 * (cliz_cr / second_cr - 1):+.0f}%)"
        )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
