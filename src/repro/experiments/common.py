"""Shared infrastructure for the experiment harnesses.

Every table/figure of the paper's evaluation has a module in this package
exposing ``run(...) -> ExperimentResult`` (structured rows + printable
text) and a ``main()`` that prints it — so each experiment can be
regenerated standalone (``python -m repro.experiments.fig10_rate_distortion``)
or driven by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import QoZ, SPERR, SZ3, ZFP, AutoTuner, obs
from repro.datasets import ClimateField
from repro.metrics import RatePoint, bit_rate, compression_ratio, psnr, ssim

__all__ = [
    "ExperimentResult",
    "format_table",
    "tuned_config",
    "measure_point",
    "BASELINES",
    "rel_eb_to_abs",
]

#: Baseline compressor factories by display name.
BASELINES = {
    "SZ3": SZ3,
    "QoZ": QoZ,
    "ZFP": ZFP,
    "SPERR": SPERR,
}


@dataclass
class ExperimentResult:
    """Structured output of one experiment: header lines + row dicts."""

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def lines(self) -> list[str]:
        out = [f"== {self.experiment}: {self.title} =="]
        out.extend(f"   {n}" for n in self.notes)
        if self.rows:
            out.append(format_table(self.rows))
        return out

    def text(self) -> str:
        return "\n".join(self.lines())

    def print(self) -> None:  # noqa: A003 - mirrors the harness contract
        print(self.text())


def format_table(rows: list[dict]) -> str:
    """Align a list of dicts into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    cols = list(rows[0].keys())
    def fmt(v):
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)
    rendered = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)]
    lines = ["  ".join(c.ljust(w) for c, w in zip(cols, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def rel_eb_to_abs(fieldobj: ClimateField, rel_eb: float) -> float:
    """Relative bound -> absolute over the dataset's valid value range."""
    data, mask = fieldobj.data, fieldobj.mask
    vals = data[mask] if mask is not None else data
    return rel_eb * float(vals.max() - vals.min())


_CONFIG_CACHE: dict[tuple, object] = {}


def tuned_config(fieldobj: ClimateField, rel_eb: float = 1e-3,
                 sampling_rate: float = 0.01, **tuner_kwargs):
    """Auto-tune (and memoize) the CliZ pipeline for a dataset."""
    key = (fieldobj.name, fieldobj.shape, rel_eb, sampling_rate,
           tuple(sorted(tuner_kwargs.items())))
    if key not in _CONFIG_CACHE:
        tuner = AutoTuner(sampling_rate=sampling_rate,
                          **fieldobj.tuner_kwargs(), **tuner_kwargs)
        eb = rel_eb_to_abs(fieldobj, rel_eb)
        result = tuner.tune(fieldobj.data, abs_eb=eb, mask=fieldobj.mask)
        _CONFIG_CACHE[key] = result
    return _CONFIG_CACHE[key]


def measure_point(compressor, fieldobj: ClimateField, abs_eb: float,
                  *, pass_mask: bool = False) -> tuple[RatePoint, bytes]:
    """Compress+decompress once; return the rate-distortion point."""
    data, mask = fieldobj.data, fieldobj.mask
    kwargs = {"abs_eb": abs_eb}
    if pass_mask and mask is not None:
        kwargs["mask"] = mask
    codec = getattr(compressor, "codec_name", type(compressor).__name__.lower())
    with obs.span("measure_point", codec=codec, dataset=fieldobj.name, eb=abs_eb):
        blob = compressor.compress(data, **kwargs)
        dec = compressor.decompress(blob)
    # SSIM is a 2D perceptual metric: evaluate it on horizontal slices by
    # rotating the (lat, lon) axes to the end.
    x = data.astype(np.float64)
    y = dec.astype(np.float64)
    m = mask
    if fieldobj.horiz_axes is not None and data.ndim > 2:
        order = [a for a in range(data.ndim) if a not in fieldobj.horiz_axes]
        order += list(fieldobj.horiz_axes)
        x = np.transpose(x, order)
        y = np.transpose(y, order)
        m = np.transpose(mask, order) if mask is not None else None
    point = RatePoint(
        eb=abs_eb,
        bit_rate=bit_rate(data.size, len(blob)),
        compression_ratio=compression_ratio(data.size, len(blob)),
        psnr=psnr(data, dec, mask),
        ssim=ssim(x, y, mask=m) if data.ndim >= 2 else 1.0,
    )
    if obs.get_run() is not None:
        obs.observe(f"experiment.{codec}.compression_ratio", point.compression_ratio)
        if np.isfinite(point.psnr):
            obs.observe(f"experiment.{codec}.psnr", point.psnr,
                        buckets=[20, 40, 60, 80, 100, 120, 150, 200])
    return point, blob
