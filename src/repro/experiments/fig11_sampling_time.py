"""Fig. 11 — auto-tuning time vs sampling rate (SSH and CESM-T).

The paper shows sampling/testing time growing roughly linearly with the
sampling rate, with a constant extra cost when periodic components are
involved (SSH: 192 pipelines, CESM-T: 96). This harness runs the tuner at a
sweep of rates and prints the measured trial counts and wall-clock times.
"""

from __future__ import annotations

from repro import AutoTuner
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs

__all__ = ["run", "main"]

DEFAULT_RATES = (0.001, 0.01, 0.05, 0.1, 0.3)


def run(datasets=("SSH", "CESM-T"), rates=DEFAULT_RATES,
        rel_eb: float = 1e-3) -> ExperimentResult:
    result = ExperimentResult(
        "Fig. 11", "Sampling and pipeline-testing time vs sampling rate"
    )
    for dataset in datasets:
        fieldobj = load(dataset)
        eb = rel_eb_to_abs(fieldobj, rel_eb)
        for rate in rates:
            tuner = AutoTuner(sampling_rate=rate, **fieldobj.tuner_kwargs())
            res = tuner.tune(fieldobj.data, abs_eb=eb, mask=fieldobj.mask)
            result.rows.append({
                "Dataset": dataset,
                "Sampling rate": rate,
                "Pipelines": len(res.trials),
                "Sample shape": "x".join(map(str, res.sample_shape)),
                "Tuning time s": res.total_time,
                "Periodic": "Yes" if res.period else "No",
            })
    result.notes.append(
        "paper: SSH tests 192 pipelines (periodic), CESM-T 96; time grows ~linearly "
        "with rate plus a constant periodic-extraction cost"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
