"""Table VI — ablation on Hurricane-T (no mask, no periodicity).

Hurricane-T only exercises classification, permutation/fusion and fitting.
The paper's point: the estimated optimum need not win every toggle —
turning classification *off* actually improved CR there — and a random
layout is clearly worse. This harness reproduces those three columns.
"""

from __future__ import annotations

from repro import CliZ
from repro.core.dims import Layout, layout_name
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs, tuned_config
from repro.metrics import compression_ratio
from repro.utils.timer import Timer

__all__ = ["run", "main"]


def run(dataset: str = "Hurricane-T", rel_eb: float = 1e-3,
        sampling_rate: float = 0.01) -> ExperimentResult:
    fieldobj = load(dataset)
    data = fieldobj.data
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    tune = tuned_config(fieldobj, rel_eb=rel_eb, sampling_rate=sampling_rate)
    base_cfg = tune.best.with_(binclass=True, horiz_axes=fieldobj.horiz_axes)

    # the paper's third column: a random (non-tuned) permutation + fusion
    random_layout = Layout((0, 2, 1), (2, 1))
    if random_layout == base_cfg.layout:
        random_layout = Layout((2, 1, 0), (1, 2))

    variants = [
        ("estimated optimal", base_cfg),
        ("no classification", base_cfg.with_(binclass=False)),
        ("random permutation/fusion", base_cfg.with_(layout=random_layout)),
    ]
    result = ExperimentResult(
        "Table VI", f"Optimal pipeline vs toggled strategies ({dataset})"
    )
    measurements = []
    for label, cfg in variants:
        timer = Timer()
        with timer:
            blob = CliZ(cfg).compress(data, abs_eb=eb)
        measurements.append((label, cfg, compression_ratio(data.size, len(blob)), timer.elapsed))
    base_cr, base_time = measurements[0][2], measurements[0][3]
    for label, cfg, cr, seconds in measurements:
        result.rows.append({
            "Condition": label,
            "Classification": "Yes" if cfg.binclass else "No",
            "Layout": layout_name(cfg.layout),
            "Fitting": cfg.fitting.capitalize(),
            "Compression Ratio": cr,
            "CR Improvement %": 100 * (base_cr / cr - 1),
            "Time s": seconds,
        })
    result.notes.append(
        "paper: classification off gave -0.34% 'improvement' (i.e. slightly better off), "
        "random layout cost 2.48%"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
