"""Fig. 7 — bit rates across all dimension permutation/fusion cases.

The paper's 3D bar plot shows the bit rate of every (sequence, fusion)
combination on the global atmosphere temperature dataset, with several
near-optimal red bars. This harness compresses CESM-T under all 24 layouts
and prints the resulting bit rates sorted ascending, plus the spread
between best and worst (the paper's point: the choice matters, and several
layouts tie near the optimum).
"""

from __future__ import annotations

from repro.core import CliZ, PipelineConfig
from repro.core.dims import enumerate_layouts, layout_name
from repro.datasets import load
from repro.experiments.common import ExperimentResult, rel_eb_to_abs
from repro.metrics import bit_rate

__all__ = ["run", "main"]


def run(dataset: str = "CESM-T", rel_eb: float = 1e-3,
        fitting: str = "cubic") -> ExperimentResult:
    fieldobj = load(dataset)
    data = fieldobj.data
    eb = rel_eb_to_abs(fieldobj, rel_eb)
    result = ExperimentResult(
        "Fig. 7", f"Bit rate per dimension permutation/fusion ({dataset}, {fitting} fitting)"
    )
    rates = []
    for layout in enumerate_layouts(data.ndim):
        cfg = PipelineConfig(layout=layout, fitting=fitting)
        blob = CliZ(cfg).compress(data, abs_eb=eb, mask=fieldobj.mask)
        rates.append((bit_rate(data.size, len(blob)), layout))
    rates.sort(key=lambda t: t[0])
    for rate, layout in rates:
        result.rows.append({"Layout": layout_name(layout), "Bit rate": rate})
    best, worst = rates[0][0], rates[-1][0]
    runner_up = rates[1][0]
    result.notes.append(
        f"best {best:.3f} vs worst {worst:.3f} bits/value ({worst / best:.2f}x spread); "
        f"runner-up within {100 * (runner_up - best) / best:.2f}% "
        "(paper: multiple red frustums as short as each other, 0.065% apart)"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
