"""Fig. 8 — FFT spectra of sampled SSH rows peak at the annual frequency.

The paper samples ten rows of the SSH dataset along time (N=1032), observes
a common spectral peak at f=86 (and harmonics), and derives period
1032/86 = 12. On the scaled dataset (N time steps, period 12) the peak sits
at f = N/12; this harness prints each sampled row's top frequencies and the
derived period.
"""

from __future__ import annotations

import numpy as np

from repro.core.periodicity import detect_period, row_spectra
from repro.datasets import load
from repro.experiments.common import ExperimentResult

__all__ = ["run", "main"]


def run(dataset: str = "SSH", n_rows: int = 10, seed: int = 0) -> ExperimentResult:
    fieldobj = load(dataset)
    data = fieldobj.data.astype(np.float64)
    spectra = row_spectra(data, fieldobj.time_axis, n_rows=n_rows, seed=seed,
                          mask=fieldobj.mask)
    n_time = data.shape[fieldobj.time_axis]
    expected_f = n_time / fieldobj.true_period if fieldobj.true_period else None
    result = ExperimentResult(
        "Fig. 8", f"FFT of {n_rows} sampled rows of {dataset} (N={n_time})"
    )
    for i, spec in enumerate(spectra):
        top = np.argsort(spec)[::-1][:3]
        result.rows.append({
            "Row": chr(ord("B") + i),
            "Peak f": int(top[0]),
            "2nd f": int(top[1]),
            "3rd f": int(top[2]),
            "Peak amp": float(spec[top[0]]),
            "Median amp": float(np.median(spec[1:])),
        })
    period = detect_period(data, fieldobj.time_axis, n_rows=n_rows, seed=seed,
                           mask=fieldobj.mask)
    result.notes.append(
        f"expected fundamental f = N/period = {expected_f}; detected period = {period} "
        f"(paper: N=1032, peak f=86, period 12)"
    )
    return result


def main() -> None:
    run().print()


if __name__ == "__main__":
    main()
