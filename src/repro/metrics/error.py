"""Pointwise distortion metrics (paper Eq. 3 and friends)."""

from __future__ import annotations

import numpy as np

__all__ = ["value_range", "rmse", "max_abs_error", "mean_abs_error", "psnr"]


def _pair(original: np.ndarray, reconstructed: np.ndarray,
          mask: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")
    if mask is not None:
        m = np.asarray(mask, dtype=bool)
        if m.shape != a.shape:
            raise ValueError("mask shape mismatch")
        return a[m], b[m]
    return a.ravel(), b.ravel()


def value_range(original: np.ndarray, mask: np.ndarray | None = None) -> float:
    """``d_max - d_min`` over valid points."""
    vals = original[mask] if mask is not None else np.asarray(original)
    return float(np.max(vals) - np.min(vals))


def rmse(original: np.ndarray, reconstructed: np.ndarray,
         mask: np.ndarray | None = None) -> float:
    a, b = _pair(original, reconstructed, mask)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray,
                  mask: np.ndarray | None = None) -> float:
    a, b = _pair(original, reconstructed, mask)
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def mean_abs_error(original: np.ndarray, reconstructed: np.ndarray,
                   mask: np.ndarray | None = None) -> float:
    a, b = _pair(original, reconstructed, mask)
    return float(np.mean(np.abs(a - b))) if a.size else 0.0


def psnr(original: np.ndarray, reconstructed: np.ndarray,
         mask: np.ndarray | None = None) -> float:
    """Peak signal-to-noise ratio, paper Eq. (3).

    ``PSNR = 20 log10((d_max - d_min) / RMSE)`` over valid points; a perfect
    reconstruction returns ``inf``.
    """
    err = rmse(original, reconstructed, mask)
    span = value_range(original, mask)
    if err == 0.0:
        return float("inf")
    if span == 0.0:
        return float("-inf") if err > 0 else float("inf")
    return float(20.0 * np.log10(span / err))
