"""Rate metrics and rate-distortion curve containers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["bit_rate", "compression_ratio", "RatePoint", "RateDistortionCurve"]

#: The paper reports bit rates against single-precision inputs (32 bits).
SOURCE_BITS = 32


def compression_ratio(n_values: int, compressed_bytes: int,
                      source_bits: int = SOURCE_BITS) -> float:
    """R = S / S' with S in source-precision bytes."""
    if compressed_bytes <= 0:
        raise ValueError("compressed size must be positive")
    return n_values * source_bits / 8.0 / compressed_bytes


def bit_rate(n_values: int, compressed_bytes: int) -> float:
    """Average bits per value in the compressed representation."""
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    return compressed_bytes * 8.0 / n_values


@dataclass
class RatePoint:
    """One (error bound -> rate/distortion) measurement."""

    eb: float
    bit_rate: float
    compression_ratio: float
    psnr: float
    ssim: float

    def as_row(self) -> str:
        return (f"eb={self.eb:10.3e}  bitrate={self.bit_rate:7.3f}  "
                f"CR={self.compression_ratio:9.2f}  PSNR={self.psnr:7.2f} dB  "
                f"SSIM={self.ssim:8.5f}")


@dataclass
class RateDistortionCurve:
    """A compressor's rate-distortion curve on one dataset."""

    compressor: str
    dataset: str
    points: list[RatePoint] = field(default_factory=list)

    def add(self, point: RatePoint) -> None:
        self.points.append(point)

    def sorted_by_rate(self) -> list[RatePoint]:
        return sorted(self.points, key=lambda p: p.bit_rate)

    def psnr_at_bitrate(self, target: float) -> float:
        """Linear interpolation of PSNR at a bit rate (for comparisons)."""
        pts = self.sorted_by_rate()
        if not pts:
            raise ValueError("empty curve")
        rates = np.array([p.bit_rate for p in pts])
        psnrs = np.array([p.psnr for p in pts])
        return float(np.interp(target, rates, psnrs))

    def ratio_at_psnr(self, target_psnr: float) -> float:
        """Interpolated compression ratio achieving a target PSNR.

        Interpolates log(CR) against PSNR: compression ratios span decades
        and rate-distortion curves are near-linear in (PSNR, log CR), so
        linear-CR interpolation would systematically overestimate between
        coarse sweep points.
        """
        pts = sorted(self.points, key=lambda p: p.psnr)
        psnrs = np.array([p.psnr for p in pts])
        log_ratios = np.log(np.array([p.compression_ratio for p in pts]))
        return float(np.exp(np.interp(target_psnr, psnrs, log_ratios)))
