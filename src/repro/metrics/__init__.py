"""Distortion and rate metrics used throughout the evaluation."""

from repro.metrics.assessment import (
    QualityReport,
    assess,
    error_autocorrelation,
    pearson_correlation,
    wasserstein_distance,
)
from repro.metrics.error import max_abs_error, mean_abs_error, psnr, rmse, value_range
from repro.metrics.rate import (
    RateDistortionCurve,
    RatePoint,
    bit_rate,
    compression_ratio,
)
from repro.metrics.ssim import ssim

__all__ = [
    "psnr",
    "rmse",
    "max_abs_error",
    "mean_abs_error",
    "value_range",
    "ssim",
    "bit_rate",
    "compression_ratio",
    "RatePoint",
    "RateDistortionCurve",
    "QualityReport",
    "assess",
    "pearson_correlation",
    "wasserstein_distance",
    "error_autocorrelation",
]
