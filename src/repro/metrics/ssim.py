"""Structural similarity (paper Eqs. 4-5), vectorized over sliding windows.

SSIM is computed per 2D slice on the last two axes (the horizontal plane of
a climate field), averaging the per-window index over all windows and all
leading slices. Window means/variances come from box sums via cumulative
sums, so the cost is linear in the number of pixels.

Constants follow Wang et al.: ``c1 = (0.01 L)^2``, ``c2 = (0.03 L)^2`` with
``L`` the valid-data value range.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ssim"]


def _box_sums(img: np.ndarray, w: int) -> np.ndarray:
    """Sums over all w x w windows of the trailing two axes."""
    c = img.cumsum(axis=-1).cumsum(axis=-2)
    padded = np.zeros(img.shape[:-2] + (img.shape[-2] + 1, img.shape[-1] + 1))
    padded[..., 1:, 1:] = c
    return (padded[..., w:, w:] - padded[..., :-w, w:]
            - padded[..., w:, :-w] + padded[..., :-w, :-w])


def ssim(original: np.ndarray, reconstructed: np.ndarray, *,
         window: int = 8, data_range: float | None = None,
         mask: np.ndarray | None = None) -> float:
    """Mean SSIM over all sliding windows of every trailing-2D slice.

    ``mask`` (True = valid) restricts the average to windows made entirely
    of valid points; if no window qualifies the full-frame SSIM of valid
    points is approximated by ignoring the mask.
    """
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(reconstructed, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("shape mismatch")
    if x.ndim < 2:
        raise ValueError("ssim needs at least 2 dimensions")
    w = min(window, x.shape[-1], x.shape[-2])
    if data_range is None:
        vals = x[mask] if mask is not None else x
        data_range = float(vals.max() - vals.min())
    if data_range == 0.0:
        return 1.0 if np.array_equal(x, y) else 0.0
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    n = float(w * w)

    if mask is not None:
        # Zero the invalid points before the cumulative sums: CESM-style
        # ~1e36 fill values would otherwise poison every window downstream
        # of a fill through catastrophic cancellation. Fully-valid windows
        # (the only ones averaged below) are unaffected.
        m_bool = np.asarray(mask, dtype=bool)
        x = np.where(m_bool, x, 0.0)
        y = np.where(m_bool, y, 0.0)

    sx = _box_sums(x, w)
    sy = _box_sums(y, w)
    sxx = _box_sums(x * x, w)
    syy = _box_sums(y * y, w)
    sxy = _box_sums(x * y, w)
    mx = sx / n
    my = sy / n
    vx = np.maximum(sxx / n - mx * mx, 0.0)
    vy = np.maximum(syy / n - my * my, 0.0)
    cxy = sxy / n - mx * my
    score = ((2 * mx * my + c1) * (2 * cxy + c2)) / ((mx * mx + my * my + c1) * (vx + vy + c2))

    if mask is not None:
        m = np.asarray(mask, dtype=bool).astype(np.float64)
        full = _box_sums(m, w) >= n  # windows fully inside the valid region
        if full.any():
            return float(score[full].mean())
    return float(score.mean())
