"""Z-checker-style compression quality assessment.

The climate community judges lossy reconstructions with more than PSNR:
the paper's related work (Tao et al.'s Z-checker [18]; Underwood et al.
[17]) uses Pearson correlation, the Wasserstein distance between value
distributions, SSIM, and error-structure diagnostics. This module bundles
them into one :class:`QualityReport` so a reconstruction can be assessed
with a single call — the per-variable report an archive operator would run
before discarding the originals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.metrics.error import max_abs_error, mean_abs_error, psnr, rmse, value_range
from repro.metrics.ssim import ssim as ssim_metric

__all__ = ["QualityReport", "assess", "pearson_correlation", "wasserstein_distance",
           "error_autocorrelation"]


def _valid_pair(original, reconstructed, mask):
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("shape mismatch")
    if mask is not None:
        return a[mask], b[mask]
    return a.ravel(), b.ravel()


def pearson_correlation(original, reconstructed, mask=None) -> float:
    """Pearson r between original and reconstructed valid values."""
    a, b = _valid_pair(original, reconstructed, mask)
    if a.size < 2 or a.std() == 0 or b.std() == 0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return float(np.corrcoef(a, b)[0, 1])


def wasserstein_distance(original, reconstructed, mask=None) -> float:
    """1-Wasserstein distance between the value distributions."""
    a, b = _valid_pair(original, reconstructed, mask)
    return float(stats.wasserstein_distance(a, b))


def error_autocorrelation(original, reconstructed, mask=None, lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation of the (flattened) error field.

    Compression artifacts show up as *structured* error: values near ±1
    mean visible banding/blocking, values near 0 mean noise-like error
    (what a good compressor produces).
    """
    a, b = _valid_pair(original, reconstructed, mask)
    err = a - b
    if err.size <= lag + 1:
        return 0.0
    x = err[:-lag] - err[:-lag].mean()
    y = err[lag:] - err[lag:].mean()
    denom = np.sqrt((x ** 2).sum() * (y ** 2).sum())
    if denom == 0:
        return 0.0
    return float((x * y).sum() / denom)


@dataclass
class QualityReport:
    """All distortion metrics for one (original, reconstruction) pair."""

    psnr: float
    rmse: float
    max_abs_error: float
    mean_abs_error: float
    value_range: float
    pearson: float
    wasserstein: float
    error_autocorr: float
    ssim: float | None  # None for 1D data

    def passes(self, *, abs_eb: float | None = None,
               min_pearson: float = 0.99999) -> bool:
        """Archive acceptance test: bound respected + correlation preserved.

        The Pearson threshold follows the community's 0.99999 rule of thumb
        (Baker et al., HPDC'14).
        """
        ok = self.pearson >= min_pearson
        if abs_eb is not None:
            ok = ok and self.max_abs_error <= abs_eb * (1 + 1e-12)
        return ok

    def lines(self) -> list[str]:
        out = [
            f"PSNR            {self.psnr:10.3f} dB",
            f"RMSE            {self.rmse:10.4g}",
            f"max |error|     {self.max_abs_error:10.4g}",
            f"mean |error|    {self.mean_abs_error:10.4g}",
            f"value range     {self.value_range:10.4g}",
            f"Pearson r       {self.pearson:10.7f}",
            f"Wasserstein     {self.wasserstein:10.4g}",
            f"err autocorr    {self.error_autocorr:10.4f}",
        ]
        if self.ssim is not None:
            out.append(f"SSIM            {self.ssim:10.6f}")
        return out

    def text(self) -> str:
        return "\n".join(self.lines())


def assess(original: np.ndarray, reconstructed: np.ndarray,
           mask: np.ndarray | None = None) -> QualityReport:
    """Compute the full quality report for a reconstruction."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    return QualityReport(
        psnr=psnr(a, b, mask),
        rmse=rmse(a, b, mask),
        max_abs_error=max_abs_error(a, b, mask),
        mean_abs_error=mean_abs_error(a, b, mask),
        value_range=value_range(a, mask),
        pearson=pearson_correlation(a, b, mask),
        wasserstein=wasserstein_distance(a, b, mask),
        error_autocorr=error_autocorrelation(a, b, mask),
        ssim=ssim_metric(a, b, mask=mask) if a.ndim >= 2 else None,
    )
