"""repro — a from-scratch reproduction of CliZ (IPDPS 2024).

CliZ is an error-bounded lossy compressor optimized for climate datasets:
mask-map-aware spline prediction, dimension permutation/fusion, periodic
component extraction, and multi-Huffman quantization-bin classification on
top of the SZ3 framework. This package implements CliZ, the substrates it
builds on, the four baselines it is evaluated against (SZ3, QoZ, ZFP,
SPERR), synthetic equivalents of the paper's climate datasets, the
evaluation metrics, and a WAN-transfer simulator.

Quick start::

    import numpy as np
    from repro import CliZ, decompress

    data = np.fromfile("field.f32", dtype=np.float32).reshape(26, 180, 360)
    blob = CliZ().compress(data, rel_eb=1e-3)
    recon = decompress(blob)          # routes on the embedded codec tag

All codec exports resolve lazily (PEP 562): importing ``repro`` itself —
or a stdlib-only subpackage such as :mod:`repro.analysis` — never pulls in
numpy, so ``repro-lint`` can run in environments without the scientific
stack installed.
"""

from __future__ import annotations

import importlib

__version__ = "1.0.0"

__all__ = [
    "CliZ",
    "SZ3",
    "SZ2",
    "QoZ",
    "ZFP",
    "SPERR",
    "TTHRESH",
    "BitGrooming",
    "DigitRounding",
    "AutoTuner",
    "PipelineConfig",
    "Layout",
    "Container",
    "compressor_for",
    "decompress",
    "COMPRESSORS",
]

#: Lazily resolved public symbols: name -> (defining module, attribute).
_LAZY_EXPORTS = {
    "CliZ": ("repro.core", "CliZ"),
    "AutoTuner": ("repro.core", "AutoTuner"),
    "PipelineConfig": ("repro.core", "PipelineConfig"),
    "Layout": ("repro.core", "Layout"),
    "SZ3": ("repro.baselines", "SZ3"),
    "SZ2": ("repro.baselines", "SZ2"),
    "QoZ": ("repro.baselines", "QoZ"),
    "ZFP": ("repro.baselines", "ZFP"),
    "SPERR": ("repro.baselines", "SPERR"),
    "TTHRESH": ("repro.baselines", "TTHRESH"),
    "BitGrooming": ("repro.baselines", "BitGrooming"),
    "DigitRounding": ("repro.baselines", "DigitRounding"),
    "Container": ("repro.encoding.container", "Container"),
}

#: Registry of available compressors: codec name -> exported class name.
#: Materialized into ``COMPRESSORS`` (codec name -> class) on first access.
_CODEC_NAMES = {
    "cliz": "CliZ",
    "sz3": "SZ3",
    "sz2": "SZ2",
    "qoz": "QoZ",
    "zfp": "ZFP",
    "sperr": "SPERR",
    "tthresh": "TTHRESH",
    "bitgroom": "BitGrooming",
    "digitround": "DigitRounding",
}


def _resolve(name: str):
    module, attr = _LAZY_EXPORTS[name]
    value = getattr(importlib.import_module(module), attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def _compressors() -> dict:
    registry = globals().get("COMPRESSORS")
    if registry is None:
        registry = {codec: _resolve(cls) for codec, cls in _CODEC_NAMES.items()}
        globals()["COMPRESSORS"] = registry
    return registry


def __getattr__(name: str):
    if name == "COMPRESSORS":
        return _compressors()
    if name in _LAZY_EXPORTS:
        return _resolve(name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))


def compressor_for(name: str):
    """Instantiate a compressor by codec name (``'cliz'``, ``'sz3'``, ...)."""
    try:
        return _compressors()[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {sorted(_CODEC_NAMES)}"
        ) from None


def decompress(blob: bytes):
    """Decompress any blob produced by this package (routes on codec tag)."""
    from repro.encoding.container import Container

    codec = Container.peek_codec(blob)
    if codec == "chunked":
        from repro.parallel import decompress_chunked

        return decompress_chunked(blob)
    return compressor_for(codec).decompress(blob)
