"""repro — a from-scratch reproduction of CliZ (IPDPS 2024).

CliZ is an error-bounded lossy compressor optimized for climate datasets:
mask-map-aware spline prediction, dimension permutation/fusion, periodic
component extraction, and multi-Huffman quantization-bin classification on
top of the SZ3 framework. This package implements CliZ, the substrates it
builds on, the four baselines it is evaluated against (SZ3, QoZ, ZFP,
SPERR), synthetic equivalents of the paper's climate datasets, the
evaluation metrics, and a WAN-transfer simulator.

Quick start::

    import numpy as np
    from repro import CliZ, decompress

    data = np.fromfile("field.f32", dtype=np.float32).reshape(26, 180, 360)
    blob = CliZ().compress(data, rel_eb=1e-3)
    recon = decompress(blob)          # routes on the embedded codec tag
"""

from repro.baselines import BitGrooming, DigitRounding, QoZ, SPERR, SZ2, SZ3, TTHRESH, ZFP
from repro.core import AutoTuner, CliZ, Layout, PipelineConfig
from repro.encoding.container import Container

__version__ = "1.0.0"

__all__ = [
    "CliZ",
    "SZ3",
    "SZ2",
    "QoZ",
    "ZFP",
    "SPERR",
    "TTHRESH",
    "BitGrooming",
    "DigitRounding",
    "AutoTuner",
    "PipelineConfig",
    "Layout",
    "Container",
    "compressor_for",
    "decompress",
    "COMPRESSORS",
]

#: Registry of available compressors by codec name.
COMPRESSORS = {
    "cliz": CliZ,
    "sz3": SZ3,
    "sz2": SZ2,
    "qoz": QoZ,
    "zfp": ZFP,
    "sperr": SPERR,
    "tthresh": TTHRESH,
    "bitgroom": BitGrooming,
    "digitround": DigitRounding,
}


def compressor_for(name: str):
    """Instantiate a compressor by codec name (``'cliz'``, ``'sz3'``, ...)."""
    try:
        return COMPRESSORS[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown codec {name!r}; available: {sorted(COMPRESSORS)}") from None


def decompress(blob: bytes):
    """Decompress any blob produced by this package (routes on codec tag)."""
    codec = Container.peek_codec(blob)
    if codec == "chunked":
        from repro.parallel import decompress_chunked

        return decompress_chunked(blob)
    return compressor_for(codec).decompress(blob)
