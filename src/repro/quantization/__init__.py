"""Error-bounded quantization."""

from repro.quantization.linear import DEFAULT_RADIUS, UNPREDICTABLE, LinearQuantizer

__all__ = ["LinearQuantizer", "DEFAULT_RADIUS", "UNPREDICTABLE"]
