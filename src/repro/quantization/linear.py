"""Fixed-bin-size linear-scale quantization with a hard error guarantee.

This is the SZ-family quantizer: prediction residuals are mapped to integer
bins of width ``2 * eb``; reconstruction adds the bin center back onto the
prediction, so every quantized point satisfies ``|x - x̂| <= eb`` exactly.
Residuals whose bin would overflow the radius — or whose floating-point
round-trip would violate the bound — escape to lossless storage
("unpredictable" values, code 0 in the stream).

Stream convention (shared by the interpolation engine and the encoders)::

    code = 0                      -> unpredictable, exact value stored aside
    code = q + radius, q != ±radius -> reconstructed as pred + 2*eb*q

so the code alphabet is ``[0, 2*radius)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearQuantizer", "DEFAULT_RADIUS", "UNPREDICTABLE"]

DEFAULT_RADIUS = 32768
UNPREDICTABLE = 0


class LinearQuantizer:
    """Vectorized error-bounded linear quantizer.

    Parameters
    ----------
    error_bound:
        Absolute pointwise error bound (> 0).
    radius:
        Half-width of the usable bin range. Codes live in ``[0, 2*radius)``.
    """

    def __init__(self, error_bound: float, radius: int = DEFAULT_RADIUS) -> None:
        if error_bound <= 0 or not np.isfinite(error_bound):
            raise ValueError(f"error_bound must be finite and positive, got {error_bound}")
        if radius < 2:
            raise ValueError("radius must be >= 2")
        self.error_bound = float(error_bound)
        self.radius = int(radius)
        self._bin_width = 2.0 * self.error_bound

    @property
    def alphabet_size(self) -> int:
        return 2 * self.radius

    # ------------------------------------------------------------------ #
    def quantize(self, values: np.ndarray, preds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Quantize ``values`` against ``preds``.

        Returns ``(codes, reconstructed)`` where ``codes`` is an int64 array
        (0 marks unpredictable points whose reconstruction equals the exact
        value) and ``reconstructed`` honours the error bound everywhere.
        """
        values = np.asarray(values, dtype=np.float64)
        preds = np.asarray(preds, dtype=np.float64)
        err = values - preds
        q = np.rint(err / self._bin_width)
        # Keep |q| strictly below radius so code = q + radius stays in range.
        in_range = np.abs(q) < self.radius
        q = np.where(in_range, q, 0.0)
        rec = preds + q * self._bin_width
        # Floating-point safety: verify the bound actually holds.
        ok = in_range & (np.abs(rec - values) <= self.error_bound) & np.isfinite(rec)
        codes = np.where(ok, q.astype(np.int64) + self.radius, UNPREDICTABLE)
        rec = np.where(ok, rec, values)
        return codes, rec

    def quantize_into(self, values: np.ndarray, preds: np.ndarray,
                      codes_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fused variant of :meth:`quantize`: codes land in ``codes_out``.

        Bit-identical to :meth:`quantize` (same operations in the same
        order), but writes the int64 codes into the caller-provided
        ``codes_out`` (shaped like ``values``, typically a view into a
        preallocated stream) instead of allocating a fresh array, and
        returns ``(reconstructed, ok)`` where ``ok`` marks predictable
        points (``~ok`` selects the unpredictable values, in C order).
        ``values`` may be a strided view; it is never written to.
        """
        values = np.asarray(values, dtype=np.float64)
        q = values - preds
        np.divide(q, self._bin_width, out=q)
        np.rint(q, out=q)
        scratch = np.abs(q)
        ok = scratch < self.radius  # in-range lanes (False for NaN, as in quantize)
        np.logical_not(ok, out=ok)
        np.copyto(q, 0.0, where=ok)  # zero out-of-range / non-finite lanes
        np.logical_not(ok, out=ok)
        rec = np.multiply(q, self._bin_width, out=scratch)
        np.add(rec, preds, out=rec)
        err = np.subtract(rec, values)
        np.abs(err, out=err)
        bound_ok = err <= self.error_bound
        ok &= bound_ok
        np.isfinite(rec, out=bound_ok)
        ok &= bound_ok
        # q is integer-valued and |q| < radius, so q + radius is exact and
        # the int64 cast below truncates losslessly.
        np.add(q, float(self.radius), out=q)
        codes_out[...] = q
        np.logical_not(ok, out=bound_ok)
        np.copyto(codes_out, UNPREDICTABLE, where=bound_ok)
        np.copyto(rec, values, where=bound_ok)
        return rec, ok

    def dequantize(self, codes: np.ndarray, preds: np.ndarray,
                   unpredictable: np.ndarray) -> np.ndarray:
        """Reconstruct values from stream codes.

        ``unpredictable`` supplies exact values for code-0 entries, in C-order
        of their appearance within ``codes``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        preds = np.asarray(preds, dtype=np.float64)
        rec = preds + (codes - self.radius) * self._bin_width
        unpred_mask = codes == UNPREDICTABLE
        n_unpred = int(unpred_mask.sum())
        if n_unpred:
            vals = np.asarray(unpredictable, dtype=np.float64)
            if vals.size < n_unpred:
                raise ValueError("not enough unpredictable values in stream")
            rec[unpred_mask] = vals[:n_unpred]
        return rec

    def count_unpredictable(self, codes: np.ndarray) -> int:
        return int((np.asarray(codes) == UNPREDICTABLE).sum())
