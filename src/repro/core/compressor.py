"""The CliZ error-bounded lossy compressor (the paper's contribution).

``CliZ.compress`` orchestrates the full pipeline of Fig. 1:

1. optional mask-map handling (§VI-B): masked points are excluded from the
   stream, never referenced by predictions, and restored to the dataset's
   fill value on decompression;
2. optional periodic-component extraction (§VI-D): FFT-estimated period,
   template/residual split, each compressed with its own share of the error
   bound;
3. layout transform (§VI-C): dimension permutation + fusion;
4. multigrid spline prediction with mask-aware Theorem-1 coefficients and
   linear-scale quantization (the SZ3 framework);
5. optional quantization-bin classification + multi-Huffman coding (§VI-E),
   otherwise classic single-tree Huffman; both post-processed by LZ.

The output is a self-describing :class:`~repro.encoding.container.Container`
blob; ``CliZ.decompress`` needs nothing but the blob.
"""

from __future__ import annotations

import numpy as np

from repro.core.binclass import BinClassification, classify_bins, undo_shift
from repro.core.codec import (
    decode_code_stream,
    decode_floats,
    encode_code_stream,
    encode_floats,
)
from repro.core.dims import apply_layout, undo_layout
from repro.core.periodicity import detect_period, merge_periodic, split_periodic
from repro.core.pipeline import PipelineConfig
from repro.encoding.container import Container
from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.multihuffman import decode_grouped, encode_grouped
from repro.encoding.rle import pack_bitmap, unpack_bitmap
from repro.prediction.interpolation import (
    InterpSpec,
    interp_compress,
    interp_decompress,
    traversal_indices,
)
from repro.obs import inc_counter, set_gauge, span as profile_stage, traced_compress, traced_decompress
from repro.utils.validation import check_array, check_error_bound, check_mask, ensure_float

__all__ = ["CliZ", "resolve_error_bound"]

_CODEC = "cliz"


def resolve_error_bound(data: np.ndarray, abs_eb: float | None, rel_eb: float | None,
                        mask: np.ndarray | None = None) -> float:
    """Turn (absolute | relative) user bounds into one absolute bound.

    Relative bounds are scaled by the value range of *valid* points, the
    convention used throughout the paper's evaluation.
    """
    if (abs_eb is None) == (rel_eb is None):
        raise ValueError("specify exactly one of abs_eb / rel_eb")
    if abs_eb is not None:
        return check_error_bound(abs_eb, name="abs_eb")
    rel = check_error_bound(rel_eb, name="rel_eb")
    vals = data[mask] if mask is not None else data
    if vals.size == 0:
        raise ValueError(
            "mask excludes every point: cannot resolve a relative error bound "
            "against an empty value range (pass abs_eb, or a mask with at "
            "least one True entry)"
        )
    rng = float(np.max(vals) - np.min(vals))
    if rng <= 0.0:
        return rel  # constant field: any positive bound works
    return rel * rng


def _hpos_grid(shape: tuple[int, ...], horiz_axes: tuple[int, int]) -> np.ndarray:
    """Flat horizontal-location index (lat * n_lon + lon) per grid point."""
    lat, lon = horiz_axes
    n_lon = shape[lon]
    lat_idx = np.arange(shape[lat], dtype=np.int64).reshape(
        tuple(-1 if i == lat else 1 for i in range(len(shape)))
    )
    lon_idx = np.arange(n_lon, dtype=np.int64).reshape(
        tuple(-1 if i == lon else 1 for i in range(len(shape)))
    )
    return np.ascontiguousarray(np.broadcast_to(lat_idx * n_lon + lon_idx, shape))


def _mask_time_invariant(mask: np.ndarray, time_axis: int) -> bool:
    moved = np.moveaxis(mask, time_axis, 0)
    return bool((moved == moved[0]).all())


class CliZ:
    """CliZ compressor facade.

    Parameters
    ----------
    config:
        The compression pipeline, usually produced by
        :class:`repro.core.autotune.AutoTuner`. Defaults to a neutral
        pipeline (natural order, cubic fitting, no extras) matching the
        data's dimensionality at compress time.
    """

    codec_name = _CODEC

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    @traced_compress
    def compress(self, data: np.ndarray, *, abs_eb: float | None = None,
                 rel_eb: float | None = None, mask: np.ndarray | None = None,
                 fill_value: float | None = None) -> bytes:
        """Compress ``data`` under a pointwise error bound; returns a blob.

        ``mask`` marks valid points (True). ``fill_value`` is what masked
        points decompress to (default: the first masked value in ``data``,
        matching CESM files where invalid points carry a fill constant).
        """
        return self._compress_impl(data, abs_eb=abs_eb, rel_eb=rel_eb,
                                   mask=mask, fill_value=fill_value)

    def _compress_impl(self, data: np.ndarray, *, abs_eb: float | None,
                       rel_eb: float | None, mask: np.ndarray | None,
                       fill_value: float | None) -> bytes:
        arr = check_array(data)
        orig_dtype = arr.dtype
        work = ensure_float(arr)
        cfg = self.config or PipelineConfig.default(work.ndim)
        if cfg.layout.ndim_in != work.ndim:
            raise ValueError(
                f"config layout is {cfg.layout.ndim_in}D but data is {work.ndim}D"
            )
        mask = check_mask(mask, work.shape)
        eb = resolve_error_bound(work, abs_eb, rel_eb, mask)
        use_mask = mask is not None and cfg.use_mask
        eff_mask = mask if use_mask else None

        if fill_value is None:
            if mask is not None and (~mask).any():
                fill_value = float(work[~mask].flat[0])
            else:
                fill_value = 0.0

        container = Container(_CODEC)
        header: dict = {
            "shape": list(work.shape),
            "dtype": orig_dtype.str,
            "eb": eb,
            "config": cfg.to_dict(),
            "fill_value": float(fill_value),
            "has_mask": bool(use_mask),
        }
        if use_mask:
            with profile_stage("mask.pack"):
                container.add_section("mask", pack_bitmap(eff_mask))

        # ---- periodic split ------------------------------------------- #
        period = None
        if cfg.periodic and cfg.time_axis is not None:
            n_time = work.shape[cfg.time_axis]
            mask_ok = eff_mask is None or _mask_time_invariant(eff_mask, cfg.time_axis)
            if n_time >= 8 and mask_ok:
                period = cfg.period or detect_period(work, cfg.time_axis, mask=eff_mask)
                if period is not None and not (2 <= period <= n_time // 2):
                    period = None
        header["period"] = period

        components: list[dict] = []
        if period is not None:
            template, residual = split_periodic(work, cfg.time_axis, period)
            eb_t = eb * cfg.template_eb_ratio
            eb_r = eb - eb_t
            t_mask = r_mask = None
            if eff_mask is not None:
                moved = np.moveaxis(eff_mask, cfg.time_axis, 0)
                t_mask = np.ascontiguousarray(
                    np.moveaxis(moved[:period], 0, cfg.time_axis)
                )
                r_mask = eff_mask
            self._compress_component("template", template, eb_t, t_mask, cfg,
                                     container, components)
            self._compress_component("residual", residual, eb_r, r_mask, cfg,
                                     container, components)
        else:
            self._compress_component("main", work, eb, eff_mask, cfg,
                                     container, components)

        header["components"] = components
        container.header = header
        return container.to_bytes()

    def _compress_component(self, name: str, arr: np.ndarray, eb: float,
                            mask: np.ndarray | None, cfg: PipelineConfig,
                            container: Container, components: list[dict]) -> None:
        laid = apply_layout(arr, cfg.layout)
        lmask = apply_layout(mask, cfg.layout) if mask is not None else None
        order = tuple(range(laid.ndim))
        spec = InterpSpec(order=order, fitting=cfg.fitting)
        with profile_stage("predict+quantize", nbytes=laid.nbytes, component=name):
            res = interp_compress(laid, eb, spec, mask=lmask)
        if res.codes.size:
            set_gauge(f"cliz.quantize.hit_rate.{name}",
                      1.0 - res.unpredictable.size / res.codes.size)
        if res.fit_choices:
            for fit in res.fit_choices:
                inc_counter("cliz.predictor.cubic" if fit else "cliz.predictor.linear")
        else:
            inc_counter(f"cliz.predictor.{cfg.fitting}")

        if cfg.binclass and cfg.horiz_axes is not None:
            with profile_stage("binclass"):
                hgrid = apply_layout(_hpos_grid(arr.shape, cfg.horiz_axes), cfg.layout).ravel()
                tidx = traversal_indices(laid.shape, order, lmask)
                hpos = hgrid[tidx]
                lat, lon = cfg.horiz_axes
                n_hpos = arr.shape[lat] * arr.shape[lon]
                cls, shifted, groups = classify_bins(
                    res.codes, hpos, n_hpos, spec.radius,
                    j=cfg.binclass_j, k=cfg.binclass_k, lam=cfg.binclass_lambda,
                )
            with profile_stage("encode.codes"):
                grouped = encode_grouped(shifted, groups, cls.n_groups)
                with profile_stage("lz.compress", nbytes=len(grouped)):
                    blob = lz_compress(grouped)
                container.add_section(f"{name}.codes", blob)
            container.add_section(f"{name}.cls", cls.serialize())
        else:
            with profile_stage("encode.codes"):
                container.add_section(f"{name}.codes", encode_code_stream(res.codes))
        with profile_stage("encode.unpred"):
            container.add_section(f"{name}.unpred", encode_floats(res.unpredictable))
        components.append({
            "name": name,
            "eb": eb,
            "shape": list(arr.shape),
            "mask": mask is not None,
        })

    # ------------------------------------------------------------------ #
    @traced_decompress
    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct the array from a CliZ container blob."""
        return self._decompress_impl(blob)

    def _decompress_impl(self, blob: bytes) -> np.ndarray:
        container = Container.from_bytes(blob)
        if container.codec != _CODEC:
            raise ValueError(f"not a CliZ stream (codec {container.codec!r})")
        header = container.header
        cfg = PipelineConfig.from_dict(header["config"])
        shape = tuple(header["shape"])
        mask = None
        if header["has_mask"]:
            with profile_stage("mask.unpack"):
                mask = unpack_bitmap(container.section("mask"), shape=shape)

        period = header["period"]
        parts: dict[str, np.ndarray] = {}
        for comp in header["components"]:
            name = comp["name"]
            comp_shape = tuple(comp["shape"])
            comp_mask = mask
            if mask is not None and comp_shape != shape:
                # template component: mask restricted to the first period
                moved = np.moveaxis(mask, cfg.time_axis, 0)
                comp_mask = np.ascontiguousarray(
                    np.moveaxis(moved[: comp_shape[cfg.time_axis]], 0, cfg.time_axis)
                )
            parts[name] = self._decompress_component(
                name, comp_shape, comp["eb"], comp_mask if comp["mask"] else None,
                cfg, container,
            )

        if period is not None:
            work = merge_periodic(parts["template"], parts["residual"], cfg.time_axis)
        else:
            work = parts["main"]

        if mask is not None:
            work[~mask] = header["fill_value"]
        return work.astype(np.dtype(header["dtype"]), copy=False)

    def _decompress_component(self, name: str, shape: tuple[int, ...], eb: float,
                              mask: np.ndarray | None, cfg: PipelineConfig,
                              container: Container) -> np.ndarray:
        laid_shape = cfg.layout.fused_shape(shape)
        lmask = apply_layout(mask, cfg.layout) if mask is not None else None
        order = tuple(range(len(laid_shape)))
        spec = InterpSpec(order=order, fitting=cfg.fitting)

        if container.has_section(f"{name}.cls"):
            with profile_stage("decode.codes"):
                cls = BinClassification.deserialize(container.section(f"{name}.cls"))
                hgrid = apply_layout(_hpos_grid(shape, cfg.horiz_axes), cfg.layout).ravel()
                tidx = traversal_indices(laid_shape, order, lmask)
                hpos = hgrid[tidx]
                section = container.section(f"{name}.codes")
                with profile_stage("lz.decompress", nbytes=len(section)):
                    grouped_blob = lz_decompress(section)
                groups = cls.group_map[hpos]
                shifted, _ = decode_grouped(grouped_blob, groups)
                codes = undo_shift(shifted, hpos, cls)
        else:
            with profile_stage("decode.codes"):
                codes = decode_code_stream(container.section(f"{name}.codes"))
        with profile_stage("decode.unpred"):
            unpred = decode_floats(container.section(f"{name}.unpred"))
        with profile_stage("reconstruct", nbytes=codes.size * 8):
            laid = interp_decompress(laid_shape, eb, spec, codes, unpred, mask=lmask)
        return undo_layout(laid, shape, cfg.layout)
