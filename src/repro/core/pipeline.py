"""Compression-pipeline configuration (the auto-tuner's decision variable).

A :class:`PipelineConfig` captures everything §VI-A says the tuner decides:

1. the dimension sequence and fusion (:class:`repro.core.dims.Layout`),
2. whether to attempt periodic-component extraction (the *period itself* is
   measured at compression time, as the paper specifies),
3. whether to use quantization-bin classification,
4. which fitting function (linear/cubic) to use,

plus what the paper says the pipeline does *not* include — mask usage is a
user decision (``use_mask``), and the per-location classification maps and
extracted template are produced during actual compression.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.dims import Layout, layout_name

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Full CliZ pipeline description for one dataset family."""

    layout: Layout
    fitting: str = "cubic"  # 'linear' | 'cubic'
    periodic: bool = False
    time_axis: int | None = None
    period: int | None = None  # None -> detect during compression
    binclass: bool = False
    horiz_axes: tuple[int, int] | None = None  # (lat, lon) original axes
    use_mask: bool = True
    template_eb_ratio: float = 0.1  # fraction of eb granted to the template
    # (the template is ~1/n_periods of the data volume, so it can afford a
    # tight bound; 0.1 sits on the flat optimum of the eb-split ablation)
    binclass_j: int = 1
    binclass_k: int = 1
    binclass_lambda: float = 0.4

    def __post_init__(self) -> None:
        if self.fitting not in ("linear", "cubic"):
            raise ValueError(f"fitting must be 'linear' or 'cubic', got {self.fitting!r}")
        if self.periodic and self.time_axis is None:
            raise ValueError("periodic pipelines need a time_axis")
        if self.binclass and self.horiz_axes is None:
            raise ValueError("bin classification needs horiz_axes (lat, lon)")
        if not (0.0 < self.template_eb_ratio < 1.0):
            raise ValueError("template_eb_ratio must be in (0, 1)")
        if self.horiz_axes is not None and len(self.horiz_axes) != 2:
            raise ValueError("horiz_axes must name exactly two axes")

    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls, ndim: int) -> "PipelineConfig":
        """A neutral pipeline: natural order, no fusion, cubic, no extras."""
        return cls(layout=Layout.identity(ndim))

    def with_(self, **changes) -> "PipelineConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

    def describe(self) -> str:
        parts = [f"layout={layout_name(self.layout)}", f"fit={self.fitting}"]
        if self.periodic:
            parts.append(f"periodic(axis={self.time_axis}, period={self.period or 'auto'})")
        if self.binclass:
            parts.append(f"binclass(axes={self.horiz_axes}, λ={self.binclass_lambda})")
        if not self.use_mask:
            parts.append("mask=off")
        return " ".join(parts)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "layout": self.layout.to_dict(),
            "fitting": self.fitting,
            "periodic": self.periodic,
            "time_axis": self.time_axis,
            "period": self.period,
            "binclass": self.binclass,
            "horiz_axes": list(self.horiz_axes) if self.horiz_axes else None,
            "use_mask": self.use_mask,
            "template_eb_ratio": self.template_eb_ratio,
            "binclass_j": self.binclass_j,
            "binclass_k": self.binclass_k,
            "binclass_lambda": self.binclass_lambda,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PipelineConfig":
        return cls(
            layout=Layout.from_dict(d["layout"]),
            fitting=d["fitting"],
            periodic=d["periodic"],
            time_axis=d["time_axis"],
            period=d["period"],
            binclass=d["binclass"],
            horiz_axes=tuple(d["horiz_axes"]) if d["horiz_axes"] else None,
            use_mask=d["use_mask"],
            template_eb_ratio=d["template_eb_ratio"],
            binclass_j=d.get("binclass_j", 1),
            binclass_k=d.get("binclass_k", 1),
            binclass_lambda=d.get("binclass_lambda", 0.4),
        )
