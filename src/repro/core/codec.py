"""Shared serialization helpers for SZ-family code streams.

Every prediction-based compressor here (SZ3, QoZ, CliZ) stores three kinds
of payload: a Huffman-coded quantization-code stream, an exact
unpredictable-value list, and small metadata. These helpers give them one
consistent, LZ-post-processed wire format (Huffman + LZ = the SZ3 pipeline
with our from-scratch Zstd stand-in).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.bitstream import BitWriter
from repro.encoding.codebook import active_cache
from repro.encoding.huffman import HuffmanCode
from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.varint import decode_uvarint, encode_uvarint
from repro.obs import span as profile_stage

__all__ = [
    "encode_code_stream",
    "decode_code_stream",
    "encode_floats",
    "decode_floats",
    "encode_bits",
    "decode_bits",
]


def encode_code_stream(codes: np.ndarray) -> bytes:
    """Huffman-encode an int code stream and LZ the result."""
    codes = np.asarray(codes, dtype=np.int64).ravel()
    payload = bytearray()
    encode_uvarint(codes.size, payload)
    if codes.size:
        with profile_stage("huffman.encode", nbytes=codes.size * 8):
            cache = active_cache()
            if cache is not None:
                code = cache.code_for("stream", codes)
            else:
                code = HuffmanCode.from_symbols(codes)
            table = code.serialize()
            encode_uvarint(len(table), payload)
            payload += table
            writer = BitWriter()
            code.encode(codes, writer)
            encode_uvarint(writer.bit_length, payload)
            payload += writer.getvalue()
    with profile_stage("lz.compress", nbytes=len(payload)):
        return lz_compress(bytes(payload))


def decode_code_stream(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_code_stream`."""
    with profile_stage("lz.decompress", nbytes=len(blob)):
        payload = lz_decompress(blob)
    n, pos = decode_uvarint(payload, 0)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    table_len, pos = decode_uvarint(payload, pos)
    code, _ = HuffmanCode.deserialize(payload[pos : pos + table_len])
    pos += table_len
    bit_len, pos = decode_uvarint(payload, pos)
    with profile_stage("huffman.decode", nbytes=len(payload) - pos):
        codes, _ = code.decode(payload[pos:], n)
    return codes


def encode_floats(values: np.ndarray) -> bytes:
    """Serialize a float64 array losslessly (raw IEEE bytes + LZ)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    with profile_stage("lz.compress", nbytes=arr.nbytes):
        return lz_compress(arr.tobytes())


def decode_floats(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_floats`."""
    with profile_stage("lz.decompress", nbytes=len(blob)):
        raw = lz_decompress(blob)
    return np.frombuffer(raw, dtype=np.float64).copy()


def encode_bits(bits: list[int] | np.ndarray) -> bytes:
    """Serialize a short 0/1 sequence (e.g. QoZ per-step fit choices)."""
    arr = np.asarray(bits, dtype=np.uint8)
    out = bytearray()
    encode_uvarint(arr.size, out)
    if arr.size:
        out += np.packbits(arr).tobytes()
    return bytes(out)


def decode_bits(blob: bytes) -> list[int]:
    """Inverse of :func:`encode_bits`."""
    n, pos = decode_uvarint(blob, 0)
    if n == 0:
        return []
    bits = np.unpackbits(np.frombuffer(blob[pos:], dtype=np.uint8))[:n]
    return bits.astype(int).tolist()
