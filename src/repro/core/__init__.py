"""CliZ core: the paper's contribution (pipeline, tuner, compressor)."""

from repro.core.autotune import AutoTuner, AutoTuneResult, TrialResult
from repro.core.binclass import BinClassification, classify_bins, undo_shift
from repro.core.compressor import CliZ, resolve_error_bound
from repro.core.dims import Layout, apply_layout, enumerate_layouts, layout_name, undo_layout
from repro.core.periodicity import detect_period, merge_periodic, row_spectra, split_periodic
from repro.core.pipeline import PipelineConfig

__all__ = [
    "AutoTuner",
    "AutoTuneResult",
    "TrialResult",
    "BinClassification",
    "classify_bins",
    "undo_shift",
    "CliZ",
    "resolve_error_bound",
    "Layout",
    "apply_layout",
    "undo_layout",
    "enumerate_layouts",
    "layout_name",
    "detect_period",
    "split_periodic",
    "merge_periodic",
    "row_spectra",
    "PipelineConfig",
]
