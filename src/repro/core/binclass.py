"""Quantization-bin classification (paper §VI-E).

Topography leaves per-location signatures in the quantization bins: at a
given (lat, lon) position the bins across heights/timesteps are *shifted*
(peak away from 0) or *dispersed* (no dominant bin). Mixing both patterns
into one Huffman tree wastes bits, so CliZ

1. **shifts** each location's bins so its modal bin becomes 0 (shifts are
   limited to ±j, j=1 — the paper found larger j unprofitable),
2. **classifies** locations into concentrated vs dispersed by whether the
   post-shift peak frequency exceeds λ = 0.4 (Theorem 2's optimum), and
3. encodes each class with its own Huffman tree
   (:mod:`repro.encoding.multihuffman`), storing a per-location map that
   costs about ``log2((2j+1)(k+1))`` bits per location.

Everything here operates on the engine's code stream (code 0 = the
unpredictable escape and is never shifted; a guard forces shift 0 at
locations where shifting would collide with the escape code).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.encoding.lz import lz_compress, lz_decompress
from repro.encoding.multihuffman import grouped_cost_bits, single_cost_bits
from repro.quantization.linear import UNPREDICTABLE

__all__ = ["BinClassification", "classify_bins", "undo_shift", "classification_gain_bits",
           "LAMBDA_DEFAULT"]

#: Theorem 2's optimal dispersion threshold.
LAMBDA_DEFAULT = 0.4


@dataclass
class BinClassification:
    """Per-horizontal-location shift and dispersion-group maps."""

    shift_map: np.ndarray  # int64 per location, in [-j, j]
    group_map: np.ndarray  # int64 per location, in [0, k]
    j: int
    k: int

    @property
    def n_groups(self) -> int:
        return self.k + 1

    def serialize(self) -> bytes:
        """Pack the per-location map at ~log2((2j+1)(k+1)) bits and LZ it.

        Values are radix-packed (as many per byte as fit) so the raw cost
        matches the paper's accounting even when the map is speckled, and
        spatially coherent maps compress further under LZ.
        """
        combined = (self.shift_map + self.j) * (self.k + 1) + self.group_map
        base = (2 * self.j + 1) * (self.k + 1)
        if base == 1:  # degenerate j=k=0 map carries no information
            payload = bytearray([self.j, self.k])
            payload += int(combined.size).to_bytes(4, "little")
            return lz_compress(bytes(payload))
        per_byte = 1
        while base ** (per_byte + 1) <= 256:
            per_byte += 1
        n = combined.size
        pad = (-n) % per_byte
        vals = np.concatenate([combined, np.zeros(pad, dtype=np.int64)])
        packed = np.zeros(vals.size // per_byte, dtype=np.int64)
        for i in range(per_byte):
            packed = packed * base + vals[i::per_byte]
        payload = bytearray([self.j, self.k])
        payload += n.to_bytes(4, "little")
        payload += packed.astype(np.uint8).tobytes()
        return lz_compress(bytes(payload))

    @classmethod
    def deserialize(cls, blob: bytes) -> "BinClassification":
        payload = lz_decompress(blob)
        j, k = payload[0], payload[1]
        n = int.from_bytes(payload[2:6], "little")
        base = (2 * j + 1) * (k + 1)
        if base == 1:
            zeros = np.zeros(n, dtype=np.int64)
            return cls(zeros, zeros.copy(), j, k)
        per_byte = 1
        while base ** (per_byte + 1) <= 256:
            per_byte += 1
        packed = np.frombuffer(payload[6:], dtype=np.uint8).astype(np.int64)
        vals = np.empty(packed.size * per_byte, dtype=np.int64)
        for i in range(per_byte - 1, -1, -1):
            vals[i::per_byte] = packed % base
            packed = packed // base
        combined = vals[:n]
        shift_map = combined // (k + 1) - j
        group_map = combined % (k + 1)
        return cls(shift_map, group_map, j, k)


def _location_mode_shift(codes: np.ndarray, hpos: np.ndarray, n_hpos: int,
                         radius: int, j: int) -> np.ndarray:
    """Per-location shift: the bin in [-j, j] with the highest frequency."""
    q = codes - radius
    sel = (codes != UNPREDICTABLE) & (np.abs(q) <= j)
    span = 2 * j + 1
    counts = np.zeros(n_hpos * span, dtype=np.int64)
    np.add.at(counts, hpos[sel] * span + (q[sel] + j), 1)
    counts = counts.reshape(n_hpos, span)
    shift = counts.argmax(axis=1) - j
    shift[counts.max(axis=1) == 0] = 0
    return shift.astype(np.int64)


def _collision_guard(codes: np.ndarray, hpos: np.ndarray, shift: np.ndarray,
                     radius: int) -> np.ndarray:
    """Zero out shifts that would map a real code onto the escape code 0 or
    push one past the top of the alphabet."""
    nonzero = codes != UNPREDICTABLE
    top = 2 * radius - 1
    out = shift.copy()
    for s in np.unique(shift):
        if s == 0:
            continue
        # After subtracting s, code must stay in [1, top].
        bad = nonzero & ((codes - s < 1) | (codes - s > top))
        if bad.any():
            bad_locs = np.unique(hpos[bad])
            mask = np.isin(bad_locs, np.flatnonzero(out == s))
            out[bad_locs[mask]] = 0
    return out


def _dispersion_groups(shifted: np.ndarray, hpos: np.ndarray, n_hpos: int,
                       radius: int, k: int, lam: float) -> np.ndarray:
    """Group locations by post-shift peak frequency f0 = freq(bin 0)."""
    if k == 0:
        return np.zeros(n_hpos, dtype=np.int64)
    nonzero = shifted != UNPREDICTABLE
    total = np.bincount(hpos[nonzero], minlength=n_hpos).astype(np.float64)
    at_peak = np.bincount(hpos[nonzero & (shifted == radius)], minlength=n_hpos).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        f0 = np.where(total > 0, at_peak / np.maximum(total, 1), 1.0)
    groups = np.zeros(n_hpos, dtype=np.int64)
    # k thresholds: lam, lam/2, lam/4, ... (k=1 is the paper's single-λ split)
    for level in range(1, k + 1):
        groups[f0 <= lam / (2 ** (level - 1))] = level
    return groups


def classify_bins(codes: np.ndarray, hpos: np.ndarray, n_hpos: int, radius: int,
                  j: int = 1, k: int = 1,
                  lam: float = LAMBDA_DEFAULT) -> tuple[BinClassification, np.ndarray, np.ndarray]:
    """Compute maps, shifted codes and per-entry groups for a code stream.

    Parameters
    ----------
    codes:
        Engine code stream (0 = unpredictable escape).
    hpos:
        Horizontal-location index of each stream entry (``[0, n_hpos)``).
    radius:
        Quantizer radius (code of bin 0 is ``radius``).
    j, k:
        Shift range and number of extra dispersion groups (paper: j=k=1).
    lam:
        Dispersion threshold (Theorem 2: 0.4).
    """
    codes = np.asarray(codes, dtype=np.int64)
    hpos = np.asarray(hpos, dtype=np.int64)
    if codes.shape != hpos.shape:
        raise ValueError("codes and hpos must align")
    if hpos.size and (hpos.min() < 0 or hpos.max() >= n_hpos):
        raise ValueError("hpos out of range")
    if j < 0 or k < 0:
        raise ValueError("j and k must be >= 0")
    shift = (
        _location_mode_shift(codes, hpos, n_hpos, radius, j)
        if j > 0 else np.zeros(n_hpos, dtype=np.int64)
    )
    if j > 0:
        shift = _collision_guard(codes, hpos, shift, radius)
    entry_shift = shift[hpos] if codes.size else np.zeros(0, dtype=np.int64)
    shifted = np.where(codes == UNPREDICTABLE, codes, codes - entry_shift)
    groups_map = _dispersion_groups(shifted, hpos, n_hpos, radius, k, lam)
    entry_groups = groups_map[hpos] if codes.size else np.zeros(0, dtype=np.int64)
    return BinClassification(shift, groups_map, j, k), shifted, entry_groups


def undo_shift(shifted: np.ndarray, hpos: np.ndarray, cls: BinClassification) -> np.ndarray:
    """Invert the shift applied by :func:`classify_bins`."""
    shifted = np.asarray(shifted, dtype=np.int64)
    entry_shift = cls.shift_map[hpos] if shifted.size else np.zeros(0, dtype=np.int64)
    return np.where(shifted == UNPREDICTABLE, shifted, shifted + entry_shift)


def classification_gain_bits(codes: np.ndarray, shifted: np.ndarray,
                             entry_groups: np.ndarray, n_groups: int,
                             n_hpos: int, j: int, k: int) -> float:
    """Entropy-model estimate of bits saved by classification (can be < 0).

    Charges the classification map at ``log2((2j+1)(k+1))`` bits/location,
    mirroring the paper's cost accounting.
    """
    map_bits = float(np.log2((2 * j + 1) * (k + 1))) if (j or k) else 0.0
    plain = single_cost_bits(codes)
    grouped = grouped_cost_bits(shifted, entry_groups, n_groups,
                                map_bits_per_entry=map_bits, n_map_entries=n_hpos)
    return plain - grouped
