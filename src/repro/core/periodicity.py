"""Periodic component extraction (paper §VI-D).

Climate fields follow an annual cycle: snapshots one period apart along the
time dimension resemble each other more than spatial neighbours do. CliZ
therefore splits such datasets into

* a **template** — the mean over all full periods, with the time dimension
  shrunk to one period length, and
* a **residual** — the original minus the tiled template,

compresses both separately (the residual is far smoother in every
direction), and re-assembles them at decompression.

The period is estimated exactly as in the paper: FFT amplitude spectra of a
few sampled rows along the time axis peak at the fundamental frequency
(Fig. 8's SSH example: N=1032, peak at f=86, period 12); we take the
smallest peaked frequency, i.e. the largest period.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "detect_period",
    "row_spectra",
    "split_periodic",
    "merge_periodic",
]


def _sample_rows(data: np.ndarray, time_axis: int, n_rows: int,
                 seed: int, mask: np.ndarray | None) -> np.ndarray:
    """Pick ``n_rows`` rows along the time axis (valid-only when masked)."""
    data = np.asarray(data, dtype=np.float64)
    moved = np.moveaxis(data, time_axis, -1)
    n_time = moved.shape[-1]
    flat = moved.reshape(-1, n_time)
    if mask is not None:
        mmoved = np.moveaxis(np.asarray(mask, dtype=bool), time_axis, -1)
        valid_rows = mmoved.reshape(-1, n_time).all(axis=1)
        candidates = np.flatnonzero(valid_rows)
        if candidates.size == 0:
            candidates = np.arange(flat.shape[0])
    else:
        candidates = np.arange(flat.shape[0])
    rng = np.random.default_rng(seed)
    pick = rng.choice(candidates, size=min(n_rows, candidates.size), replace=False)
    return flat[pick]


def row_spectra(data: np.ndarray, time_axis: int, n_rows: int = 10,
                seed: int = 0, mask: np.ndarray | None = None) -> np.ndarray:
    """FFT amplitude spectra of ``n_rows`` random rows along ``time_axis``.

    Returns an (n_rows, n_freq) array of |rfft| amplitudes with the DC term
    zeroed (the constant component is not a period). Rows are sampled at
    valid spatial positions when a ``mask`` is given. This reproduces the
    paper's Fig. 8 computation (FFTW on ten data rows of the SSH dataset).
    """
    rows = _sample_rows(data, time_axis, n_rows, seed, mask)
    spectra = np.abs(np.fft.rfft(rows, axis=1))
    spectra[:, 0] = 0.0
    return spectra


def _residual_ratio(rows: np.ndarray, period: int) -> float:
    """Residual-to-signal variance after removing the period-mean template.

    Near 0 for truly periodic rows, near 1 for aperiodic ones.
    """
    n_rows, n_time = rows.shape
    n_full = n_time // period
    if n_full < 2:
        return 1.0
    head = rows[:, : n_full * period]
    centred = head - head.mean(axis=1, keepdims=True)
    chunks = centred.reshape(n_rows, n_full, period)
    template = chunks.mean(axis=1)
    resid = chunks - template[:, None, :]
    denom = float(centred.var())
    if denom <= 0:
        return 0.0
    return float(resid.var()) / denom


def detect_period(data: np.ndarray, time_axis: int, n_rows: int = 10,
                  seed: int = 0, mask: np.ndarray | None = None,
                  min_peak_ratio: float = 4.0,
                  max_residual_ratio: float = 0.3) -> int | None:
    """Estimate the dominant period along ``time_axis`` (or None).

    Three stages, following the paper's method plus robustness checks:

    1. The mean FFT amplitude spectrum across sampled rows must show a clear
       peak (``min_peak_ratio`` x the median amplitude) — otherwise the data
       is treated as aperiodic. Every strongly peaked frequency proposes the
       period ``round(n/f)``; small multiples are added as candidates so the
       fundamental is found even when a harmonic bin carries more energy
       (DFT leakage when the series length is not a multiple of the period).
    2. Each candidate is scored by its template-removal residual: the
       residual/signal variance ratio after subtracting the period-mean,
       normalized by the ``1 - 1/n_chunks`` value white noise would give
       (so few-chunk overfitting does not fake periodicity).
    3. Among candidates that truly collapse the variance (adjusted ratio
       below ``max_residual_ratio``), the smallest period within 3x of the
       best score wins — this rejects divisor periods (harmonics), which is
       the paper's "adopt the peak with the smallest frequency" rule.
    """
    data = np.asarray(data)
    n_time = data.shape[time_axis]
    if n_time < 8:
        return None
    rows = _sample_rows(data, time_axis, n_rows, seed, mask)
    spectra = np.abs(np.fft.rfft(rows, axis=1))
    spectra[:, 0] = 0.0
    mean_spec = spectra.mean(axis=0)
    if not np.isfinite(mean_spec).all():
        return None
    median = np.median(mean_spec[1:])
    floor = median if median > 0 else float(mean_spec.max()) * 1e-6
    peak_amp = float(mean_spec.max())
    if peak_amp < min_peak_ratio * floor:
        return None
    strong = np.flatnonzero(mean_spec >= 0.25 * peak_amp)
    strong = strong[strong >= 1]
    candidates: set[int] = set()
    for f in strong:
        base = int(round(n_time / int(f)))
        for mult in (1, 2, 3, 4):
            p = base * mult
            if 2 <= p <= n_time // 2:
                candidates.add(p)
    if not candidates:
        return None
    adjusted: dict[int, float] = {}
    for p in candidates:
        n_chunks = n_time // p
        if n_chunks < 2:
            continue
        baseline = 1.0 - 1.0 / n_chunks  # expected ratio for white noise
        adjusted[p] = _residual_ratio(rows, p) / baseline
    eligible = {p: a for p, a in adjusted.items() if a <= max_residual_ratio}
    if not eligible:
        return None
    best = min(eligible.values())
    threshold = max(3.0 * best, 0.05)
    winners = [p for p, a in eligible.items() if a <= threshold]
    return min(winners)


def split_periodic(data: np.ndarray, time_axis: int, period: int) -> tuple[np.ndarray, np.ndarray]:
    """Decompose into (template, residual); ``data = tile(template) + residual``.

    The template is the mean over all *complete* periods; the ragged tail
    (``n_time % period`` steps) is handled by tiling the template partially.
    """
    data = np.asarray(data, dtype=np.float64)
    n_time = data.shape[time_axis]
    if not 2 <= period <= n_time:
        raise ValueError(f"period {period} out of range for time length {n_time}")
    moved = np.moveaxis(data, time_axis, 0)
    n_full = n_time // period
    head = moved[: n_full * period]
    chunks = head.reshape(n_full, period, *moved.shape[1:])
    template_moved = chunks.mean(axis=0)
    reps = int(np.ceil(n_time / period))
    tiled = np.concatenate([template_moved] * reps, axis=0)[:n_time]
    residual_moved = moved - tiled
    template = np.moveaxis(template_moved, 0, time_axis)
    residual = np.moveaxis(residual_moved, 0, time_axis)
    return np.ascontiguousarray(template), np.ascontiguousarray(residual)


def merge_periodic(template: np.ndarray, residual: np.ndarray, time_axis: int) -> np.ndarray:
    """Inverse of :func:`split_periodic`."""
    template = np.asarray(template, dtype=np.float64)
    residual = np.asarray(residual, dtype=np.float64)
    t_moved = np.moveaxis(template, time_axis, 0)
    r_moved = np.moveaxis(residual, time_axis, 0)
    n_time = r_moved.shape[0]
    period = t_moved.shape[0]
    reps = int(np.ceil(n_time / period))
    tiled = np.concatenate([t_moved] * reps, axis=0)[:n_time]
    return np.ascontiguousarray(np.moveaxis(tiled + r_moved, 0, time_axis))
