"""Dimension permutation and fusion (paper §VI-C).

The interpolation predictor makes ~``2^{i-1}/(2^n - 1)`` of its predictions
along the *i*-th processed dimension, so processing the smoothest dimension
last concentrates predictions where they are most accurate. CliZ explores:

* **Permutation** — physically transpose the array so the prediction
  traversal (which always walks axes in natural order) sees the dimensions
  in the chosen sequence. The paper writes these as digit strings
  (``"201"`` = axes (2, 0, 1) of the original array).
* **Fusion** — merge runs of adjacent (post-permutation) axes with a
  reshape. A fused dimension makes every prediction along it a long-distance
  one, which removes low-quality short-distance predictions along rough
  axes. Written ``"0&1"`` etc., indexing post-permutation positions.

A layout is the pair ``(perm, fusion_sizes)`` where ``fusion_sizes`` are the
ordered group lengths (e.g. 3D: ``(1, 1, 1)`` no fusion, ``(2, 1)`` fuse
0&1, ``(1, 2)`` fuse 1&2, ``(3,)`` fuse all). For 3D data this yields the
paper's 6 x 4 = 24 layout candidates.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

__all__ = [
    "Layout",
    "apply_layout",
    "undo_layout",
    "enumerate_layouts",
    "enumerate_fusions",
    "layout_name",
]


class Layout:
    """A (permutation, fusion) pair describing the prediction layout."""

    def __init__(self, perm: tuple[int, ...], fusion: tuple[int, ...]) -> None:
        perm = tuple(int(p) for p in perm)
        fusion = tuple(int(f) for f in fusion)
        if sorted(perm) != list(range(len(perm))):
            raise ValueError(f"perm {perm} is not a permutation")
        if sum(fusion) != len(perm) or any(f < 1 for f in fusion):
            raise ValueError(f"fusion {fusion} does not partition {len(perm)} axes")
        self.perm = perm
        self.fusion = fusion

    @property
    def ndim_in(self) -> int:
        return len(self.perm)

    @property
    def ndim_out(self) -> int:
        return len(self.fusion)

    def __eq__(self, other) -> bool:
        return isinstance(other, Layout) and (self.perm, self.fusion) == (other.perm, other.fusion)

    def __hash__(self) -> int:
        return hash((self.perm, self.fusion))

    def __repr__(self) -> str:
        return f"Layout(perm={self.perm}, fusion={self.fusion})"

    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls, ndim: int) -> "Layout":
        return cls(tuple(range(ndim)), (1,) * ndim)

    def to_dict(self) -> dict:
        return {"perm": list(self.perm), "fusion": list(self.fusion)}

    @classmethod
    def from_dict(cls, d: dict) -> "Layout":
        return cls(tuple(d["perm"]), tuple(d["fusion"]))

    def fused_shape(self, shape: tuple[int, ...]) -> tuple[int, ...]:
        permuted = [shape[p] for p in self.perm]
        out = []
        pos = 0
        for size in self.fusion:
            block = permuted[pos : pos + size]
            out.append(int(np.prod(block)))
            pos += size
        return tuple(out)


def apply_layout(data: np.ndarray, layout: Layout) -> np.ndarray:
    """Transpose + reshape ``data`` into its prediction layout (C-contiguous)."""
    if data.ndim != layout.ndim_in:
        raise ValueError(f"layout expects {layout.ndim_in}D data, got {data.ndim}D")
    moved = np.ascontiguousarray(np.transpose(data, layout.perm))
    return moved.reshape(layout.fused_shape(data.shape))


def undo_layout(arr: np.ndarray, orig_shape: tuple[int, ...], layout: Layout) -> np.ndarray:
    """Invert :func:`apply_layout` back to the original axis order."""
    permuted_shape = tuple(orig_shape[p] for p in layout.perm)
    unfused = arr.reshape(permuted_shape)
    inverse = np.argsort(layout.perm)
    return np.ascontiguousarray(np.transpose(unfused, inverse))


def enumerate_fusions(ndim: int) -> list[tuple[int, ...]]:
    """All ordered partitions of ``ndim`` axes into contiguous fused groups."""
    if ndim == 1:
        return [(1,)]
    out = []
    for first in range(1, ndim + 1):
        if first == ndim:
            out.append((ndim,))
        else:
            for rest in enumerate_fusions(ndim - first):
                out.append((first,) + rest)
    return out


def enumerate_layouts(ndim: int, *, max_layouts: int | None = None) -> list[Layout]:
    """All (perm, fusion) candidates; 3D gives the paper's 24."""
    layouts = [
        Layout(perm, fusion)
        for perm in permutations(range(ndim))
        for fusion in enumerate_fusions(ndim)
    ]
    if max_layouts is not None:
        layouts = layouts[:max_layouts]
    return layouts


def layout_name(layout: Layout) -> str:
    """Paper-style name, e.g. ``'201 fuse 1&2'`` or ``'012'``."""
    seq = "".join(str(p) for p in layout.perm)
    if all(f == 1 for f in layout.fusion):
        return seq
    groups = []
    pos = 0
    for size in layout.fusion:
        if size > 1:
            groups.append("&".join(str(i) for i in range(pos, pos + size)))
        pos += size
    return f"{seq} fuse {','.join(groups)}"
