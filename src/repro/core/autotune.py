"""Sampling-based pipeline auto-tuning (paper §VI-A, Figs. 11-12, Table IV).

The tuner extracts ``2^n`` blocks centred at 1/3 and 2/3 of each dimension —
each side about ``½·rate^(1/n)`` of the full side — assembles them into one
test array, then compresses it under every candidate pipeline (layout ×
fitting × bin-classification × periodicity) and keeps the pipeline with the
best estimated compression ratio. For a 3D periodic dataset that is the
paper's 2 × 2 × 6 × 4 × 2 = 192 candidates.

The period itself is estimated once from full-length rows (the FFT is cheap
regardless of sampling rate, which is why the paper's Table IV finds
period 12 even at 0.001% sampling). When a period exists, sample blocks
span the *entire* time axis — with correspondingly thinner spatial sides to
keep the volume budget — because a short time window systematically
understates the template/residual benefit (the template overhead amortizes
over the number of periods). This also reproduces Fig. 11's observation
that periodic datasets pay a constant extra sampling cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.compressor import CliZ, resolve_error_bound
from repro.core.dims import enumerate_layouts
from repro.core.periodicity import detect_period
from repro.core.pipeline import PipelineConfig
from repro.utils.timer import Timer
from repro.utils.validation import check_array, check_mask, ensure_float

__all__ = ["AutoTuner", "AutoTuneResult", "TrialResult", "sample_blocks", "mask_aware_anchors"]


def mask_aware_anchors(shape: tuple[int, ...], mask: np.ndarray | None) -> dict[int, tuple[int, int]]:
    """Anchor centers per dimension: 1/3 and 2/3 of the *valid mass*.

    Without a mask these are the paper's index-space 1/3 and 2/3 points.
    With one, the anchors sit where the valid data actually is (e.g. the
    polar bands of an ice dataset), so sampled blocks stay representative.
    """
    out = {}
    for d, size in enumerate(shape):
        if mask is None:
            out[d] = (size // 3, 2 * size // 3)
            continue
        profile = mask.sum(axis=tuple(a for a in range(len(shape)) if a != d)).astype(np.float64)
        total = profile.sum()
        if total <= 0:
            out[d] = (size // 3, 2 * size // 3)
            continue
        cum = np.cumsum(profile) / total
        out[d] = (int(np.searchsorted(cum, 1.0 / 3.0)),
                  int(np.searchsorted(cum, 2.0 / 3.0)))
    return out


def sample_blocks(shape: tuple[int, ...], sampling_rate: float,
                  min_side: int = 4,
                  full_axes: tuple[int, ...] = (),
                  anchors: dict[int, tuple[int, int]] | None = None) -> list[tuple[slice, ...]]:
    """Block slices at the 1/3 and 2/3 anchor points of each dimension.

    Axes listed in ``full_axes`` are spanned entirely by every block (used
    for the time axis of periodic datasets, where a short time window would
    misjudge the template/residual benefit); the remaining ``m`` axes get
    the paper's 2 anchors with side ``≈ ½·rate^(1/m)`` so the total sampled
    volume still approximates ``sampling_rate``. ``anchors`` overrides the
    default index-space anchor centers (see :func:`mask_aware_anchors`).
    Returns ``2^m`` tuples of slices with identical block shape.
    """
    if not (0.0 < sampling_rate <= 1.0):
        raise ValueError("sampling_rate must be in (0, 1]")
    full = set(full_axes)
    sampled_dims = [d for d in range(len(shape)) if d not in full]
    m = len(sampled_dims)
    if m == 0:
        return [tuple(slice(0, n) for n in shape)]
    frac = sampling_rate ** (1.0 / m) / 2.0
    sides = {}
    for d in sampled_dims:
        size = shape[d]
        b = int(round(size * frac))
        b = max(min(b, size // 2), min(min_side, size // 2), 1)
        sides[d] = b
    out = []
    if anchors is None:
        anchors = {d: (shape[d] // 3, 2 * shape[d] // 3) for d in sampled_dims}
    for corner in np.ndindex(*(2,) * m):
        slices: list[slice] = [slice(0, n) for n in shape]
        for which, d in zip(corner, sampled_dims):
            b = sides[d]
            center = anchors[d][which]
            start = min(max(center - b // 2, 0), shape[d] - b)
            slices[d] = slice(start, start + b)
        out.append(tuple(slices))
    return out


def assemble_sample(data: np.ndarray, blocks: list[tuple[slice, ...]]) -> np.ndarray:
    """Connect the sampled blocks into one array (2x grid per sampled dim)."""
    n = data.ndim
    block_shape = tuple(s.stop - s.start for s in blocks[0])
    # axes where the two anchor slices differ get doubled; full axes do not
    doubled = [False] * n
    if len(blocks) > 1:
        for d in range(n):
            starts = {b[d].start for b in blocks}
            doubled[d] = len(starts) > 1
    out_shape = tuple(2 * b if doubled[d] else b for d, b in enumerate(block_shape))
    out = np.empty(out_shape, dtype=data.dtype)
    seen = set()
    for blk in blocks:
        corner = tuple(
            (0 if blk[d].start == min(b[d].start for b in blocks) else 1) if doubled[d] else 0
            for d in range(n)
        )
        if corner in seen:
            continue
        seen.add(corner)
        dest = tuple(
            slice(corner[d] * block_shape[d], (corner[d] + 1) * block_shape[d])
            for d in range(n)
        )
        out[dest] = data[blk]
    return out


@dataclass
class TrialResult:
    """One candidate pipeline's estimated performance on the sample."""

    config: PipelineConfig
    est_ratio: float
    trial_time: float

    @property
    def name(self) -> str:
        return self.config.describe()


@dataclass
class AutoTuneResult:
    """Outcome of :meth:`AutoTuner.tune`."""

    best: PipelineConfig
    trials: list[TrialResult]
    sample_shape: tuple[int, ...]
    sampling_rate: float
    period: int | None
    total_time: float

    def sorted_trials(self) -> list[TrialResult]:
        return sorted(self.trials, key=lambda t: -t.est_ratio)


class AutoTuner:
    """Exhaustive pipeline search over a sampled subset of the data.

    Parameters
    ----------
    sampling_rate:
        Fraction of the data volume used for trials (paper default 1%).
    time_axis, horiz_axes:
        Dataset metadata (original axis roles); ``None`` disables the
        periodicity / bin-classification candidate families respectively.
    fittings:
        Fitting functions to try.
    max_layouts:
        Optional cap on the number of (perm, fusion) layouts, for quick runs.
    """

    def __init__(self, *, sampling_rate: float = 0.01,
                 time_axis: int | None = None,
                 horiz_axes: tuple[int, int] | None = None,
                 fittings: tuple[str, ...] = ("linear", "cubic"),
                 try_binclass: bool = True,
                 try_periodic: bool = True,
                 max_layouts: int | None = None,
                 full_axis_threshold: int = 32,
                 seed: int = 0) -> None:
        if not (0.0 < sampling_rate <= 1.0):
            raise ValueError("sampling_rate must be in (0, 1]")
        self.sampling_rate = sampling_rate
        self.time_axis = time_axis
        self.horiz_axes = horiz_axes
        self.fittings = tuple(fittings)
        self.try_binclass = try_binclass
        self.try_periodic = try_periodic
        self.max_layouts = max_layouts
        self.full_axis_threshold = full_axis_threshold
        self.seed = seed

    # ------------------------------------------------------------------ #
    def candidate_pipelines(self, ndim: int, period: int | None) -> list[PipelineConfig]:
        """All pipelines for the search (paper: 192 for periodic 3D data)."""
        layouts = enumerate_layouts(ndim, max_layouts=self.max_layouts)
        periodic_opts = [False, True] if (period is not None and self.try_periodic) else [False]
        binclass_opts = [False, True] if (self.try_binclass and self.horiz_axes) else [False]
        out = []
        for periodic in periodic_opts:
            for binclass in binclass_opts:
                for layout in layouts:
                    for fitting in self.fittings:
                        out.append(PipelineConfig(
                            layout=layout,
                            fitting=fitting,
                            periodic=periodic,
                            time_axis=self.time_axis if periodic else self.time_axis,
                            period=period if periodic else None,
                            binclass=binclass,
                            horiz_axes=self.horiz_axes,
                        ))
        return out

    def tune(self, data: np.ndarray, *, abs_eb: float | None = None,
             rel_eb: float | None = None, mask: np.ndarray | None = None) -> AutoTuneResult:
        """Search all candidate pipelines on the sampled data; pick the best."""
        arr = ensure_float(check_array(data))
        mask = check_mask(mask, arr.shape)
        eb = resolve_error_bound(arr, abs_eb, rel_eb, mask)
        total = Timer()
        with total:
            period = None
            if self.time_axis is not None and self.try_periodic:
                period = detect_period(arr, self.time_axis, mask=mask, seed=self.seed)

            # Short axes are taken in full: subsampling them leaves too few
            # points per block to judge layouts (block-seam artifacts), and
            # the volume saved is negligible. The periodic time axis is also
            # taken in full (see module docstring).
            full_axes = tuple(
                d for d, n in enumerate(arr.shape)
                if n <= self.full_axis_threshold
                or (period is not None and d == self.time_axis)
            )
            blocks = sample_blocks(arr.shape, self.sampling_rate, full_axes=full_axes,
                                   anchors=mask_aware_anchors(arr.shape, mask))
            sample = assemble_sample(arr, blocks)
            sample_mask = assemble_sample(mask, blocks) if mask is not None else None
            if sample_mask is not None and not sample_mask.any():
                sample_mask = None  # degenerate sample: fall back to unmasked

            trials: list[TrialResult] = []
            for cfg in self.candidate_pipelines(arr.ndim, period):
                t = Timer()
                with t:
                    try:
                        blob = CliZ(cfg).compress(sample, abs_eb=eb, mask=sample_mask)
                        ratio = sample.size * 4 / len(blob)  # single-precision convention
                    except (ValueError, ArithmeticError, LookupError,
                            NotImplementedError):
                        # a candidate layout/period combo can be invalid for
                        # the sample's shape (ValueError), reference an axis
                        # the sample does not have (IndexError), or be
                        # numerically degenerate (ArithmeticError); score it
                        # out of the race rather than aborting the tune.
                        # Anything else (TypeError, ...) is a real bug and
                        # must propagate. tests/core/test_autotune.py pins
                        # this tuple against the known failure modes.
                        ratio = 0.0
                trials.append(TrialResult(cfg, ratio, t.elapsed))

        best = max(trials, key=lambda t: t.est_ratio).config
        return AutoTuneResult(
            best=best,
            trials=trials,
            sample_shape=sample.shape,
            sampling_rate=self.sampling_rate,
            period=period,
            total_time=total.elapsed,
        )
