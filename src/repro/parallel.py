"""Chunked / parallel compression for archive-scale arrays — self-healing.

The paper's scaled experiment (§VII-C4) compresses one file per core; a
production archive equally needs to split a single huge array across
workers. This module provides both patterns on top of any registered
codec:

* :func:`compress_chunked` — split an array along an axis, compress every
  chunk independently (optionally on a process pool), bundle the chunk
  blobs in one container. The pointwise error bound holds per chunk and
  therefore globally; chunk boundaries cost a little ratio (predictions
  cannot cross them), which is the classic HPC trade-off.
* :func:`compress_many` — compress a batch of independent arrays
  concurrently (the one-file-per-core Globus pattern).

Workers are plain processes (``concurrent.futures``): NumPy releases the
GIL for large kernels, but the Python-level coding stages do not, so
processes are the profitable unit — with chunks sized so the fork+pickle
overhead stays negligible, per the HPC-Python guidance.

Resilience (see ``docs/ROBUSTNESS.md``): every dispatch accepts a retry
budget (``retries`` + bounded exponential ``retry_backoff``), a per-job
``timeout`` (enforced inside the worker via ``SIGALRM``), and a
``faults`` injector (:mod:`repro.faults`). A worker process dying takes
down the whole ``ProcessPoolExecutor`` (``BrokenProcessPool``) — the
dispatcher respawns the pool and requeues only the unfinished jobs
instead of aborting the batch. With ``strict=False`` callers get
structured per-job :class:`JobResult` records instead of an exception.
:func:`decompress_chunked` additionally supports ``salvage=True``:
chunks that are missing, fail their section CRC (container v2), or fail
to decode come back NaN-filled, with a
:class:`~repro.encoding.container.SalvageReport` describing the damage.

When an observability run is active in the dispatching process
(``repro.obs`` / ``enable_profiling()``), each pool worker collects spans
and metrics into a local run and ships them back alongside its result;
the parent stitches them under the dispatching span, so profiles and
traces see through the process boundary. Retries, pool respawns, and
salvage outcomes land in ``parallel.*`` / ``salvage.*`` counters.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.encoding.container import (
    Container,
    CorruptStreamError,
    SalvageReport,
)
from repro.faults import FaultInjectedError, FaultInjector, JobFaults, parse_fault_spec
from repro.utils.validation import check_array, check_mask

__all__ = [
    "compress_chunked",
    "decompress_chunked",
    "compress_many",
    "decompress_many",
    "JobResult",
    "RetryPolicy",
    "ParallelJobError",
    "DeadlineExceededError",
]

_CODEC = "chunked"


class ParallelJobError(RuntimeError):
    """A job exhausted its retry budget without a re-raisable cause."""

    def __init__(self, message: str, results: list["JobResult"] | None = None) -> None:
        super().__init__(message)
        self.results = results or []


class DeadlineExceededError(TimeoutError):
    """The dispatch-level deadline passed before this job could run.

    Distinct from a per-job ``TimeoutError``: a deadline failure is never
    retried (the budget belongs to the whole dispatch, e.g. one service
    request), so callers see it promptly instead of work being orphaned
    past the point anyone is waiting for it.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout budget for one dispatch.

    ``retries`` is the number of *additional* attempts after the first;
    backoff before retry ``k`` is ``min(backoff * 2**(k-1), max_backoff)``
    seconds. ``timeout`` bounds each attempt inside the worker process
    (SIGALRM), surfacing as a retryable ``TimeoutError``.
    """

    retries: int = 0
    backoff: float = 0.05
    max_backoff: float = 2.0
    timeout: float | None = None
    max_pool_respawns: int = 3

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def delay(self, attempt: int) -> float:
        """Backoff before re-running a job whose ``attempt``-th try failed."""
        return min(self.backoff * (2.0 ** (attempt - 1)), self.max_backoff)


@dataclass
class JobResult:
    """Structured outcome of one job (returned with ``strict=False``)."""

    index: int
    ok: bool
    value: object = None
    error: str | None = None
    error_type: str | None = None
    attempts: int = 1
    exception: BaseException | None = field(default=None, repr=False)


# ---------------------------------------------------------------------- #
# Worker-side execution: fault directives, per-job timeout, telemetry.

def _compress_one(args) -> bytes:
    codec, arr, kwargs, mask = args
    from repro import compressor_for

    comp = compressor_for(codec)
    if mask is not None:
        return comp.compress(arr, mask=mask, **kwargs)
    return comp.compress(arr, **kwargs)


def _decompress_one(blob: bytes) -> np.ndarray:
    from repro import decompress

    return decompress(blob)


def _raise_job_timeout(signum, frame):  # pragma: no cover - async signal
    raise TimeoutError("per-job timeout exceeded")


def _apply_job_faults(directive: JobFaults | None, attempt: int, *,
                      in_worker: bool) -> None:
    """Apply planned fault directives for this attempt.

    In a pool worker an injected crash is a *hard* death (``os._exit``) so
    the dispatcher sees the real ``BrokenProcessPool`` recovery path; in
    serial execution it degrades to :class:`FaultInjectedError` (we cannot
    kill the caller).
    """
    if directive is None:
        return
    if attempt <= directive.crash_attempts:
        if in_worker:
            os._exit(86)
        raise FaultInjectedError(
            f"injected crash (attempt {attempt}/{directive.crash_attempts})")
    if directive.delay > 0.0:
        time.sleep(directive.delay)


_timeout_fallback_lock = threading.Lock()
_timeout_fallback_warned = False


def _warn_timeout_fallback() -> None:
    """One-shot warning that SIGALRM preemption is unavailable here."""
    global _timeout_fallback_warned
    obs.inc_counter("parallel.timeout_unenforced")
    with _timeout_fallback_lock:
        if _timeout_fallback_warned:
            return
        _timeout_fallback_warned = True
    warnings.warn(
        "per-job timeout requested off the main thread: SIGALRM cannot "
        "preempt here, so the deadline is enforced post-hoc (the attempt "
        "runs to completion, then raises TimeoutError if it overran)",
        RuntimeWarning, stacklevel=3)


def _run_attempt(fn, payload, directive: JobFaults | None, attempt: int,
                 timeout: float | None, *, in_worker: bool):
    """One attempt of one job: faults, then timeout-bounded work.

    On the main thread the timeout preempts the attempt via SIGALRM.
    Off the main thread (service threads, pytest workers) signals are
    unavailable; instead of silently skipping the budget — the old,
    buggy behaviour — the attempt is checked against a monotonic
    deadline when it returns, so an overrunning job still surfaces as a
    retryable ``TimeoutError`` (counted in ``parallel.timeout_unenforced``
    because it could not be cut short in flight).
    """
    use_alarm = (timeout is not None
                 and threading.current_thread() is threading.main_thread())
    deadline = None
    if timeout is not None and not use_alarm:
        _warn_timeout_fallback()
        deadline = time.monotonic() + timeout
    old_handler = None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _raise_job_timeout)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        _apply_job_faults(directive, attempt, in_worker=in_worker)
        result = fn(payload)
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    if deadline is not None and time.monotonic() > deadline:
        raise TimeoutError(
            "per-job timeout exceeded (enforced post-hoc: SIGALRM is "
            "unavailable off the main thread)")
    return result


def _worker_call(fn, payload, directive: JobFaults | None, attempt: int,
                 timeout: float | None, traced: bool):
    """Pool-worker entry: run one attempt, optionally shipping telemetry."""
    if not traced:
        return _run_attempt(fn, payload, directive, attempt, timeout,
                            in_worker=True), None, None
    with obs.run(tags={"role": "worker"}) as run:
        with obs.span("worker", attempt=attempt):
            out = _run_attempt(fn, payload, directive, attempt, timeout,
                               in_worker=True)
    return out, run.span_records(), run.metrics.snapshot()


# ---------------------------------------------------------------------- #
# Dispatcher-side engine.

def _plan_directives(faults: FaultInjector | None, scope: str,
                     n: int) -> list[JobFaults | None]:
    """Plan per-job fault directives up front (deterministic, counted)."""
    if faults is None:
        return [None] * n
    directives: list[JobFaults | None] = []
    for i in range(n):
        d = faults.job_faults(scope, i)
        if d.crash_attempts:
            obs.inc_counter("faults.crash_planned")
        if d.delay:
            obs.inc_counter("faults.slow_planned")
        directives.append(d if d.any else None)
    return directives


def _resolve_policy(retries, retry_backoff, timeout) -> RetryPolicy:
    kwargs = {}
    if retries is not None:
        kwargs["retries"] = int(retries)
    if retry_backoff is not None:
        kwargs["backoff"] = float(retry_backoff)
    if timeout is not None:
        kwargs["timeout"] = float(timeout)
    return RetryPolicy(**kwargs)


def _resolve_faults(faults) -> FaultInjector | None:
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, str):
        return parse_fault_spec(faults)
    raise TypeError("faults must be a FaultInjector or a spec string")


def _resolve_deadline(deadline) -> float | None:
    """``deadline`` (seconds from now) -> absolute ``time.monotonic()`` stamp."""
    if deadline is None:
        return None
    deadline = float(deadline)
    if deadline <= 0:
        raise ValueError("deadline must be positive seconds from now")
    return time.monotonic() + deadline


def _clamp_timeout(timeout: float | None, deadline_at: float | None,
                   now: float) -> float | None:
    """Bound a per-attempt timeout by the time left until the deadline."""
    if deadline_at is None:
        return timeout
    remaining = max(deadline_at - now, 0.001)
    return remaining if timeout is None else min(timeout, remaining)


def _failure(index: int, attempts: int, exc: BaseException | None,
             reason: str | None = None) -> JobResult:
    obs.inc_counter("parallel.job_failures")
    return JobResult(
        index=index, ok=False,
        error=reason or f"{type(exc).__name__}: {exc}",
        error_type=type(exc).__name__ if exc is not None else "WorkerCrash",
        attempts=attempts, exception=exc,
    )


def _run_serial(fn, payloads, directives, policy: RetryPolicy,
                deadline_at: float | None = None) -> list[JobResult]:
    results: list[JobResult] = []
    for i, payload in enumerate(payloads):
        attempt = 1
        while True:
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                obs.inc_counter("parallel.deadline_exceeded")
                results.append(_failure(i, attempt - 1, DeadlineExceededError(
                    "dispatch deadline exceeded before the job could run")))
                break
            t0 = time.perf_counter()
            try:
                value = _run_attempt(fn, payload, directives[i], attempt,
                                     _clamp_timeout(policy.timeout, deadline_at, now),
                                     in_worker=False)
            # job boundary: ANY failure must become a JobResult record (or a
            # retry) so one bad chunk cannot abort its siblings; narrowing
            # this catch would turn unexpected errors into lost work.
            except Exception as exc:  # noqa: BLE001
                if isinstance(exc, TimeoutError):
                    obs.inc_counter("parallel.timeouts")
                    obs.mark_rate("parallel.timeouts")
                expired = (deadline_at is not None
                           and time.monotonic() >= deadline_at)
                if attempt > policy.retries or expired:
                    if expired:
                        obs.inc_counter("parallel.deadline_exceeded")
                        # a timeout at the deadline IS the deadline firing:
                        # surface it as such so callers (the service's 504
                        # mapping) need not guess from a bare TimeoutError
                        if isinstance(exc, TimeoutError) and not isinstance(
                                exc, DeadlineExceededError):
                            wrapped = DeadlineExceededError(
                                "dispatch deadline exceeded during the attempt")
                            wrapped.__cause__ = exc
                            exc = wrapped
                    results.append(_failure(i, attempt, exc))
                    break
                obs.inc_counter("parallel.retries")
                obs.mark_rate("parallel.retries")
                time.sleep(policy.delay(attempt))
                attempt += 1
            else:
                obs.inc_counter("parallel.jobs_ok")
                obs.observe("parallel.job_attempts", attempt)
                obs.observe_latency("parallel.job", time.perf_counter() - t0)
                obs.mark_rate("parallel.jobs")
                results.append(JobResult(index=i, ok=True, value=value,
                                         attempts=attempt))
                break
    return results


def _run_pool(fn, payloads, directives, workers: int, policy: RetryPolicy,
              dispatch, deadline_at: float | None = None) -> list[JobResult]:
    """Pool execution with retries, requeue, and pool respawn.

    A hard worker death breaks the whole executor: every in-flight future
    raises ``BrokenProcessPool``. We respawn the pool once per break
    (bounded by ``policy.max_pool_respawns``) and requeue only unfinished
    jobs — the innocent in-flight jobs consume a retry each, which keeps
    a persistently crashing job from respawning the pool forever.

    ``deadline_at`` (absolute ``time.monotonic()``) bounds the *whole*
    dispatch: once it passes, queued jobs fail with
    :class:`DeadlineExceededError`, unstarted futures are cancelled, and
    running workers are cut short by their clamped per-attempt timeout —
    nothing keeps computing for a caller that has stopped waiting.
    """
    run = obs.get_run()
    traced = run is not None
    n = len(payloads)
    results: list[JobResult | None] = [None] * n
    ready: deque[tuple[int, int]] = deque((i, 1) for i in range(n))
    delayed: list[tuple[float, int, int]] = []  # (ready_time, index, attempt)
    pool = ProcessPoolExecutor(max_workers=workers)
    in_flight: dict = {}
    respawns = 0

    def requeue_or_fail(i: int, attempt: int, exc: BaseException | None,
                        reason: str | None = None, *, count_retry: bool = True) -> None:
        if attempt > policy.retries:
            results[i] = _failure(i, attempt, exc, reason)
            return
        if count_retry:
            obs.inc_counter("parallel.retries")
            obs.mark_rate("parallel.retries")
        heapq.heappush(delayed,
                       (time.monotonic() + policy.delay(attempt), i, attempt + 1))

    try:
        while ready or delayed or in_flight:
            now = time.monotonic()
            if deadline_at is not None and now >= deadline_at:
                exc = DeadlineExceededError(
                    "dispatch deadline exceeded with jobs unfinished")
                for i, attempt in list(ready) + [(di, da) for _, di, da in delayed]:
                    obs.inc_counter("parallel.deadline_exceeded")
                    results[i] = _failure(i, attempt - 1, exc)
                for fut, (i, attempt, _t_submit) in list(in_flight.items()):
                    fut.cancel()
                    obs.inc_counter("parallel.deadline_exceeded")
                    results[i] = _failure(i, attempt, exc)
                ready.clear()
                delayed.clear()
                in_flight.clear()
                break
            while delayed and delayed[0][0] <= now:
                _, i, attempt = heapq.heappop(delayed)
                ready.append((i, attempt))
            pool_broken = False
            while ready and len(in_flight) < 2 * workers:
                i, attempt = ready.popleft()
                try:
                    fut = pool.submit(_worker_call, fn, payloads[i],
                                      directives[i], attempt,
                                      _clamp_timeout(policy.timeout, deadline_at,
                                                     time.monotonic()),
                                      traced)
                except BrokenProcessPool:
                    ready.appendleft((i, attempt))
                    pool_broken = True
                    break
                in_flight[fut] = (i, attempt, time.monotonic())
            if traced:
                # live queue health: gauge holds the latest depth for
                # scrapes, the window keeps the recent trajectory
                depth = len(ready) + len(delayed) + len(in_flight)
                obs.set_gauge("parallel.queue_depth", depth)
                obs.observe_window("parallel.queue_depth", depth)
            if in_flight and not pool_broken:
                done, _ = wait(set(in_flight), timeout=0.1,
                               return_when=FIRST_COMPLETED)
                for fut in done:
                    i, attempt, t_submit = in_flight.pop(fut)
                    try:
                        out, spans, metrics = fut.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        obs.inc_counter("parallel.worker_crashes")
                        requeue_or_fail(i, attempt, None,
                                        "worker process died (BrokenProcessPool)",
                                        count_retry=False)
                    # same job-boundary contract as _run_serial: the future's
                    # exception (whatever its type — pickled worker error,
                    # timeout, codec bug) is recorded or retried, never raised
                    # past the dispatcher while other jobs are in flight.
                    except Exception as exc:  # noqa: BLE001
                        if isinstance(exc, TimeoutError):
                            obs.inc_counter("parallel.timeouts")
                            obs.mark_rate("parallel.timeouts")
                            if (deadline_at is not None
                                    and time.monotonic() >= deadline_at
                                    and not isinstance(
                                        exc, DeadlineExceededError)):
                                wrapped = DeadlineExceededError(
                                    "dispatch deadline exceeded during "
                                    "the attempt")
                                wrapped.__cause__ = exc
                                exc = wrapped
                        requeue_or_fail(i, attempt, exc)
                    else:
                        if traced and spans:
                            run.absorb(spans, metrics, reparent_to=dispatch)
                        obs.inc_counter("parallel.jobs_ok")
                        obs.observe("parallel.job_attempts", attempt)
                        obs.observe_latency("parallel.job",
                                            time.monotonic() - t_submit)
                        obs.mark_rate("parallel.jobs")
                        results[i] = JobResult(index=i, ok=True, value=out,
                                               attempts=attempt)
            elif not in_flight:
                # everything is waiting out a backoff window
                time.sleep(min(0.05, max(0.0, delayed[0][0] - now)) if delayed else 0.001)
            if pool_broken:
                respawns += 1
                obs.inc_counter("parallel.pool_respawns")
                # the break also killed every other in-flight job: requeue them
                for _fut, (i, attempt, _t_submit) in list(in_flight.items()):
                    obs.inc_counter("parallel.crash_requeues")
                    requeue_or_fail(i, attempt, None,
                                    "requeued after pool crash", count_retry=False)
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                if respawns > policy.max_pool_respawns:
                    for i, attempt in list(ready) + [(di, da) for _, di, da in delayed]:
                        results[i] = _failure(
                            i, attempt, None,
                            f"pool respawn budget exhausted ({respawns - 1})")
                    ready.clear()
                    delayed.clear()
                    break
                pool = ProcessPoolExecutor(max_workers=workers)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)
    for i, r in enumerate(results):
        if r is None:  # defensive: dispatch aborted before the job finished
            results[i] = _failure(i, 0, None, "job never completed")
    return results  # type: ignore[return-value]


def _run_jobs(fn, payloads, *, workers, policy: RetryPolicy,
              faults: FaultInjector | None, scope: str, dispatch,
              directives: list[JobFaults | None] | None = None,
              deadline_at: float | None = None) -> list[JobResult]:
    """Dispatch ``payloads`` serially or on a pool.

    ``directives`` overrides the internally planned fault directives —
    multi-wave dispatchers (``compress_chunked``) plan once for the whole
    logical job set and pass each wave its slice, so ``only=N`` fault
    clauses keep addressing the logical job index.
    """
    if directives is None:
        directives = _plan_directives(faults, scope, len(payloads))
    if workers:
        return _run_pool(fn, payloads, directives, workers, policy, dispatch,
                         deadline_at)
    return _run_serial(fn, payloads, directives, policy, deadline_at)


def _finalize(results: list[JobResult], strict: bool, what: str):
    """Strict mode: re-raise the first failure's original cause; otherwise
    hand the structured results back to the caller."""
    if not strict:
        return results
    for r in results:
        if not r.ok:
            if r.exception is not None:
                raise type(r.exception)(
                    f"{what} job {r.index} failed after {r.attempts} attempt(s): "
                    f"{r.exception}") from r.exception
            raise ParallelJobError(
                f"{what} job {r.index} failed after {r.attempts} attempt(s): "
                f"{r.error}", results)
    return [r.value for r in results]


def _inject_storage_faults(blobs: list[bytes], faults: FaultInjector | None,
                           scope: str) -> list[bytes]:
    """Apply deterministic bit rot (bitflip/truncate clauses) to blobs."""
    if faults is None:
        return blobs
    out = []
    for i, blob in enumerate(blobs):
        corrupted, events = faults.corrupt_blob(blob, f"{scope}.{i}", index=i)
        for event in events:
            obs.inc_counter(f"faults.{event['fault']}_injected")
        out.append(corrupted)
    return out


# ---------------------------------------------------------------------- #
def _chunk_slices(n: int, n_chunks: int) -> list[slice]:
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


# ---------------------------------------------------------------------- #
# Zero-copy chunk dispatch: pool workers receive a (name, shape, dtype,
# slice) descriptor into one parent-owned shared-memory segment instead of
# a pickled ndarray copy of their chunk.

@dataclass(frozen=True)
class _ShmSlice:
    """Descriptor of one chunk inside a shared-memory array segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    axis: int
    start: int
    stop: int


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without tracker double-accounting.

    Only the creating (parent) process may unlink. Before Python 3.13 an
    attaching process auto-registers the segment with a resource tracker
    too; under a non-fork start method that is the *worker's own*
    tracker, which would unlink the segment at worker exit — undo the
    registration (3.13+ has ``track=False`` for exactly this). Forked
    workers share the parent's tracker, where the attach-register is an
    idempotent set-add cleaned up by the parent's final ``unlink()`` —
    unregistering there would instead erase the parent's entry.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        seg = shared_memory.SharedMemory(name=name)
        try:
            import multiprocessing

            if multiprocessing.get_start_method() != "fork":
                from multiprocessing import resource_tracker

                resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker layout differs
            pass
        return seg


def _chunk_array(payload) -> np.ndarray:
    """Materialize a chunk payload: ndarray view or shared-memory slice."""
    if not isinstance(payload, _ShmSlice):
        return payload
    seg = _attach_shm(payload.name)
    try:
        full = np.ndarray(payload.shape, dtype=np.dtype(payload.dtype),
                          buffer=seg.buf)
        sel = (slice(None),) * payload.axis + (slice(payload.start, payload.stop),)
        # .copy() (never ascontiguousarray: a contiguous slice would come
        # back as a *view*) — the bytes must be owned before close() unmaps
        # the segment out from under the codec.
        out = full[sel].copy()
        del full
        return out
    finally:
        seg.close()


class _ShmArena:
    """Parent-side shared-memory segments with guaranteed unlink.

    ``share()`` copies an array into a fresh segment once; ``close()``
    (in the dispatcher's ``finally``) closes and unlinks every segment,
    so no exit path — strict-mode raise, worker crash, timeout, fault
    injection — leaks a ``/dev/shm`` entry. The parent's resource
    tracker is the backstop if the parent itself dies mid-dispatch.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def share(self, arr: np.ndarray) -> tuple[str, tuple[int, ...], str]:
        seg = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self._segments.append(seg)
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
        return seg.name, arr.shape, arr.dtype.str

    def close(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
            finally:
                seg.unlink()
        self._segments.clear()


def _compress_chunk(args):
    """Worker entry for one chunk: materialize, activate codebooks, compress.

    Returns ``(blob, cache_state)`` — ``cache_state`` is the recorded
    codebook snapshot for the first chunk (``cache_state`` argument
    ``None``) and ``None`` for reuse-mode chunks.
    """
    codec, payload, kwargs, mask_payload, cache_state = args
    from repro import compressor_for
    from repro.encoding.codebook import CodebookCache, activate

    arr = _chunk_array(payload)
    mask = _chunk_array(mask_payload) if mask_payload is not None else None
    comp = compressor_for(codec)
    cache = CodebookCache(cache_state)
    with activate(cache):
        if mask is not None:
            blob = comp.compress(arr, mask=mask, **kwargs)
        else:
            blob = comp.compress(arr, **kwargs)
    return blob, (cache.state() if cache.recording else None)


def compress_chunked(data: np.ndarray, codec: str = "cliz", *, axis: int = 0,
                     n_chunks: int = 4, workers: int | None = None,
                     mask: np.ndarray | None = None,
                     retries: int | None = None, retry_backoff: float | None = None,
                     timeout: float | None = None,
                     deadline: float | None = None,
                     faults: FaultInjector | str | None = None,
                     **codec_kwargs) -> bytes:
    """Compress ``data`` as independent chunks along ``axis``.

    ``workers=None`` runs serially (deterministic, no pool overhead);
    ``workers=k`` uses a process pool of ``k`` workers. Extra keyword
    arguments (``abs_eb=...`` / ``rel_eb=...``) pass through to the codec.
    ``retries``/``retry_backoff``/``timeout`` configure the per-job
    :class:`RetryPolicy`; ``deadline`` (seconds from the call) bounds the
    whole dispatch — past it, unfinished jobs fail with
    :class:`DeadlineExceededError` instead of computing for nobody (the
    service propagates per-request deadlines through this). ``faults``
    injects deterministic failures (worker crash/slow directives apply
    per chunk job, bitflip/truncate clauses corrupt the stored chunk
    blobs — for exercising salvage).

    Dispatch happens in two waves with identical output either way:
    chunk 0 is compressed in the dispatching process first, recording its
    Huffman codebooks; the remaining chunks (pool or serial) reuse those
    books when still decodable instead of rebuilding per chunk
    (``huffman.codebook_*`` counters record the decisions). Pool workers
    receive zero-copy :class:`_ShmSlice` descriptors into one
    shared-memory copy of ``data`` rather than per-chunk pickled arrays;
    the segments are unlinked on every exit path. A ``crash`` fault
    directive for chunk 0 therefore degrades to an in-process
    :class:`~repro.faults.FaultInjectedError` (as in serial dispatch);
    directives for later chunks still kill real pool workers.

    Relative bounds are resolved *per chunk* by the codec; to keep one
    global bound across chunks, pass ``abs_eb``.
    """
    arr = check_array(data)
    mask = check_mask(mask, arr.shape)
    if not 0 <= axis < arr.ndim:
        raise ValueError(f"axis {axis} out of range for {arr.ndim}D data")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    faults = _resolve_faults(faults)
    policy = _resolve_policy(retries, retry_backoff, timeout)
    deadline_at = _resolve_deadline(deadline)
    slices = _chunk_slices(arr.shape[axis], n_chunks)
    take = lambda a, sl: a[(slice(None),) * axis + (sl,)]  # noqa: E731  (view)
    kwargs = dict(codec_kwargs)
    directives = _plan_directives(faults, "chunk", len(slices))
    use_pool = bool(workers) and len(slices) > 1
    arena = _ShmArena()
    try:
        with obs.span("compress_chunked", nbytes=arr.nbytes, codec=codec,
                      n_chunks=len(slices), workers=workers or 0) as dispatch:
            # Wave 1: chunk 0 in-process, recording its codebooks.
            first_job = (codec, take(arr, slices[0]), kwargs,
                         take(mask, slices[0]) if mask is not None else None,
                         None)
            first = _run_jobs(_compress_chunk, [first_job], workers=None,
                              policy=policy, faults=faults, scope="chunk",
                              dispatch=dispatch, directives=directives[:1],
                              deadline_at=deadline_at)
            blob0, cache_state = _finalize(first, True, "compress_chunked")[0]
            blobs = [blob0]
            # Wave 2: remaining chunks reuse the frozen codebooks; pool
            # workers read their slice from shared memory.
            if len(slices) > 1:
                if use_pool:
                    arr_ref = arena.share(arr)
                    mask_ref = arena.share(mask) if mask is not None else None
                    payload = lambda ref, sl: _ShmSlice(  # noqa: E731
                        ref[0], ref[1], ref[2], axis, sl.start, sl.stop)
                else:
                    payload = lambda _ref, sl: take(arr, sl)  # noqa: E731
                    arr_ref = mask_ref = None
                rest_jobs = []
                for sl in slices[1:]:
                    m = None
                    if mask is not None:
                        m = (payload(mask_ref, sl) if use_pool
                             else take(mask, sl))
                    rest_jobs.append((codec, payload(arr_ref, sl), kwargs, m,
                                      cache_state))
                rest = _run_jobs(_compress_chunk, rest_jobs, workers=workers,
                                 policy=policy, faults=faults, scope="chunk",
                                 dispatch=dispatch, directives=directives[1:],
                                 deadline_at=deadline_at)
                for r in rest:  # report logical chunk numbers on failure
                    r.index += 1
                blobs += [value[0] for value in
                          _finalize(rest, True, "compress_chunked")]
    finally:
        arena.close()
    blobs = _inject_storage_faults(blobs, faults, "chunk")

    container = Container(_CODEC, {
        "inner_codec": codec,
        "axis": axis,
        "n_chunks": len(blobs),
        "shape": list(arr.shape),
    })
    for i, blob in enumerate(blobs):
        container.add_section(f"chunk{i}", blob)
    return container.to_bytes()


def _validate_chunked_header(header: dict) -> tuple[int, int, list[int]]:
    """Validate the chunked-container header before trusting any field.

    A tampered header must fail here with a clear :class:`ValueError`
    (:class:`CorruptStreamError`), not as a bare ``KeyError: 'chunk1'`` or
    a bogus ``np.concatenate`` axis error deep in reassembly.
    """
    def _int(value) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    n_chunks = header.get("n_chunks")
    if not _int(n_chunks) or n_chunks < 1:
        raise CorruptStreamError(
            f"chunked header: n_chunks must be a positive int, got {n_chunks!r}")
    shape = header.get("shape")
    if (not isinstance(shape, list) or not shape
            or not all(_int(s) and s > 0 for s in shape)):
        raise CorruptStreamError(
            f"chunked header: shape must be a list of positive ints, got {shape!r}")
    axis = header.get("axis")
    if not _int(axis) or not 0 <= axis < len(shape):
        raise CorruptStreamError(
            f"chunked header: axis {axis!r} invalid for {len(shape)}D shape")
    if n_chunks > shape[axis]:
        raise CorruptStreamError(
            f"chunked header: {n_chunks} chunks along axis {axis} of size {shape[axis]}")
    return n_chunks, axis, shape


def _nan_fill(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    chunk = np.empty(shape, dtype=dtype)
    if np.issubdtype(dtype, np.inexact):
        chunk.fill(np.nan)
    else:
        chunk.fill(0)
    return chunk


def decompress_chunked(blob: bytes, workers: int | None = None, *,
                       salvage: bool = False,
                       retries: int | None = None, retry_backoff: float | None = None,
                       timeout: float | None = None,
                       deadline: float | None = None,
                       faults: FaultInjector | str | None = None):
    """Inverse of :func:`compress_chunked`.

    With ``salvage=True`` corruption no longer aborts the read: chunks
    that are missing, fail their section CRC, or fail to decode come back
    NaN-filled (zero-filled for integer dtypes), and the return value is
    a ``(array, SalvageReport)`` tuple instead of the bare array.
    """
    faults = _resolve_faults(faults)
    policy = _resolve_policy(retries, retry_backoff, timeout)
    deadline_at = _resolve_deadline(deadline)
    container = Container.from_bytes(blob, salvage=salvage)
    if container.codec != _CODEC:
        raise ValueError(f"not a chunked stream (codec {container.codec!r})")
    n_chunks, axis, shape = _validate_chunked_header(container.header)
    slices = _chunk_slices(shape[axis], n_chunks)
    if len(slices) != n_chunks:
        raise CorruptStreamError(
            f"chunked header: n_chunks {n_chunks} inconsistent with shape {shape}")
    report = SalvageReport(codec=_CODEC, total=n_chunks)

    chunk_blobs: list[bytes | None] = []
    for i in range(n_chunks):
        name = f"chunk{i}"
        if not container.has_section(name):
            if not salvage:
                raise CorruptStreamError(f"chunked stream is missing section {name!r}")
            chunk_blobs.append(None)
            report.add(name, "missing", "section absent (truncated container)")
            continue
        try:
            chunk_blobs.append(container.section(name))
        except CorruptStreamError as exc:
            # only reachable in salvage mode (strict parse raised earlier)
            chunk_blobs.append(None)
            report.add(name, "crc", str(exc))

    present = [(i, b) for i, b in enumerate(chunk_blobs) if b is not None]
    with obs.span("decompress_chunked", nbytes=len(blob), salvage=salvage,
                  workers=workers or 0) as dispatch:
        results = _run_jobs(_decompress_one, [b for _, b in present],
                            workers=workers, policy=policy, faults=faults,
                            scope="unchunk", dispatch=dispatch,
                            deadline_at=deadline_at)
    chunks: list[np.ndarray | None] = [None] * n_chunks
    for (i, _), result in zip(present, results):
        if result.ok:
            chunks[i] = result.value
        else:
            if not salvage:
                return _finalize([result], True, "decompress_chunked")
            report.add(f"chunk{i}", "decode", result.error or "decode failed")

    dtype = next((c.dtype for c in chunks if c is not None), np.dtype(np.float64))
    if not np.issubdtype(dtype, np.inexact) and any(c is None for c in chunks):
        report.notes.append(f"integer dtype {dtype}: failed chunks zero-filled")
    for i, sl in enumerate(slices):
        if chunks[i] is None:
            chunk_shape = list(shape)
            chunk_shape[axis] = sl.stop - sl.start
            chunks[i] = _nan_fill(tuple(chunk_shape), dtype)
        elif list(chunks[i].shape[:axis]) + list(chunks[i].shape[axis + 1:]) != \
                shape[:axis] + shape[axis + 1:] or \
                chunks[i].shape[axis] != sl.stop - sl.start:
            if not salvage:
                raise CorruptStreamError(
                    f"chunk {i} decoded to shape {chunks[i].shape}, "
                    f"expected axis-{axis} slice of {shape}")
            report.add(f"chunk{i}", "decode",
                       f"decoded to wrong shape {chunks[i].shape}")
            chunk_shape = list(shape)
            chunk_shape[axis] = sl.stop - sl.start
            chunks[i] = _nan_fill(tuple(chunk_shape), dtype)

    out = np.concatenate(chunks, axis=axis)
    if list(out.shape) != shape:
        raise CorruptStreamError("chunked stream reassembled to the wrong shape")
    if salvage:
        obs.inc_counter("salvage.reads")
        obs.inc_counter("salvage.chunks_failed", len(report.failures))
        obs.inc_counter("salvage.chunks_recovered", n_chunks - len(report.failures))
        return out, report
    return out


def compress_many(arrays: list[np.ndarray], codec: str = "cliz", *,
                  workers: int | None = None, masks: list | None = None,
                  retries: int | None = None, retry_backoff: float | None = None,
                  timeout: float | None = None,
                  deadline: float | None = None,
                  faults: FaultInjector | str | None = None,
                  strict: bool = True, **codec_kwargs):
    """Compress independent arrays concurrently (one file per core).

    Arrays and masks are validated up front (same checks as a direct
    ``compress`` call), so malformed input fails fast in the caller with a
    clear message instead of surfacing as a pickled traceback from a pool
    worker after processes have already been spawned.

    Failed jobs are retried per the :class:`RetryPolicy`; a worker-process
    death respawns the pool and requeues unfinished jobs. With
    ``strict=False`` the return value is a list of :class:`JobResult`
    (one per array, ``.value`` holding the blob) instead of raising on
    the first exhausted job.
    """
    if masks is not None and len(masks) != len(arrays):
        raise ValueError("masks must align with arrays")
    faults = _resolve_faults(faults)
    policy = _resolve_policy(retries, retry_backoff, timeout)
    deadline_at = _resolve_deadline(deadline)
    jobs = []
    for i, a in enumerate(arrays):
        try:
            arr = check_array(a)
            m = None if masks is None else check_mask(masks[i], arr.shape)
        except (TypeError, ValueError) as exc:
            raise type(exc)(f"array {i}: {exc}") from None
        jobs.append((codec, arr, dict(codec_kwargs), m))
    with obs.span("compress_many", codec=codec, n_arrays=len(jobs),
                  workers=workers or 0) as dispatch:
        results = _run_jobs(_compress_one, jobs, workers=workers, policy=policy,
                            faults=faults, scope="many", dispatch=dispatch,
                            deadline_at=deadline_at)
    out = _finalize(results, strict, "compress_many")
    if strict:
        return _inject_storage_faults(out, faults, "many")
    for r in out:
        if r.ok and faults is not None:
            blob, events = faults.corrupt_blob(r.value, f"many.{r.index}",
                                               index=r.index)
            for event in events:
                obs.inc_counter(f"faults.{event['fault']}_injected")
            r.value = blob
    return out


def decompress_many(blobs: list[bytes], workers: int | None = None, *,
                    retries: int | None = None, retry_backoff: float | None = None,
                    timeout: float | None = None,
                    deadline: float | None = None,
                    faults: FaultInjector | str | None = None,
                    strict: bool = True):
    """Inverse of :func:`compress_many` (same resilience knobs)."""
    faults = _resolve_faults(faults)
    policy = _resolve_policy(retries, retry_backoff, timeout)
    deadline_at = _resolve_deadline(deadline)
    with obs.span("decompress_many", n_blobs=len(blobs),
                  workers=workers or 0) as dispatch:
        results = _run_jobs(_decompress_one, list(blobs), workers=workers,
                            policy=policy, faults=faults, scope="unmany",
                            dispatch=dispatch, deadline_at=deadline_at)
    return _finalize(results, strict, "decompress_many")
