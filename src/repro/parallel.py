"""Chunked / parallel compression for archive-scale arrays.

The paper's scaled experiment (§VII-C4) compresses one file per core; a
production archive equally needs to split a single huge array across
workers. This module provides both patterns on top of any registered
codec:

* :func:`compress_chunked` — split an array along an axis, compress every
  chunk independently (optionally on a process pool), bundle the chunk
  blobs in one container. The pointwise error bound holds per chunk and
  therefore globally; chunk boundaries cost a little ratio (predictions
  cannot cross them), which is the classic HPC trade-off.
* :func:`compress_many` — compress a batch of independent arrays
  concurrently (the one-file-per-core Globus pattern).

Workers are plain processes (``concurrent.futures``): NumPy releases the
GIL for large kernels, but the Python-level coding stages do not, so
processes are the profitable unit — with chunks sized so the fork+pickle
overhead stays negligible, per the HPC-Python guidance.

When an observability run is active in the dispatching process
(``repro.obs`` / ``enable_profiling()``), each pool worker collects spans
and metrics into a local run and ships them back alongside its result;
the parent stitches them under the dispatching span, so profiles and
traces see through the process boundary.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.encoding.container import Container
from repro.utils.validation import check_array, check_mask

__all__ = ["compress_chunked", "decompress_chunked", "compress_many", "decompress_many"]

_CODEC = "chunked"


def _compress_one(args) -> bytes:
    codec, arr, kwargs, mask = args
    from repro import compressor_for

    comp = compressor_for(codec)
    if mask is not None:
        return comp.compress(arr, mask=mask, **kwargs)
    return comp.compress(arr, **kwargs)


def _compress_one_traced(args) -> tuple[bytes, list[dict], dict]:
    """Pool-worker entry: compress under a local run, ship telemetry back."""
    with obs.run(tags={"role": "worker"}) as run:
        with obs.span("worker", codec=args[0]):
            blob = _compress_one(args)
    return blob, run.span_records(), run.metrics.snapshot()


def _decompress_one_traced(blob: bytes) -> tuple[np.ndarray, list[dict], dict]:
    from repro import decompress

    with obs.run(tags={"role": "worker"}) as run:
        with obs.span("worker"):
            out = decompress(blob)
    return out, run.span_records(), run.metrics.snapshot()


def _pool_map(traced_fn, plain_fn, jobs, workers, dispatch_span):
    """Map jobs on a process pool, absorbing worker telemetry if collecting."""
    run = obs.get_run()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if run is None:
            return list(pool.map(plain_fn, jobs))
        results = []
        for out, spans, metrics in pool.map(traced_fn, jobs):
            run.absorb(spans, metrics, reparent_to=dispatch_span)
            results.append(out)
        return results


def _chunk_slices(n: int, n_chunks: int) -> list[slice]:
    bounds = np.linspace(0, n, n_chunks + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:]) if b > a]


def compress_chunked(data: np.ndarray, codec: str = "cliz", *, axis: int = 0,
                     n_chunks: int = 4, workers: int | None = None,
                     mask: np.ndarray | None = None, **codec_kwargs) -> bytes:
    """Compress ``data`` as independent chunks along ``axis``.

    ``workers=None`` runs serially (deterministic, no pool overhead);
    ``workers=k`` uses a process pool of ``k`` workers. Extra keyword
    arguments (``abs_eb=...`` / ``rel_eb=...``) pass through to the codec.

    Relative bounds are resolved *per chunk* by the codec; to keep one
    global bound across chunks, pass ``abs_eb``.
    """
    arr = check_array(data)
    mask = check_mask(mask, arr.shape)
    if not 0 <= axis < arr.ndim:
        raise ValueError(f"axis {axis} out of range for {arr.ndim}D data")
    if n_chunks < 1:
        raise ValueError("n_chunks must be >= 1")
    slices = _chunk_slices(arr.shape[axis], n_chunks)
    take = lambda a, sl: np.ascontiguousarray(  # noqa: E731
        a[(slice(None),) * axis + (sl,)])
    jobs = [
        (codec, take(arr, sl), dict(codec_kwargs), take(mask, sl) if mask is not None else None)
        for sl in slices
    ]
    with obs.span("compress_chunked", nbytes=arr.nbytes, codec=codec,
                  n_chunks=len(jobs), workers=workers or 0) as dispatch:
        if workers:
            blobs = _pool_map(_compress_one_traced, _compress_one,
                              jobs, workers, dispatch)
        else:
            blobs = [_compress_one(job) for job in jobs]

    container = Container(_CODEC, {
        "inner_codec": codec,
        "axis": axis,
        "n_chunks": len(blobs),
        "shape": list(arr.shape),
    })
    for i, blob in enumerate(blobs):
        container.add_section(f"chunk{i}", blob)
    return container.to_bytes()


def decompress_chunked(blob: bytes, workers: int | None = None) -> np.ndarray:
    """Inverse of :func:`compress_chunked`."""
    from repro import decompress

    container = Container.from_bytes(blob)
    if container.codec != _CODEC:
        raise ValueError(f"not a chunked stream (codec {container.codec!r})")
    header = container.header
    chunks_blobs = [container.section(f"chunk{i}") for i in range(header["n_chunks"])]
    with obs.span("decompress_chunked", nbytes=len(blob),
                  workers=workers or 0) as dispatch:
        if workers:
            chunks = _pool_map(_decompress_one_traced, decompress,
                               chunks_blobs, workers, dispatch)
        else:
            chunks = [decompress(b) for b in chunks_blobs]
    out = np.concatenate(chunks, axis=header["axis"])
    if list(out.shape) != header["shape"]:
        raise ValueError("chunked stream reassembled to the wrong shape")
    return out


def compress_many(arrays: list[np.ndarray], codec: str = "cliz", *,
                  workers: int | None = None, masks: list | None = None,
                  **codec_kwargs) -> list[bytes]:
    """Compress independent arrays concurrently (one file per core).

    Arrays and masks are validated up front (same checks as a direct
    ``compress`` call), so malformed input fails fast in the caller with a
    clear message instead of surfacing as a pickled traceback from a pool
    worker after processes have already been spawned.
    """
    if masks is not None and len(masks) != len(arrays):
        raise ValueError("masks must align with arrays")
    jobs = []
    for i, a in enumerate(arrays):
        try:
            arr = check_array(a)
            m = None if masks is None else check_mask(masks[i], arr.shape)
        except (TypeError, ValueError) as exc:
            raise type(exc)(f"array {i}: {exc}") from None
        jobs.append((codec, arr, dict(codec_kwargs), m))
    with obs.span("compress_many", codec=codec, n_arrays=len(jobs),
                  workers=workers or 0) as dispatch:
        if workers:
            return _pool_map(_compress_one_traced, _compress_one,
                             jobs, workers, dispatch)
        return [_compress_one(job) for job in jobs]


def decompress_many(blobs: list[bytes], workers: int | None = None) -> list[np.ndarray]:
    """Inverse of :func:`compress_many`."""
    from repro import decompress

    with obs.span("decompress_many", n_blobs=len(blobs),
                  workers=workers or 0) as dispatch:
        if workers:
            return _pool_map(_decompress_one_traced, decompress,
                             blobs, workers, dispatch)
        return [decompress(b) for b in blobs]
