"""RCDF — a NetCDF-like dataset container with lossy-compressed variables.

A dataset holds named **dimensions**, global **attributes**, and
**variables**; each variable maps to named dimensions, carries its own
attributes, and is stored either losslessly (LZ over raw bytes) or through
any registered lossy codec with a per-variable error bound.

CF conventions supported:

* ``missing_value`` / ``_FillValue`` attributes — on write, a validity mask
  is derived automatically and handed to mask-aware codecs (CliZ); on read,
  masked points come back as the fill value;
* coordinate variables (a variable named like its single dimension);
* an ``axes`` attribute (e.g. ``"lat,lon,time"``) that lets
  :meth:`RcdfVariable.tuner_kwargs` recover the axis roles CliZ's tuner
  needs.

The on-disk layout reuses :class:`repro.encoding.container.Container`
(codec tag ``rcdf``): one JSON header describing the schema, one section
per variable payload. Reading is lazy per variable: decompression happens
on first :meth:`RcdfDataset.get` of each variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.encoding.container import (
    Container,
    CorruptStreamError,
    DECODE_ERRORS,
    SalvageReport,
)
from repro.encoding.lz import lz_compress, lz_decompress
from repro.utils.validation import check_array

__all__ = ["RcdfVariable", "RcdfDataset", "write_rcdf", "read_rcdf"]

_CODEC = "rcdf"
_ATTR_TYPES = (str, int, float, bool)


def _check_attrs(attrs: dict) -> dict:
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise TypeError("attribute names must be strings")
        if not isinstance(value, _ATTR_TYPES):
            raise TypeError(
                f"attribute {key!r} has unsupported type {type(value).__name__}; "
                f"allowed: {', '.join(t.__name__ for t in _ATTR_TYPES)}"
            )
    return dict(attrs)


@dataclass
class RcdfVariable:
    """One dataset variable plus its storage policy."""

    name: str
    dims: tuple[str, ...]
    data: np.ndarray
    attrs: dict = field(default_factory=dict)
    codec: str = "raw"  # 'raw' (lossless) or any repro codec name
    rel_eb: float | None = None
    abs_eb: float | None = None

    def __post_init__(self) -> None:
        self.data = check_array(self.data, name=f"variable {self.name!r}")
        if len(self.dims) != self.data.ndim:
            raise ValueError(
                f"variable {self.name!r}: {len(self.dims)} dims for {self.data.ndim}D data"
            )
        self.attrs = _check_attrs(self.attrs)
        if self.codec != "raw" and self.rel_eb is None and self.abs_eb is None:
            raise ValueError(f"variable {self.name!r}: lossy codec needs rel_eb or abs_eb")

    # ------------------------------------------------------------------ #
    @property
    def fill_value(self) -> float | None:
        for key in ("missing_value", "_FillValue"):
            if key in self.attrs:
                return float(self.attrs[key])
        return None

    def derive_mask(self) -> np.ndarray | None:
        """Validity mask from the CF missing_value attribute (True = valid)."""
        fill = self.fill_value
        if fill is None:
            return None
        mask = self.data != np.asarray(fill, dtype=self.data.dtype)
        if mask.all():
            return None
        if not mask.any():
            raise ValueError(f"variable {self.name!r} contains only fill values")
        return mask

    def tuner_kwargs(self) -> dict:
        """Axis-role kwargs for :class:`repro.core.AutoTuner` (from ``axes``)."""
        roles = self.attrs.get("axes", ",".join(self.dims)).split(",")
        out: dict = {"time_axis": None, "horiz_axes": None}
        if "time" in roles:
            out["time_axis"] = roles.index("time")
        if "lat" in roles and "lon" in roles:
            out["horiz_axes"] = (roles.index("lat"), roles.index("lon"))
        return out


class RcdfDataset:
    """An in-memory dataset: dimensions + attributes + variables."""

    def __init__(self, attrs: dict | None = None) -> None:
        self.dimensions: dict[str, int] = {}
        self.attrs: dict = _check_attrs(attrs or {})
        self._variables: dict[str, RcdfVariable] = {}
        self._pending: dict[str, tuple[dict, bytes]] = {}  # lazy payloads
        self._salvage = False  # tolerate decode failures on get()?
        self.salvage_report: SalvageReport = SalvageReport(codec=_CODEC)

    # ------------------------------------------------------------------ #
    def create_dimension(self, name: str, size: int) -> None:
        if name in self.dimensions:
            raise ValueError(f"dimension {name!r} already exists")
        if size <= 0:
            raise ValueError(f"dimension {name!r} must have positive size")
        self.dimensions[name] = int(size)

    def add_variable(self, name: str, dims: tuple[str, ...], data: np.ndarray,
                     *, attrs: dict | None = None, codec: str = "raw",
                     rel_eb: float | None = None,
                     abs_eb: float | None = None) -> RcdfVariable:
        """Create a variable; its dims must match declared dimension sizes."""
        if name in self._variables or name in self._pending:
            raise ValueError(f"variable {name!r} already exists")
        var = RcdfVariable(name, tuple(dims), np.asarray(data),
                           attrs=attrs or {}, codec=codec,
                           rel_eb=rel_eb, abs_eb=abs_eb)
        for dim, size in zip(var.dims, var.data.shape):
            if dim not in self.dimensions:
                raise ValueError(f"variable {name!r} uses undeclared dimension {dim!r}")
            if self.dimensions[dim] != size:
                raise ValueError(
                    f"variable {name!r}: dimension {dim!r} is {self.dimensions[dim]}, "
                    f"data has {size}"
                )
        self._variables[name] = var
        return var

    @property
    def variable_names(self) -> list[str]:
        return sorted(set(self._variables) | set(self._pending))

    def get(self, name: str) -> RcdfVariable:
        """Fetch a variable, decompressing it on first access.

        In salvage mode a variable that fails to decode comes back
        NaN-filled instead of raising, with the failure recorded in
        :attr:`salvage_report`.
        """
        if name in self._variables:
            return self._variables[name]
        if name in self._pending:
            meta, payload = self._pending.pop(name)
            try:
                var = _decode_variable(meta, payload)
            except DECODE_ERRORS as exc:
                if not self._salvage:
                    raise
                self.salvage_report.add(name, "decode", f"{type(exc).__name__}: {exc}")
                var = _blank_variable(meta)
            self._variables[name] = var
            return var
        raise KeyError(f"no variable {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._variables or name in self._pending

    # ------------------------------------------------------------------ #
    def to_bytes(self) -> bytes:
        container = Container(_CODEC)
        var_meta = []
        for name in self.variable_names:
            var = self.get(name)
            meta, payload = _encode_variable(var)
            var_meta.append(meta)
            container.add_section(f"var:{name}", payload)
        container.header = {
            "dimensions": self.dimensions,
            "attrs": self.attrs,
            "variables": var_meta,
        }
        return container.to_bytes()

    @classmethod
    def from_bytes(cls, blob: bytes, *, salvage: bool = False) -> "RcdfDataset":
        """Parse a dataset; variables decode lazily on :meth:`get`.

        With ``salvage=True`` corruption no longer aborts the read:
        variables whose payload section is missing, fails its CRC
        (container v2), or fails to decode come back NaN-filled
        (zero-filled for integer dtypes) with their metadata intact, and
        :attr:`salvage_report` describes exactly what was lost. Salvage
        decodes every variable eagerly so the report is complete on
        return.
        """
        container = Container.from_bytes(blob, salvage=salvage)
        if container.codec != _CODEC:
            raise ValueError(f"not an RCDF stream (codec {container.codec!r})")
        header = container.header
        if not isinstance(header.get("attrs"), dict) or \
                not isinstance(header.get("dimensions"), dict) or \
                not isinstance(header.get("variables"), list):
            raise CorruptStreamError("RCDF header is missing attrs/dimensions/variables")
        ds = cls(attrs=header["attrs"])
        ds.dimensions = dict(header["dimensions"])
        report = SalvageReport(codec=_CODEC, total=len(header["variables"]))
        for meta in header["variables"]:
            name = meta.get("name")
            section = f"var:{name}"
            if not container.has_section(section):
                if not salvage:
                    raise CorruptStreamError(
                        f"RCDF stream is missing payload for variable {name!r}")
                report.add(name, "missing", "payload section absent")
                ds._variables[name] = _blank_variable(meta)
                continue
            try:
                payload = container.section(section)
            except CorruptStreamError as exc:
                # only reachable in salvage mode (strict parse raised earlier)
                report.add(name, "crc", str(exc))
                ds._variables[name] = _blank_variable(meta)
                continue
            ds._pending[name] = (meta, payload)
        ds.salvage_report = report
        if salvage:
            ds._salvage = True
            for name in list(ds._pending):
                ds.get(name)  # eager decode so the report is complete
            obs_counters(report)
        return ds


# ---------------------------------------------------------------------- #
def _blank_variable(meta: dict) -> RcdfVariable:
    """A NaN-filled stand-in for a variable whose payload was lost.

    Metadata (dims, attrs, codec, bounds) survives — only the data is
    gone. Integer variables are zero-filled (NaN is unrepresentable).
    """
    dtype = np.dtype(meta["dtype"])
    data = np.empty(tuple(meta["shape"]), dtype=dtype)
    if np.issubdtype(dtype, np.inexact):
        data.fill(np.nan)
    else:
        data.fill(0)
    return RcdfVariable(
        meta["name"], tuple(meta["dims"]), data, attrs=meta["attrs"],
        codec=meta["codec"], rel_eb=meta["rel_eb"], abs_eb=meta["abs_eb"],
    )


def obs_counters(report: SalvageReport) -> None:
    """Mirror a salvage outcome into the run metrics (no-op when off)."""
    from repro import obs

    obs.inc_counter("salvage.reads")
    obs.inc_counter("salvage.vars_failed", len(report.failures))
    obs.inc_counter("salvage.vars_recovered", report.total - len(report.failures))


def _encode_variable(var: RcdfVariable) -> tuple[dict, bytes]:
    meta = {
        "name": var.name,
        "dims": list(var.dims),
        "shape": list(var.data.shape),
        "dtype": var.data.dtype.str,
        "attrs": var.attrs,
        "codec": var.codec,
        "rel_eb": var.rel_eb,
        "abs_eb": var.abs_eb,
    }
    if var.codec == "raw":
        return meta, lz_compress(np.ascontiguousarray(var.data).tobytes())
    from repro import compressor_for  # late import: avoids a cycle at import time

    comp = compressor_for(var.codec)
    mask = var.derive_mask()
    kwargs: dict = {}
    if var.rel_eb is not None:
        kwargs["rel_eb"] = var.rel_eb
    else:
        kwargs["abs_eb"] = var.abs_eb
    if mask is not None:
        try:
            return meta, comp.compress(var.data, mask=mask, **kwargs)
        except TypeError:
            pass  # codec does not accept masks: fall through
    return meta, comp.compress(var.data, **kwargs)


def _decode_variable(meta: dict, payload: bytes) -> RcdfVariable:
    dtype = np.dtype(meta["dtype"])
    shape = tuple(meta["shape"])
    if meta["codec"] == "raw":
        data = np.frombuffer(lz_decompress(payload), dtype=dtype).reshape(shape).copy()
    else:
        from repro import decompress

        data = decompress(payload)
        if data.shape != shape:
            raise ValueError(f"variable {meta['name']!r}: shape mismatch after decode")
        data = data.astype(dtype, copy=False)
    return RcdfVariable(
        meta["name"], tuple(meta["dims"]), data, attrs=meta["attrs"],
        codec=meta["codec"], rel_eb=meta["rel_eb"], abs_eb=meta["abs_eb"],
    )


def write_rcdf(path, dataset: RcdfDataset) -> None:
    """Serialize a dataset to a file path.

    The write is durable and atomic (temp file + fsync + rename via
    :func:`repro.runtime.atomic_write`): a crash mid-write can no longer
    leave a truncated container that a later read misdiagnoses as
    transit corruption (``CorruptStreamError``).
    """
    from repro.runtime import atomic_write

    atomic_write(path, dataset.to_bytes())


def read_rcdf(path, *, salvage: bool = False) -> RcdfDataset:
    """Load a dataset from a file path (variables decode lazily).

    ``salvage=True`` tolerates corruption: damaged variables come back
    NaN-filled and the returned dataset's ``salvage_report`` lists them.
    """
    with open(path, "rb") as fh:
        return RcdfDataset.from_bytes(fh.read(), salvage=salvage)
