"""Self-describing climate dataset files with CliZ-compressed variables.

The paper's stated future work (§VIII) is integrating CliZ into HDF5 and
NetCDF "to service as many climate users as possible". This package
implements that integration against a from-scratch NetCDF-like container
(RCDF — "repro climate data format"): named dimensions, attributed
variables, CF-style ``missing_value`` semantics, and per-variable choice of
codec and error bound.
"""

from repro.io.rcdf import RcdfDataset, RcdfVariable, read_rcdf, write_rcdf

__all__ = ["RcdfDataset", "RcdfVariable", "read_rcdf", "write_rcdf"]
