"""Admission control: bounded work queue + per-client token buckets.

The front door sheds load *before* work starts, which is the only place
shedding is cheap: a rejected request costs one JSON error body, an
admitted one costs codec time. Two independent gates:

* **Queue depth** — a counting semaphore bounds concurrently-admitted
  work; when full the request is shed with 429 ``queue_full`` and a
  ``Retry-After`` derived from recent service time.
* **Rate limit** — a token bucket per client id (the ``X-Client`` header,
  else the peer address) enforces a steady-state requests/second with a
  burst allowance; exhaustion is 429 ``rate_limited`` with the exact
  refill wait.

Both publish gauges (``service.queue.depth``, ``service.shed``) so
overload is visible on ``/metrics`` while it is happening, and both use
an injectable clock so the chaos drill controls time.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import inc_counter, set_gauge
from repro.service.schemas import QueueFullError, RateLimitedError

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] | None = None) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock or time.monotonic
        self.tokens = self.burst
        self.stamp = self.clock()
        self._lock = threading.Lock()

    def try_take(self) -> float:
        """Take one token; returns 0.0, or the seconds until one refills."""
        with self._lock:
            now = self.clock()
            self.tokens = min(self.burst,
                              self.tokens + (now - self.stamp) * self.rate)
            self.stamp = now
            if self.tokens >= 1.0:
                self.tokens -= 1.0
                return 0.0
            return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """The service front door: rate-limit, then queue-bound, then admit."""

    def __init__(self, *, max_queue: int = 8, rate: float = 50.0,
                 burst: int = 20,
                 clock: Callable[[], float] | None = None) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock or time.monotonic
        self._depth = 0
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        set_gauge("service.queue.depth", 0.0)
        set_gauge("service.queue.limit", float(self.max_queue))

    # ------------------------------------------------------------------ #
    def _bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, self.clock)
            self._buckets[client] = bucket
        return bucket

    def admit(self, client: str) -> None:
        """Pass the front door or raise a 429.

        Order matters: the rate gate runs first so an abusive client is
        charged even while the queue has room, and a shed request never
        occupies a queue slot. Every successful ``admit`` must be paired
        with exactly one :meth:`release` (use try/finally).
        """
        with self._lock:
            wait = self._bucket(client).try_take()
            if wait > 0:
                inc_counter("service.shed.rate_limited")
                set_gauge("service.shed",
                          self._counter("rate_limited") + self._counter("queue_full"))
                raise RateLimitedError(
                    f"client {client!r} exceeded {self.rate:g} req/s "
                    f"(burst {self.burst:g})", retry_after=wait)
            if self._depth >= self.max_queue:
                inc_counter("service.shed.queue_full")
                set_gauge("service.shed",
                          self._counter("rate_limited") + self._counter("queue_full"))
                raise QueueFullError(
                    f"service queue is full ({self._depth}/{self.max_queue})",
                    retry_after=1.0)
            self._depth += 1
            set_gauge("service.queue.depth", float(self._depth))

    def release(self) -> None:
        with self._lock:
            if self._depth > 0:
                self._depth -= 1
            set_gauge("service.queue.depth", float(self._depth))

    # ------------------------------------------------------------------ #
    def _counter(self, which: str) -> int:
        from repro.obs import trace

        run = trace.get_run() or trace.last_run()
        if run is None:
            return 0
        rec = run.metrics.snapshot().get(f"service.shed.{which}")
        return int(rec["value"]) if rec else 0

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": self._depth,
                "limit": self.max_queue,
                "rate_per_second": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "shed_rate_limited": self._counter("rate_limited"),
                "shed_queue_full": self._counter("queue_full"),
            }
