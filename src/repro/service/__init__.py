"""repro.service — compression-as-a-service with graceful degradation.

A stdlib-asyncio HTTP service over the repro codecs, built to stay
classified under fault pressure: an admission-control front door (bounded
queue, per-client token buckets, per-request deadlines propagated into
parallel dispatch), a content-addressed digest-verified blob store that
degrades damaged reads to salvage decodes, and per-codec circuit breakers
that shed into machine-readable 503s while ``/estimate`` and healthy
codecs keep serving. ``python -m repro.service serve`` runs it;
``--shards N`` scales it out to a supervised cluster — N shard processes
owning consistent-hash partitions of the keyspace behind one router
port, with crash detection, bounded-backoff restarts, a crash-loop
breaker, graceful drain, and hedged reads (``repro.service.cluster``).
``python -m repro.service drill`` replays a seeded chaos schedule against
a live instance and asserts the whole degradation matrix — including the
``shardkill`` phase that SIGKILLs a shard mid-request
(see ``docs/SERVICE.md``).
"""

from repro.service.app import ServiceConfig, ServiceServer
from repro.service.blobstore import BlobStore, KeyRing, blob_key, shard_for_key
from repro.service.breakers import BreakerBoard, CodecBreaker
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.cluster import ClusterConfig, ClusterServer
from repro.service.drill import DrillClock, run_drill
from repro.service.router import ClusterRouter
from repro.service.supervise import ShardSupervisor
from repro.service.schemas import (
    SERVICE_ERRORS,
    BadRequestError,
    BlobCorruptError,
    BlobIOError,
    BreakerOpenError,
    CodecFailureError,
    DeadlineError,
    NotFoundError,
    QueueFullError,
    RateLimitedError,
    ServiceError,
    ShardUnavailableError,
)

__all__ = [
    "ServiceConfig",
    "ServiceServer",
    "ClusterConfig",
    "ClusterServer",
    "ClusterRouter",
    "ShardSupervisor",
    "BlobStore",
    "KeyRing",
    "blob_key",
    "shard_for_key",
    "BreakerBoard",
    "CodecBreaker",
    "AdmissionController",
    "TokenBucket",
    "DrillClock",
    "run_drill",
    "ServiceError",
    "SERVICE_ERRORS",
    "BadRequestError",
    "NotFoundError",
    "RateLimitedError",
    "QueueFullError",
    "BreakerOpenError",
    "BlobIOError",
    "BlobCorruptError",
    "ShardUnavailableError",
    "DeadlineError",
    "CodecFailureError",
]
