"""Shard supervision: spawn, probe, restart with backoff, drain.

The :class:`ShardSupervisor` owns N shard *processes* (each a
single-process :class:`~repro.service.app.ServiceServer` on its own
ephemeral port) and runs the control loop that turns a shard death into
a bounded blip instead of an outage:

* **probe** — every ``probe_interval`` seconds each shard is checked:
  first that its process is still alive (``poll()``), then over HTTP
  (``GET /health`` with a short timeout). ``probe_fail_threshold``
  consecutive probe failures on a live process count as a hang and get
  the same treatment as a crash (the process is killed first).
* **restart** — a dead shard is respawned after a bounded exponential
  backoff (``backoff_base * 2^k`` capped at ``backoff_cap``). Restart
  timestamps inside ``restart_window`` feed the **crash-loop breaker**:
  more than ``max_restarts`` of them marks the shard ``dead`` — the
  supervisor stops feeding the loop and the router reports that slice of
  the keyspace degraded in ``/ready`` until an operator intervenes
  (:meth:`ShardSupervisor.revive`).
* **drain** — ``stop()`` SIGTERMs every live shard (their own handlers
  finish in-flight work), waits out ``drain_deadline``, and SIGKILLs
  stragglers, so the parent never leaves orphan processes behind.

Time is injectable (``clock`` / ``sleep``) and the loop can be stepped
manually (``probe_once``), so the state machine — backoff schedule,
crash-loop breaker, hang detection — is unit-testable without real
processes; process creation itself is injectable via ``spawn``.

Shard state is published as gauges ``service.cluster.shard.<i>.state``
using the :data:`STATE_CODES` encoding, and every respawn increments
``service.cluster.restarts`` (plus a per-shard counter).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Callable

from repro.obs import inc_counter, set_gauge
from repro.service.schemas import ShardUnavailableError

__all__ = ["STATE_CODES", "ShardHandle", "ShardSupervisor", "do_probe_shard"]

#: Gauge encoding for ``service.cluster.shard.<i>.state``.
STATE_CODES = {
    "stopped": 0.0,   # never started, or cleanly shut down
    "starting": 1.0,  # process spawned, port not yet confirmed healthy
    "healthy": 2.0,   # live process answering /health
    "suspect": 3.0,   # live process failing probes (not yet at threshold)
    "backoff": 4.0,   # dead, respawn scheduled at next_restart_at
    "dead": 5.0,      # crash-loop breaker fired: no more restarts
}


def do_probe_shard(port: int, timeout: float = 1.5,
                   host: str = "127.0.0.1") -> dict:
    """One liveness probe: ``GET /health`` on a shard, parsed JSON back.

    Part of the cluster's *declared* transport vocabulary: a failed
    probe raises ``ConnectionError`` / ``OSError`` / ``TimeoutError``
    (malformed responses are folded into ``ConnectionError``), which the
    supervisor's probe loop treats as data — a failure observation — not
    as an exception to propagate further.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", "/health")
        resp = conn.getresponse()
        payload = resp.read()
        if resp.status != 200:
            raise ConnectionError(
                f"shard on port {port}: /health returned {resp.status}")
        try:
            doc = json.loads(payload)
        except ValueError as exc:
            raise ConnectionError(
                f"shard on port {port}: /health is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ConnectionError(
                f"shard on port {port}: /health is not an object")
        return doc
    except http.client.HTTPException as exc:
        raise ConnectionError(
            f"shard on port {port}: malformed /health response: "
            f"{type(exc).__name__}: {exc}") from exc
    finally:
        conn.close()


class ShardHandle:
    """Mutable supervision record for one shard slot."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.state = "stopped"
        self.proc: object | None = None  # Popen-like (poll/terminate/kill/pid)
        self.port: int | None = None
        self.restarts = 0
        self.probe_failures = 0
        self.probe_asap = False  # router saw a transport failure: check now
        self.spawned_at: float | None = None
        self.next_restart_at: float | None = None
        self.restart_stamps: list[float] = []  # inside the crash-loop window
        self.last_health: dict | None = None  # cached /health doc

    def snapshot(self) -> dict:
        return {
            "index": self.index,
            "state": self.state,
            "port": self.port,
            "pid": getattr(self.proc, "pid", None),
            "restarts": self.restarts,
            "probe_failures": self.probe_failures,
            "requests": (self.last_health or {}).get("requests"),
            "blobs": (self.last_health or {}).get("blobs"),
        }


class ShardSupervisor:
    """Supervises ``n_shards`` shard processes (see module docstring).

    ``spawn(index)`` must return a started process-like object exposing
    ``poll() -> int | None``, ``terminate()``, ``kill()``,
    ``wait(timeout)`` and ``pid``; ``port_of(index)`` returns the
    shard's bound port once it has reported one (else ``None``) —
    the cluster wires these to ``subprocess.Popen`` and a port file,
    tests to fakes.
    """

    def __init__(self, n_shards: int, *,
                 spawn: Callable[[int], object],
                 port_of: Callable[[int], int | None],
                 probe: Callable[[int], dict] | None = None,
                 probe_interval: float = 0.25,
                 probe_timeout: float = 1.5,
                 probe_fail_threshold: int = 3,
                 start_timeout: float = 30.0,
                 backoff_base: float = 0.25,
                 backoff_cap: float = 4.0,
                 max_restarts: int = 5,
                 restart_window: float = 60.0,
                 drain_deadline: float = 10.0,
                 clock: Callable[[], float] | None = None,
                 sleep: Callable[[float], None] | None = None) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        self.spawn = spawn
        self.port_of = port_of
        self.probe = probe or (
            lambda port: do_probe_shard(port, timeout=probe_timeout))
        self.probe_interval = float(probe_interval)
        self.probe_timeout = float(probe_timeout)
        self.probe_fail_threshold = int(probe_fail_threshold)
        self.start_timeout = float(start_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.max_restarts = int(max_restarts)
        self.restart_window = float(restart_window)
        self.drain_deadline = float(drain_deadline)
        self.clock = clock or time.monotonic
        self.sleep = sleep or time.sleep
        self.handles = [ShardHandle(i) for i in range(self.n_shards)]
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        set_gauge("service.cluster.shards", float(self.n_shards))

    # ------------------------------------------------------------------ #
    # lifecycle
    def start(self, *, thread: bool = True) -> "ShardSupervisor":
        """Spawn every shard; optionally run the probe loop on a thread."""
        with self._lock:
            for handle in self.handles:
                if handle.state == "stopped":
                    self._spawn(handle)
        if thread:
            self._stopping.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-shard-supervisor", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful drain: TERM, bounded wait, KILL stragglers, reap all."""
        self._stopping.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(5.0, 4 * self.probe_interval))
            self._thread = None
        with self._lock:
            live = [h for h in self.handles
                    if h.proc is not None and h.proc.poll() is None]
            for handle in live:
                try:
                    handle.proc.terminate()
                except OSError:  # already gone
                    pass
            deadline = time.monotonic() + self.drain_deadline
            for handle in live:
                left = max(0.0, deadline - time.monotonic())
                if not self._wait_proc(handle.proc, left):
                    try:
                        handle.proc.kill()
                    except OSError:
                        pass
                    self._wait_proc(handle.proc, 5.0)
            for handle in self.handles:
                self._set_state(handle, "stopped")
                handle.proc = None
                handle.port = None

    @staticmethod
    def _wait_proc(proc, timeout: float) -> bool:
        try:
            proc.wait(timeout=timeout)
            return True
        except Exception:  # noqa: BLE001 -- subprocess.TimeoutExpired or a
            # fake's equivalent; the caller escalates to kill() either way
            return proc.poll() is not None

    # ------------------------------------------------------------------ #
    # the probe loop
    def _loop(self) -> None:
        while not self._stopping.is_set():
            self.probe_once()
            self.sleep(self.probe_interval)

    def probe_once(self) -> None:
        """One supervision pass over every shard (thread-safe, steppable)."""
        for handle in self.handles:
            with self._lock:
                state = handle.state
                if state in ("stopped", "dead"):
                    continue
                if state == "backoff":
                    if (handle.next_restart_at is not None
                            and self.clock() >= handle.next_restart_at):
                        self._spawn(handle)
                    continue
                proc = handle.proc
            # process liveness (no lock needed: proc objects are stable)
            if proc is None or proc.poll() is not None:
                self._on_death(handle, why="process exited")
                continue
            if state == "starting":
                self._probe_starting(handle)
            else:
                self._probe_live(handle)

    def _probe_starting(self, handle: ShardHandle) -> None:
        port = self.port_of(handle.index)
        if port is None:
            if (handle.spawned_at is not None
                    and self.clock() - handle.spawned_at > self.start_timeout):
                self._kill_proc(handle)
                self._on_death(handle, why="start timeout")
            return
        try:
            doc = self.probe(port)
        except (ConnectionError, TimeoutError, OSError):
            # the port is reported but the server may still be binding —
            # give it the full start window before declaring death
            if (handle.spawned_at is not None
                    and self.clock() - handle.spawned_at > self.start_timeout):
                self._kill_proc(handle)
                self._on_death(handle, why="start timeout")
            return
        with self._lock:
            handle.port = port
            handle.last_health = doc
            handle.probe_failures = 0
            self._set_state(handle, "healthy")

    def _probe_live(self, handle: ShardHandle) -> None:
        port = handle.port
        if port is None:  # should not happen; treat as a hang
            self._kill_proc(handle)
            self._on_death(handle, why="lost port")
            return
        try:
            doc = self.probe(port)
        except (ConnectionError, TimeoutError, OSError):
            with self._lock:
                handle.probe_failures += 1
                failures = handle.probe_failures
                self._set_state(handle, "suspect")
            if failures >= self.probe_fail_threshold:
                self._kill_proc(handle)
                self._on_death(
                    handle, why=f"{failures} consecutive probe failures")
            return
        with self._lock:
            handle.probe_failures = 0
            handle.probe_asap = False
            handle.last_health = doc
            self._set_state(handle, "healthy")

    # ------------------------------------------------------------------ #
    # death, backoff, crash-loop breaker
    def _kill_proc(self, handle: ShardHandle) -> None:
        proc = handle.proc
        if proc is None:
            return
        try:
            proc.kill()
        except OSError:
            pass
        self._wait_proc(proc, 5.0)

    def _on_death(self, handle: ShardHandle, *, why: str) -> None:
        with self._lock:
            now = self.clock()
            handle.port = None
            handle.probe_failures = 0
            handle.last_health = None
            handle.restart_stamps = [
                t for t in handle.restart_stamps
                if now - t <= self.restart_window]
            handle.restart_stamps.append(now)
            inc_counter("service.cluster.shard_deaths")
            if len(handle.restart_stamps) > self.max_restarts:
                self._set_state(handle, "dead")
                inc_counter("service.cluster.crash_loop_dead")
                handle.next_restart_at = None
                return
            k = len(handle.restart_stamps) - 1  # 0 for the first death
            delay = min(self.backoff_base * (2.0 ** k), self.backoff_cap)
            handle.next_restart_at = now + delay
            self._set_state(handle, "backoff")

    def _spawn(self, handle: ShardHandle) -> None:
        """(Re)start one shard process (lock held by callers)."""
        respawn = handle.proc is not None
        handle.proc = self.spawn(handle.index)
        handle.spawned_at = self.clock()
        handle.port = None
        handle.next_restart_at = None
        handle.probe_failures = 0
        self._set_state(handle, "starting")
        if respawn:
            handle.restarts += 1
            inc_counter("service.cluster.restarts")
            inc_counter(f"service.cluster.shard.{handle.index}.restarts")

    def _set_state(self, handle: ShardHandle, state: str) -> None:
        handle.state = state
        set_gauge(f"service.cluster.shard.{handle.index}.state",
                  STATE_CODES[state])

    # ------------------------------------------------------------------ #
    # router-facing API (must never block: called from the event loop)
    def note_failure(self, index: int) -> None:
        """A forward to shard ``index`` failed at the transport level."""
        with self._lock:
            handle = self.handles[index]
            if handle.state == "healthy":
                self._set_state(handle, "suspect")
            handle.probe_asap = True
        inc_counter("service.cluster.forward_failures")

    def healthy_shards(self) -> list[int]:
        with self._lock:
            return [h.index for h in self.handles if h.state == "healthy"]

    def shard_port(self, index: int) -> int | None:
        with self._lock:
            handle = self.handles[index]
            return handle.port if handle.state == "healthy" else None

    def retry_after_hint(self, index: int | None = None) -> float:
        """Modeled seconds until the named (or soonest) shard could serve."""
        with self._lock:
            handles = (self.handles if index is None
                       else [self.handles[index]])
            best: float | None = None
            now = self.clock()
            for handle in handles:
                if handle.state == "healthy":
                    return self.probe_interval
                if handle.state in ("starting", "suspect"):
                    wait = self.probe_interval
                elif (handle.state == "backoff"
                      and handle.next_restart_at is not None):
                    wait = max(0.0, handle.next_restart_at - now) \
                        + self.probe_interval
                else:  # dead / stopped: the full modeled recovery
                    wait = self.max_recovery_seconds()
                best = wait if best is None else min(best, wait)
            return best if best is not None else self.probe_interval

    def table(self) -> list[dict]:
        with self._lock:
            return [h.snapshot() for h in self.handles]

    def degraded_partitions(self) -> list[int]:
        """Shard indices whose keyspace slice is currently unserved."""
        with self._lock:
            return [h.index for h in self.handles if h.state != "healthy"]

    # ------------------------------------------------------------------ #
    def backoff_model(self) -> dict:
        """The restart model, machine-readable (drill + docs contract)."""
        return {
            "backoff_base_seconds": self.backoff_base,
            "backoff_cap_seconds": self.backoff_cap,
            "max_restarts": self.max_restarts,
            "restart_window_seconds": self.restart_window,
            "probe_interval_seconds": self.probe_interval,
            "probe_fail_threshold": self.probe_fail_threshold,
            "start_timeout_seconds": self.start_timeout,
        }

    def max_recovery_seconds(self) -> float:
        """Upper bound on one crash → healthy again (the drill asserts
        real recovery lands inside this window): detection + the largest
        single backoff + process start + one probe round."""
        detection = self.probe_interval * (self.probe_fail_threshold + 1)
        return (detection + self.backoff_cap + self.start_timeout
                + 2 * self.probe_interval)

    def revive(self, index: int) -> None:
        """Operator override: give a crash-looped shard another chance."""
        with self._lock:
            handle = self.handles[index]
            if handle.state != "dead":
                raise ShardUnavailableError(
                    f"shard {index} is {handle.state}, not dead; "
                    "revive only applies to crash-looped shards")
            handle.restart_stamps = []
            self._spawn(handle)

    def kill(self, index: int) -> int | None:
        """SIGKILL shard ``index`` (chaos drills); returns the dead pid."""
        with self._lock:
            proc = self.handles[index].proc
        if proc is None:
            return None
        try:
            proc.kill()
        except OSError:
            return None
        return getattr(proc, "pid", None)
