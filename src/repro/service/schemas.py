"""Request/response schemas and the service exception vocabulary.

Every failure the service can surface is a :class:`ServiceError` subclass
carrying an HTTP ``status`` and a machine-readable ``reason`` slug; the
app layer renders them as JSON bodies and the chaos drill asserts the
exact (status, reason) pairs documented in ``docs/SERVICE.md``. Handlers
may raise these (and only these, plus the codec decode vocabulary) —
enforced by the DEC-003 lint rule.

Array payloads travel as base64-encoded raw bytes plus ``dtype`` and
``shape`` (C order), so a request round-trips bit-exactly without a
serialization dependency.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ServiceError",
    "BadRequestError",
    "NotFoundError",
    "RateLimitedError",
    "QueueFullError",
    "BreakerOpenError",
    "BlobIOError",
    "BlobCorruptError",
    "ShardUnavailableError",
    "DeadlineError",
    "CodecFailureError",
    "SERVICE_ERRORS",
    "encode_array",
    "parse_array",
    "CompressRequest",
    "DecompressRequest",
    "EstimateRequest",
]

#: Maximum decoded array payload the service will accept (bytes).
MAX_PAYLOAD = 64 * 1024 * 1024


class ServiceError(Exception):
    """Base class: an HTTP status plus a machine-readable reason slug."""

    status: int = 500
    reason: str = "internal"

    def __init__(self, message: str, *, retry_after: float | None = None,
                 detail: dict | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.detail = detail or {}

    def to_dict(self) -> dict:
        doc = {"error": self.reason, "message": str(self), "status": self.status}
        if self.retry_after is not None:
            doc["retry_after"] = round(float(self.retry_after), 3)
        doc.update(self.detail)
        return doc


class BadRequestError(ServiceError):
    status = 400
    reason = "bad_request"


class NotFoundError(ServiceError):
    status = 404
    reason = "not_found"


class RateLimitedError(ServiceError):
    status = 429
    reason = "rate_limited"


class QueueFullError(ServiceError):
    status = 429
    reason = "queue_full"


class BreakerOpenError(ServiceError):
    status = 503
    reason = "breaker_open"


class BlobIOError(ServiceError):
    status = 503
    reason = "blob_io"


class BlobCorruptError(ServiceError):
    """Stored bytes no longer match their content address (bit rot)."""

    status = 502
    reason = "blob_corrupt"


class ShardUnavailableError(ServiceError):
    """The shard owning the request is down, restarting, or draining.

    The cluster router maps every transport-level failure against a
    shard (connection refused mid-restart, reset mid-kill, no healthy
    successor) to this error, so clients racing a shard death see a
    classified 503 with ``Retry-After`` — never a raw connection reset.
    """

    status = 503
    reason = "not_ready"


class DeadlineError(ServiceError):
    status = 504
    reason = "deadline_exceeded"


class CodecFailureError(ServiceError):
    """Codec work died (crash, exhausted retries); feeds the breaker."""

    status = 500
    reason = "codec_failure"


#: The catchable service vocabulary (the DEC-003 allow list references
#: these names; handlers must not catch outside it + DECODE_ERRORS).
SERVICE_ERRORS = (ServiceError,)


# ---------------------------------------------------------------------- #
def encode_array(arr: np.ndarray) -> dict:
    """An ndarray as a JSON-safe dict (base64 raw bytes + dtype + shape)."""
    arr = np.ascontiguousarray(arr)
    return {
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
    }


def parse_array(doc: dict, what: str = "array") -> np.ndarray:
    """Inverse of :func:`encode_array`; malformed input -> 400."""
    if not isinstance(doc, dict):
        raise BadRequestError(f"{what} must be an object with data/dtype/shape")
    for key in ("data", "dtype", "shape"):
        if key not in doc:
            raise BadRequestError(f"{what} is missing {key!r}")
    try:
        raw = base64.b64decode(doc["data"], validate=True)
    except (binascii.Error, TypeError, ValueError) as exc:
        raise BadRequestError(f"{what}: data is not valid base64: {exc}") from None
    if len(raw) > MAX_PAYLOAD:
        raise BadRequestError(
            f"{what}: payload {len(raw)} bytes exceeds the {MAX_PAYLOAD}-byte limit")
    shape = doc["shape"]
    if (not isinstance(shape, list) or not shape
            or not all(isinstance(s, int) and not isinstance(s, bool) and s > 0
                       for s in shape)):
        raise BadRequestError(f"{what}: shape must be a list of positive ints")
    try:
        dtype = np.dtype(doc["dtype"])
    except (TypeError, ValueError) as exc:
        raise BadRequestError(f"{what}: bad dtype: {exc}") from None
    expected = int(np.prod(shape)) * dtype.itemsize
    if expected != len(raw):
        raise BadRequestError(
            f"{what}: {len(raw)} bytes do not match shape {shape} "
            f"of dtype {dtype} ({expected} bytes)")
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


def _eb_fields(doc: dict) -> dict:
    rel_eb, abs_eb = doc.get("rel_eb"), doc.get("abs_eb")
    if (rel_eb is None) == (abs_eb is None):
        raise BadRequestError("specify exactly one of rel_eb / abs_eb")
    eb = rel_eb if rel_eb is not None else abs_eb
    if not isinstance(eb, (int, float)) or isinstance(eb, bool) or eb <= 0:
        raise BadRequestError("error bound must be a positive number")
    return {"rel_eb": float(rel_eb)} if rel_eb is not None \
        else {"abs_eb": float(abs_eb)}


def _codec_field(doc: dict, known: tuple[str, ...]) -> str:
    codec = doc.get("codec", "cliz")
    if not isinstance(codec, str) or codec.lower() not in known:
        raise BadRequestError(
            f"unknown codec {codec!r}; available: {', '.join(sorted(known))}")
    return codec.lower()


@dataclass(frozen=True)
class CompressRequest:
    codec: str
    array: np.ndarray
    eb: dict
    mask: np.ndarray | None = None
    chunks: int = 1

    @classmethod
    def from_doc(cls, doc: dict, known_codecs: tuple[str, ...]) -> "CompressRequest":
        codec = _codec_field(doc, known_codecs)
        arr = parse_array(doc.get("array"), "array")
        mask = None
        if doc.get("mask") is not None:
            mask = parse_array(doc["mask"], "mask").astype(bool)
            if mask.shape != arr.shape:
                raise BadRequestError(
                    f"mask shape {list(mask.shape)} does not match "
                    f"array shape {list(arr.shape)}")
        chunks = doc.get("chunks", 1)
        if (not isinstance(chunks, int) or isinstance(chunks, bool)
                or not 1 <= chunks <= 64):
            raise BadRequestError("chunks must be an int in [1, 64]")
        return cls(codec=codec, array=arr, eb=_eb_fields(doc), mask=mask,
                   chunks=chunks)


@dataclass(frozen=True)
class DecompressRequest:
    key: str
    salvage: bool = True

    @classmethod
    def from_doc(cls, doc: dict) -> "DecompressRequest":
        key = doc.get("key")
        if not isinstance(key, str) or not key or len(key) > 128 \
                or any(c not in "0123456789abcdef" for c in key):
            raise BadRequestError("key must be a lowercase hex blob digest")
        salvage = doc.get("salvage", True)
        if not isinstance(salvage, bool):
            raise BadRequestError("salvage must be a boolean")
        return cls(key=key, salvage=salvage)


@dataclass(frozen=True)
class EstimateRequest:
    codec: str
    array: np.ndarray
    eb: dict
    sample_budget: int = 4096
    mask: np.ndarray | None = field(default=None)

    @classmethod
    def from_doc(cls, doc: dict, known_codecs: tuple[str, ...]) -> "EstimateRequest":
        codec = _codec_field(doc, known_codecs)
        arr = parse_array(doc.get("array"), "array")
        budget = doc.get("sample_budget", 4096)
        if (not isinstance(budget, int) or isinstance(budget, bool)
                or not 64 <= budget <= 1_000_000):
            raise BadRequestError("sample_budget must be an int in [64, 1000000]")
        mask = None
        if doc.get("mask") is not None:
            mask = parse_array(doc["mask"], "mask").astype(bool)
            if mask.shape != arr.shape:
                raise BadRequestError("mask shape does not match array shape")
        return cls(codec=codec, array=arr, eb=_eb_fields(doc),
                   sample_budget=budget, mask=mask)
