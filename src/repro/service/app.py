"""The compression service: a stdlib-asyncio HTTP app, hardened end-to-end.

Request lifecycle for the work endpoints (``POST /compress``,
``POST /decompress``, ``POST /estimate``)::

    accept -> [abort fault?] -> admission (rate gate, queue bound)
           -> breaker gate (compress only) -> stall fault / deadline check
           -> handler on a worker thread (deadline propagated into
              repro.parallel dispatch) -> breaker record -> respond

Failures never escape as raw tracebacks: every error path maps to a
:class:`~repro.service.schemas.ServiceError` with a documented status and
machine-readable ``reason`` slug (see ``docs/SERVICE.md``). ``GET
/health`` and ``GET /ready`` expose breaker, queue, and blob-store state;
the numbers behind them are ordinary :mod:`repro.obs` gauges, so an
exporter started with ``--serve-metrics`` scrapes the same truth.

Determinism for chaos drills: only the three POST endpoints consume a
request index (monotonic per server), and every injected fault decision
is a pure function of ``(seed, kind, index)`` — GET polling between
phases never shifts the schedule.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro import _CODEC_NAMES
from repro.faults import FaultInjector
from repro.obs import inc_counter, observe_latency, set_gauge
from repro.service.admission import AdmissionController
from repro.service.blobstore import BlobStore
from repro.service.breakers import BreakerBoard
from repro.service.handlers import do_compress, do_decompress, do_estimate
from repro.service.schemas import (
    BadRequestError,
    BreakerOpenError,
    CodecFailureError,
    CompressRequest,
    DeadlineError,
    DecompressRequest,
    EstimateRequest,
    NotFoundError,
    ServiceError,
)

__all__ = ["ServiceConfig", "ServiceServer"]

_KNOWN_CODECS = tuple(_CODEC_NAMES)
_MAX_BODY = 96 * 1024 * 1024
_MAX_HEADER_LINES = 100
_REASONS = {200: "OK", 206: "Partial Content", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable",
            504: "Gateway Timeout"}


@dataclass
class ServiceConfig:
    """Tunables for one :class:`ServiceServer` (all have safe defaults)."""

    host: str = "127.0.0.1"
    port: int = 0
    store_root: str | Path = "blobstore"
    max_queue: int = 8
    rate: float = 50.0  # steady-state requests/second per client
    burst: int = 20
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    default_deadline: float = 30.0  # seconds; X-Deadline overrides
    drain_deadline: float = 10.0  # stop(): max seconds to finish in-flight
    partition: tuple[int, int] | None = None  # (shard index, shard count)
    faults: FaultInjector | None = None
    clock: object = None  # injectable monotonic clock (drills)


class ServiceServer:
    """Threaded-asyncio compression service (same shape as MetricsServer).

    ``port=0`` binds an ephemeral port; read ``.port`` after
    :meth:`start`. All codec work runs on a bounded thread pool so the
    event loop only ever parses requests and writes responses.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        clock = self.config.clock
        self.store = BlobStore(self.config.store_root,
                               faults=self.config.faults,
                               partition=self.config.partition)
        self.admission = AdmissionController(
            max_queue=self.config.max_queue, rate=self.config.rate,
            burst=self.config.burst, clock=clock)
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown, clock=clock)
        self.port: int | None = None
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight = 0  # mutated on the loop thread only
        self._lifecycle = threading.Lock()
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------ #
    # lifecycle (mirrors repro.obs.server.MetricsServer)
    def start(self) -> "ServiceServer":
        with self._lifecycle:
            if self._thread is not None:
                raise RuntimeError("service already started")
            self._started.clear()
            self._error = None
            self._loop = None
            self._stop = None
            self.port = None
            self._thread = threading.Thread(
                target=lambda: asyncio.run(self._serve()),
                name="repro-service", daemon=True)
            self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("service failed to start within 10s")
        if self._error is not None:
            with self._lifecycle:
                thread, self._thread = self._thread, None
            if thread is not None:
                thread.join()
            raise RuntimeError(
                f"service failed to bind {self.config.host}:"
                f"{self.config.port}") from self._error
        return self

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass

    def join(self, timeout: float = 30.0) -> None:
        with self._lifecycle:
            thread = self._thread
        if thread is None:
            return
        thread.join(timeout=timeout)
        if thread.is_alive():
            raise RuntimeError(
                f"service thread did not exit within {timeout}s")
        with self._lifecycle:
            if self._thread is thread:
                self._thread = None

    def stop(self) -> None:
        """Drain and stop the server.

        Idempotent and safe from any state: stop before start, double
        stop, stop after a failed bind, and concurrent stops from a
        supervisor's crash-cleanup path are all no-ops beyond the first
        effective one.
        """
        with self._lifecycle:
            if self._thread is None:
                return
        self.close()
        self.join()

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------ #
    async def _serve(self) -> None:
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_queue,
            thread_name_prefix="repro-service-worker")
        try:
            server = await asyncio.start_server(
                self._handle, self.config.host, self.config.port)
        except OSError as exc:
            self._error = exc
            self._started.set()
            self._executor.shutdown(wait=False)
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
                # graceful drain: stop accepting first, then let already-
                # admitted requests finish writing their responses
                # (bounded by drain_deadline) so a TERM'd server answers
                # everyone it accepted.
                server.close()
                loop = asyncio.get_running_loop()
                deadline = loop.time() + max(
                    0.0, float(self.config.drain_deadline))
                # wait_closed() on 3.12.1+ also waits for every active
                # connection, so a wedged client could hold it forever —
                # bound the whole drain by drain_deadline instead.
                try:
                    await asyncio.wait_for(
                        server.wait_closed(),
                        timeout=max(0.0, deadline - loop.time()))
                except asyncio.TimeoutError:
                    inc_counter("service.drain.deadline_hit")
                # older interpreters return from wait_closed immediately:
                # the in-flight counter covers handler completion there.
                while self._inflight > 0 and loop.time() < deadline:
                    await asyncio.sleep(0.02)
        finally:
            self._executor.shutdown(wait=True)

    def _next_index(self) -> int:
        with self._seq_lock:
            index = self._seq
            self._seq += 1
            return index

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._inflight += 1  # loop-thread only: no lock needed
        try:
            await self._handle_inner(reader, writer)
        finally:
            self._inflight -= 1

    async def _handle_inner(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            method, path, headers, body = await self._read_request(reader)
        except (ValueError, ConnectionError, OSError, asyncio.TimeoutError):
            writer.close()
            return
        try:
            status, doc, extra_headers, drop = await self._dispatch(
                method, path, headers, body)
        # the final backstop: a bug in routing must degrade to a 500
        # body, never a dropped connection or a dead server task.
        except Exception as exc:  # noqa: BLE001
            inc_counter("service.http.500")
            status, extra_headers, drop = 500, [], False
            doc = {"error": "internal", "status": 500,
                   "message": f"{type(exc).__name__}: {exc}"}
        if drop:  # injected client abort: vanish without a response
            writer.close()
            return
        if self.config.partition is not None:
            # which shard served: the cluster router relays this so
            # drills and operators can see routing decisions.
            extra_headers = [*extra_headers,
                             ("X-Repro-Shard", str(self.config.partition[0]))]
        payload = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
                "Content-Type: application/json; charset=utf-8",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        head.extend(f"{k}: {v}" for k, v in extra_headers)
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                         + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # client went away mid-response
            pass

    async def _read_request(self, reader):
        request = await asyncio.wait_for(reader.readline(), timeout=10.0)
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, target = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length < 0 or length > _MAX_BODY:
            raise ValueError(f"bad content-length {length}")
        body = await asyncio.wait_for(reader.readexactly(length),
                                      timeout=30.0) if length else b""
        return method, target, headers, body

    # ------------------------------------------------------------------ #
    async def _dispatch(self, method, path, headers, body):
        """Route one request; returns (status, doc, extra_headers, drop)."""
        if path in ("/health", "/ready"):
            if method != "GET":
                return 405, {"error": "method_not_allowed",
                             "message": f"{path} only supports GET"}, [], False
            return (*self._health(path), [], False)
        if path not in ("/compress", "/decompress", "/estimate"):
            err = NotFoundError(
                f"unknown path {path!r}; try /compress, /decompress, "
                "/estimate, /health, /ready")
            return err.status, err.to_dict(), [], False
        if method != "POST":
            return 405, {"error": "method_not_allowed",
                         "message": f"{path} only supports POST"}, [], False

        index = self._next_index()
        faults = self.config.faults
        if faults is not None and faults.abort_request(index):
            inc_counter("service.aborted")
            return 0, {}, [], True

        client = headers.get("x-client") or "anon"
        try:
            self.admission.admit(client)
        except ServiceError as err:
            inc_counter(f"service.http.{err.status}")
            return err.status, err.to_dict(), self._retry_headers(err), False
        try:
            status, doc, extra = await self._process(
                index, path, headers, body)
        finally:
            self.admission.release()
        inc_counter(f"service.http.{status}")
        return status, doc, extra, False

    def _retry_headers(self, err: ServiceError) -> list[tuple[str, str]]:
        if err.retry_after is None:
            return []
        return [("Retry-After", str(max(1, int(err.retry_after + 0.999))))]

    # ------------------------------------------------------------------ #
    async def _process(self, index, path, headers, body):
        """Run one admitted work request on the worker pool."""
        t_start = time.monotonic()
        try:
            deadline = self._deadline_from(headers)
            doc = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(doc, dict):
                raise BadRequestError("request body must be a JSON object")
        except (ValueError, UnicodeDecodeError, ServiceError) as exc:
            err = exc if isinstance(exc, ServiceError) else \
                BadRequestError(f"request body is not valid JSON: {exc}")
            return err.status, err.to_dict(), []
        deadline_at = t_start + deadline

        stall = 0.0
        if self.config.faults is not None:
            stall = self.config.faults.handler_delay(index)
            drill_stall = headers.get("x-drill-stall")
            if drill_stall:
                try:
                    stall = max(stall, float(drill_stall))
                except ValueError:
                    pass
        breaker = None
        try:
            if path == "/compress":
                req = CompressRequest.from_doc(doc, _KNOWN_CODECS)
                breaker = self.breakers.for_codec(req.codec)
                if not breaker.allow():
                    breaker = None  # denied: nothing to record
                    raise BreakerOpenError(
                        f"codec {req.codec!r} is circuit-broken "
                        "(recent consecutive failures); degraded mode — "
                        "/estimate and other codecs keep serving",
                        retry_after=self.breakers.for_codec(req.codec)
                        .retry_after(),
                        detail={"codec": req.codec})
                result = await self._run_worker(
                    lambda left: do_compress(
                        req, self.store, deadline=left,
                        faults=self._codec_faults(index)),
                    stall, deadline_at)
            elif path == "/decompress":
                dreq = DecompressRequest.from_doc(doc)
                result = await self._run_worker(
                    lambda left: do_decompress(dreq, self.store,
                                               deadline=left),
                    stall, deadline_at)
            else:  # /estimate — no breaker gate: serves in degraded mode
                ereq = EstimateRequest.from_doc(doc, _KNOWN_CODECS)
                result = await self._run_worker(
                    lambda left: do_estimate(ereq, deadline=left),
                    stall, deadline_at)
        except ServiceError as err:
            if breaker is not None:
                # only codec ill-health trips the breaker; deadline and
                # blob trouble are load/storage signals, not codec ones.
                breaker.record(not isinstance(err, CodecFailureError))
            observe_latency("service.request_seconds",
                            time.monotonic() - t_start)
            return err.status, err.to_dict(), self._retry_headers(err)
        if breaker is not None:
            breaker.record(True)
        observe_latency("service.request_seconds", time.monotonic() - t_start)
        status = 206 if result.get("salvaged") else 200
        return status, result, []

    def _deadline_from(self, headers) -> float:
        raw = headers.get("x-deadline")
        if raw is None:
            return float(self.config.default_deadline)
        try:
            deadline = float(raw)
        except ValueError:
            raise BadRequestError(
                f"X-Deadline must be seconds, got {raw!r}") from None
        if deadline <= 0:
            raise BadRequestError("X-Deadline must be positive seconds")
        return deadline

    def _codec_faults(self, index: int) -> FaultInjector | None:
        """Worker-crash injection, gated per *request* index.

        ``crash`` clauses decide per request (scope ``"service.request"``)
        whether this request's dispatch gets a crashing injector — one
        whose workers die on every attempt, so the failure is permanent
        and the drill can predict exactly which request indices fail.
        """
        faults = self.config.faults
        if faults is None:
            return None
        if faults.job_faults("service.request", index).crash_attempts <= 0:
            return None
        return FaultInjector([("crash", {"p": 1.0, "attempts": 99})],
                             seed=faults.seed)

    async def _run_worker(self, fn, stall: float, deadline_at: float):
        """Run ``fn(remaining_deadline)`` on the pool, stalling first."""
        def work():
            if stall > 0:
                inc_counter("service.stalled")
                time.sleep(stall)
            left = deadline_at - time.monotonic()
            if left <= 0:
                inc_counter("service.deadline_expired")
                raise DeadlineError(
                    "request deadline expired before work started")
            return fn(left)

        return await self._loop.run_in_executor(self._executor, work)

    # ------------------------------------------------------------------ #
    def _health(self, path: str):
        breakers = self.breakers.snapshot()
        queue = self.admission.snapshot()
        open_codecs = sorted(c for c, s in breakers.items()
                             if s["state"] != "closed")
        set_gauge("service.breakers.open", float(len(open_codecs)))
        doc = {
            "status": "ok",
            "uptime_seconds": round(time.monotonic() - self._t0, 3),
            "requests": self._seq,
            "queue": queue,
            "breakers": breakers,
            "blobs": self.store.count(),
            "faults": None if self.config.faults is None
            else self.config.faults.describe(),
        }
        if path == "/health":
            return 200, doc
        # readiness: shedding-new-work conditions make us not-ready
        reasons = []
        if open_codecs:
            reasons.append(f"breakers open: {', '.join(open_codecs)}")
        if queue["depth"] >= queue["limit"]:
            reasons.append(f"queue full ({queue['depth']}/{queue['limit']})")
        if reasons:
            doc["status"] = "degraded"
            doc["error"] = "not_ready"
            doc["reasons"] = reasons
            return 503, doc
        return 200, doc
