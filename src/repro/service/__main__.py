"""``python -m repro.service`` — serve the compression API, or drill it.

Subcommands::

    serve   start the HTTP service (Ctrl-C to stop)
    drill   run the deterministic chaos drill and exit 0/1

``serve`` options mirror :class:`repro.service.app.ServiceConfig`;
``--inject-faults`` accepts the :mod:`repro.faults` spec grammar
(including the service kinds ``stall`` / ``bloberr`` / ``abort``), and
``--serve-metrics PORT`` additionally starts the Prometheus exporter so
queue/breaker/shed gauges are scrapeable while the service runs.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]


def _serve(args) -> int:
    from repro.faults import parse_fault_spec
    from repro.obs import trace
    from repro.service.app import ServiceConfig, ServiceServer

    faults = None
    if args.inject_faults:
        faults = parse_fault_spec(args.inject_faults)
    if trace.get_run() is None:
        trace.start_run(tags={"command": "service.serve"})
    exporter = None
    if args.serve_metrics is not None:
        from repro.obs.server import MetricsServer

        exporter = MetricsServer(port=args.serve_metrics).start()
        print(f"metrics on {exporter.url}/metrics", file=sys.stderr)
    server = ServiceServer(ServiceConfig(
        host=args.host, port=args.port, store_root=args.store,
        max_queue=args.max_queue, rate=args.rate, burst=args.burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        default_deadline=args.deadline, faults=faults)).start()
    print(f"compression service on {server.url} "
          f"(POST /compress /decompress /estimate; GET /health /ready)",
          file=sys.stderr)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if exporter is not None:
            exporter.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="compression-as-a-service over the repro codecs")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="start the HTTP service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="port to bind (default 8765; 0 = ephemeral)")
    p.add_argument("--store", default="blobstore",
                   help="blob store directory (default ./blobstore)")
    p.add_argument("--max-queue", type=int, default=8,
                   help="admitted-work bound; overflow sheds with 429")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client steady-state requests/second")
    p.add_argument("--burst", type=int, default=20,
                   help="per-client token-bucket burst")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive codec failures that trip its breaker")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   help="seconds an open breaker waits before one probe")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="default per-request deadline (X-Deadline overrides)")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault spec (see repro.faults)")
    p.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="also start the Prometheus /metrics exporter")

    d = sub.add_parser("drill", help="run the deterministic chaos drill")
    d.add_argument("--seed", type=int, default=9)
    d.add_argument("--report", default=None, metavar="FILE",
                   help="write the drill report JSON here")
    d.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    from repro.service.drill import run_drill

    code, _ = run_drill(seed=args.seed, report_path=args.report,
                        verbose=not args.quiet)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
