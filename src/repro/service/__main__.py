"""``python -m repro.service`` — serve the compression API, or drill it.

Subcommands::

    serve   start the HTTP service (SIGTERM/SIGINT drain gracefully)
    shard   one cluster shard (internal: spawned by the supervisor)
    drill   run the deterministic chaos drill and exit 0/1

``serve`` options mirror :class:`repro.service.app.ServiceConfig`;
``--inject-faults`` accepts the :mod:`repro.faults` spec grammar
(including the service kinds ``stall`` / ``bloberr`` / ``abort`` /
``shardkill``), and ``--serve-metrics PORT`` additionally starts the
Prometheus exporter so queue/breaker/shed gauges are scrapeable while
the service runs. ``serve --shards N`` (N > 1) starts the supervised
cluster instead of a single process: N shard processes behind one
router port, with crash recovery and keyspace-partitioned routing
(see ``docs/SERVICE.md``).

Shutdown is signal-driven, not poll-driven: ``serve`` and ``shard``
install SIGTERM/SIGINT handlers that trip one event; the main thread
waits on it, then runs the full drain path — stop accepting, finish
in-flight work (bounded by ``--drain-deadline``), flush telemetry,
exit 0 — so ``kill -TERM`` and Ctrl-C are equally graceful and leave
no orphan shard processes behind.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

__all__ = ["main"]


def _install_stop_handlers(stop: threading.Event) -> None:
    """Route SIGTERM and SIGINT into ``stop`` (main thread only)."""
    def _on_signal(signum, frame):  # noqa: ARG001 -- signal API shape
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)


def _serve(args) -> int:
    from repro.faults import parse_fault_spec
    from repro.obs import trace

    # install the drain handlers before anything is listening, so a
    # signal racing startup still takes the graceful path
    stop = threading.Event()
    _install_stop_handlers(stop)
    faults_spec = args.inject_faults
    if trace.get_run() is None:
        trace.start_run(tags={"command": "service.serve"})
    exporter = None
    if args.serve_metrics is not None:
        from repro.obs.server import MetricsServer

        exporter = MetricsServer(port=args.serve_metrics).start()
        print(f"metrics on {exporter.url}/metrics", file=sys.stderr)

    if args.shards > 1:
        from repro.service.cluster import ClusterConfig, ClusterServer

        server = ClusterServer(ClusterConfig(
            n_shards=args.shards, host=args.host, port=args.port,
            store_root=args.store, max_queue=args.max_queue,
            rate=args.rate, burst=args.burst,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_deadline=args.deadline,
            drain_deadline=args.drain_deadline,
            fault_spec=faults_spec)).start()
        what = f"sharded compression service ({args.shards} shards)"
    else:
        from repro.service.app import ServiceConfig, ServiceServer

        faults = parse_fault_spec(faults_spec) if faults_spec else None
        server = ServiceServer(ServiceConfig(
            host=args.host, port=args.port, store_root=args.store,
            max_queue=args.max_queue, rate=args.rate, burst=args.burst,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_deadline=args.deadline,
            drain_deadline=args.drain_deadline, faults=faults)).start()
        what = "compression service"
    print(f"{what} on {server.url} "
          f"(POST /compress /decompress /estimate; GET /health /ready)",
          file=sys.stderr)

    try:
        stop.wait()
    except KeyboardInterrupt:  # SIGINT delivered before the handler took
        pass
    print("draining: completing in-flight requests and flushing telemetry",
          file=sys.stderr)
    server.stop()
    if exporter is not None:
        exporter.stop()
    if trace.get_run() is not None:
        trace.end_run()
    return 0


def _shard(args) -> int:
    """One supervised shard (internal; see ``repro.service.cluster``)."""
    from repro.faults import parse_fault_spec
    from repro.obs import trace
    from repro.runtime import atomic_write
    from repro.service.app import ServiceConfig, ServiceServer

    stop = threading.Event()
    _install_stop_handlers(stop)
    faults = parse_fault_spec(args.inject_faults) if args.inject_faults \
        else None
    if trace.get_run() is None:
        trace.start_run(tags={"command": "service.shard",
                              "shard": str(args.index)})
    server = ServiceServer(ServiceConfig(
        host=args.host, port=0, store_root=args.store,
        max_queue=args.max_queue, rate=args.rate, burst=args.burst,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        default_deadline=args.deadline,
        drain_deadline=args.drain_deadline,
        partition=(args.index, args.shards), faults=faults)).start()
    if args.port_file:
        atomic_write(args.port_file, f"{server.port}\n")
    print(f"shard {args.index}/{args.shards} on {server.url}",
          file=sys.stderr)

    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    server.stop()
    if trace.get_run() is not None:
        trace.end_run()
    return 0


def _service_options(p) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--store", default="blobstore",
                   help="blob store directory (default ./blobstore)")
    p.add_argument("--max-queue", type=int, default=8,
                   help="admitted-work bound; overflow sheds with 429")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client steady-state requests/second")
    p.add_argument("--burst", type=int, default=20,
                   help="per-client token-bucket burst")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive codec failures that trip its breaker")
    p.add_argument("--breaker-cooldown", type=float, default=30.0,
                   help="seconds an open breaker waits before one probe")
    p.add_argument("--deadline", type=float, default=30.0,
                   help="default per-request deadline (X-Deadline overrides)")
    p.add_argument("--drain-deadline", type=float, default=10.0,
                   help="max seconds to finish in-flight work on shutdown")
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault spec (see repro.faults)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="compression-as-a-service over the repro codecs")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="start the HTTP service")
    _service_options(p)
    p.add_argument("--port", type=int, default=8765,
                   help="port to bind (default 8765; 0 = ephemeral)")
    p.add_argument("--shards", type=int, default=1,
                   help="shard processes behind one router port "
                        "(default 1 = single-process service)")
    p.add_argument("--serve-metrics", type=int, default=None, metavar="PORT",
                   help="also start the Prometheus /metrics exporter")

    s = sub.add_parser(
        "shard", help="one cluster shard (internal: run via serve --shards)")
    _service_options(s)
    s.add_argument("--index", type=int, required=True,
                   help="this shard's keyspace partition index")
    s.add_argument("--shards", type=int, required=True,
                   help="total shard count in the cluster")
    s.add_argument("--port-file", default=None, metavar="FILE",
                   help="write the bound port here (atomic)")

    d = sub.add_parser("drill", help="run the deterministic chaos drill")
    d.add_argument("--seed", type=int, default=9)
    d.add_argument("--report", default=None, metavar="FILE",
                   help="write the drill report JSON here")
    d.add_argument("--phases", default=None, metavar="P1,P2",
                   help="comma-separated phase subset (default: all); "
                        "e.g. --phases shardkill")
    d.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)
    if args.command == "serve":
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        return _serve(args)
    if args.command == "shard":
        if args.shards < 1 or not 0 <= args.index < args.shards:
            parser.error("need 0 <= --index < --shards")
        return _shard(args)
    from repro.service.drill import run_drill

    phases = None
    if args.phases:
        phases = tuple(p.strip() for p in args.phases.split(",") if p.strip())
    code, _ = run_drill(seed=args.seed, report_path=args.report,
                        verbose=not args.quiet, phases=phases)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
