"""Cluster front door: one port, N shards, no raw connection resets.

The :class:`ClusterRouter` is a thin asyncio proxy exposing the exact
single-process service API (``/compress`` ``/decompress`` ``/estimate``
``/health`` ``/ready`` plus ``/metrics``) while fanning work out to the
shard processes a :class:`~repro.service.supervise.ShardSupervisor`
keeps alive:

* ``/decompress`` routes by **keyspace ownership**: the blob key's ring
  owner serves the read, falling back along
  :meth:`~repro.service.blobstore.KeyRing.successors` when the owner is
  down (any shard can read any blob — the store root is shared — so
  failover costs nothing but locality).
* ``/compress`` and ``/estimate`` route **round-robin** over healthy
  shards (a blob's key is unknowable before compression; content
  addressing makes any placement correct).
* **Hedging**: the idempotent endpoints (``/decompress``,
  ``/estimate``) that sit on a slow shard past ``hedge_budget`` seconds
  get a second copy sent to the next candidate; first response wins and
  the loser is cancelled. ``/compress`` is never hedged — it is
  idempotent too, but duplicating codec work to dodge latency is a poor
  trade, and the chaos drill needs exactly-one-shard semantics for it.
* Every transport-level failure against a shard (connection refused
  mid-restart, reset mid-SIGKILL, timeout) surfaces as a classified
  :class:`~repro.service.schemas.ShardUnavailableError` — 503 +
  ``Retry-After`` derived from the supervisor's backoff model — never a
  raw reset to the client.

The router never runs codec work and never blocks its loop: forwarding
is pure stream I/O, and every supervisor call it makes is a
snapshot/flag under a lock.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

from repro.obs import inc_counter, set_gauge, trace
from repro.obs.prom import CONTENT_TYPE, render_run, sanitize_metric_name
from repro.service.blobstore import KeyRing
from repro.service.schemas import (
    NotFoundError,
    ServiceError,
    ShardUnavailableError,
)
from repro.service.supervise import ShardSupervisor

__all__ = ["ClusterRouter", "do_forward"]

_MAX_BODY = 96 * 1024 * 1024
_MAX_HEADER_LINES = 100
_REASONS = {200: "OK", 206: "Partial Content", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error",
            502: "Bad Gateway", 503: "Service Unavailable",
            504: "Gateway Timeout"}
#: Response headers relayed from shard to client (all else is hop-local).
_RELAY_HEADERS = ("content-type", "retry-after", "x-repro-shard")
#: Endpoints safe to hedge/fail over: repeating one changes nothing.
_IDEMPOTENT = frozenset({"/decompress", "/estimate"})
_WORK_PATHS = ("/compress", "/decompress", "/estimate")


async def do_forward(port: int, method: str, path: str,
                     headers: dict[str, str], body: bytes, *,
                     timeout: float = 30.0,
                     host: str = "127.0.0.1") -> tuple[int, dict, bytes]:
    """Forward one request to a shard; ``(status, headers, body)`` back.

    The cluster's declared transport translation: a connection refused,
    reset, short read, malformed response, or timeout while talking to
    the shard raises :class:`ShardUnavailableError` — the caller decides
    whether to fail over, hedge, or surface the 503.
    """
    try:
        return await asyncio.wait_for(
            _forward_raw(host, port, method, path, headers, body),
            timeout=timeout)
    except (ConnectionError, EOFError, OSError, ValueError) as exc:
        raise ShardUnavailableError(
            f"shard on port {port} failed mid-request: "
            f"{type(exc).__name__}: {exc}") from exc
    except (asyncio.TimeoutError, TimeoutError) as exc:
        raise ShardUnavailableError(
            f"shard on port {port} did not answer within {timeout}s"
        ) from exc


async def _forward_raw(host, port, method, path, headers, body):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = [f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        head.extend(f"{k}: {v}" for k, v in headers.items()
                    if k.lower() not in ("host", "content-length",
                                         "connection"))
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ValueError(f"malformed shard status line {status_line!r}")
        status = int(parts[1])
        resp_headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0") or 0)
        if length < 0 or length > _MAX_BODY:
            raise ValueError(f"bad shard content-length {length}")
        payload = await reader.readexactly(length) if length else b""
        return status, resp_headers, payload
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class ClusterRouter:
    """Threaded-asyncio router over a supervised shard fleet."""

    def __init__(self, supervisor: ShardSupervisor, *,
                 host: str = "127.0.0.1", port: int = 0,
                 hedge_budget: float = 0.25,
                 forward_timeout: float = 60.0) -> None:
        self.supervisor = supervisor
        self.host = host
        self.ring = KeyRing(supervisor.n_shards)
        self.hedge_budget = float(hedge_budget)
        self.forward_timeout = float(forward_timeout)
        self.port: int | None = None
        self._requested_port = int(port)
        self._rr = 0  # loop-thread only
        self._draining = False
        self._t0 = time.monotonic()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None
        self._lifecycle = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle (same contract as ServiceServer)
    def start(self) -> "ClusterRouter":
        with self._lifecycle:
            if self._thread is not None:
                raise RuntimeError("router already started")
            self._started.clear()
            self._error = None
            self._loop = None
            self._stop_event = None
            self.port = None
            self._thread = threading.Thread(
                target=lambda: asyncio.run(self._serve()),
                name="repro-cluster-router", daemon=True)
            self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError("router failed to start within 10s")
        if self._error is not None:
            with self._lifecycle:
                thread, self._thread = self._thread, None
            if thread is not None:
                thread.join()
            raise RuntimeError(
                f"router failed to bind {self.host}:"
                f"{self._requested_port}") from self._error
        return self

    def drain(self) -> None:
        """Start refusing new work (503 + Retry-After) without stopping."""
        self._draining = True

    def close(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass

    def join(self, timeout: float = 30.0) -> None:
        with self._lifecycle:
            thread = self._thread
        if thread is None:
            return
        thread.join(timeout=timeout)
        if thread.is_alive():
            raise RuntimeError(f"router thread did not exit within {timeout}s")
        with self._lifecycle:
            if self._thread is thread:
                self._thread = None

    def stop(self) -> None:
        """Idempotent: safe on a never-started or already-stopped router."""
        with self._lifecycle:
            if self._thread is None:
                return
        self.close()
        self.join()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        try:
            server = await asyncio.start_server(
                self._handle, self.host, self._requested_port)
        except OSError as exc:
            self._error = exc
            self._started.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()
            server.close()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, headers, body = await self._read_request(reader)
        except (ValueError, ConnectionError, OSError, asyncio.TimeoutError):
            writer.close()
            return
        try:
            status, resp_headers, payload = await self._dispatch(
                method, path, headers, body)
        except ServiceError as err:
            status, resp_headers, payload = self._render_error(err)
        except Exception as exc:  # noqa: BLE001 -- backstop: a router bug
            # must degrade to a 500 body, never a dropped connection
            inc_counter("service.cluster.http.500")
            doc = {"error": "internal", "status": 500,
                   "message": f"{type(exc).__name__}: {exc}"}
            payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
            status, resp_headers = 500, {"content-type": "application/json"}
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        for name in _RELAY_HEADERS:
            if name in resp_headers:
                head.append(f"{name.title()}: {resp_headers[name]}")
        try:
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                         + payload)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _read_request(self, reader):
        request = await asyncio.wait_for(reader.readline(), timeout=10.0)
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            raise ValueError("malformed request line")
        method, target = parts[0].upper(), parts[1].split("?", 1)[0]
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length < 0 or length > _MAX_BODY:
            raise ValueError(f"bad content-length {length}")
        body = await asyncio.wait_for(reader.readexactly(length),
                                      timeout=30.0) if length else b""
        return method, target, headers, body

    @staticmethod
    def _render_error(err: ServiceError):
        payload = (json.dumps(err.to_dict(), sort_keys=True) + "\n").encode()
        headers = {"content-type": "application/json; charset=utf-8"}
        if err.retry_after is not None:
            headers["retry-after"] = str(max(1, int(err.retry_after + 0.999)))
        inc_counter(f"service.cluster.http.{err.status}")
        return err.status, headers, payload

    # ------------------------------------------------------------------ #
    async def _dispatch(self, method, path, headers, body):
        if path in ("/health", "/ready", "/metrics"):
            if method != "GET":
                doc = {"error": "method_not_allowed",
                       "message": f"{path} only supports GET"}
                return (405,
                        {"content-type": "application/json; charset=utf-8"},
                        (json.dumps(doc, sort_keys=True) + "\n").encode())
            if path == "/metrics":
                return (200, {"content-type": CONTENT_TYPE},
                        self._metrics_text().encode("utf-8"))
            return self._health(path)
        if path not in _WORK_PATHS:
            raise NotFoundError(
                f"unknown path {path!r}; try /compress, /decompress, "
                "/estimate, /health, /ready, /metrics")
        if method != "POST":
            doc = {"error": "method_not_allowed",
                   "message": f"{path} only supports POST"}
            return (405, {"content-type": "application/json; charset=utf-8"},
                    (json.dumps(doc, sort_keys=True) + "\n").encode())
        if self._draining:
            raise ShardUnavailableError(
                "cluster is draining; no new work accepted",
                retry_after=5.0)
        status, resp_headers, payload = await self._route(
            method, path, headers, body)
        inc_counter(f"service.cluster.http.{status}")
        return status, resp_headers, payload

    # ------------------------------------------------------------------ #
    def _candidates(self, path: str, body: bytes) -> list[int]:
        """Forward order for one request: owner-first or round-robin."""
        healthy = set(self.supervisor.healthy_shards())
        if path == "/decompress":
            key = self._key_from_body(body)
            if key is not None:
                order = self.ring.successors(key)
                return [s for s in order if s in healthy]
        n = self.supervisor.n_shards
        start = self._rr
        self._rr = (self._rr + 1) % n
        return [s for s in ((start + i) % n for i in range(n))
                if s in healthy]

    @staticmethod
    def _key_from_body(body: bytes) -> str | None:
        """The blob key a /decompress body names, if parseable.

        Unparseable bodies route round-robin and let the shard render
        the authoritative 400 — the router never rejects requests.
        """
        try:
            doc = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return None
        key = doc.get("key") if isinstance(doc, dict) else None
        return key if isinstance(key, str) and key else None

    async def _route(self, method, path, headers, body):
        candidates = self._candidates(path, body)
        if not candidates:
            raise ShardUnavailableError(
                "no healthy shard available",
                retry_after=self.supervisor.retry_after_hint(),
                detail={"degraded": self.supervisor.degraded_partitions()})
        primary, rest = candidates[0], candidates[1:]
        try:
            if path in _IDEMPOTENT and rest and self.hedge_budget > 0:
                return await self._forward_hedged(
                    primary, rest[0], method, path, headers, body)
            return await self._forward_once(
                primary, method, path, headers, body)
        except ShardUnavailableError:
            self.supervisor.note_failure(primary)
            if path in _IDEMPOTENT:
                for backup in rest:
                    try:
                        resp = await self._forward_once(
                            backup, method, path, headers, body)
                    except ShardUnavailableError:
                        self.supervisor.note_failure(backup)
                        continue
                    inc_counter("service.cluster.failovers")
                    return resp
            raise ShardUnavailableError(
                f"shard {primary} failed mid-request"
                + ("" if path in _IDEMPOTENT
                   else "; retry the non-idempotent request"),
                retry_after=self.supervisor.retry_after_hint(primary),
                detail={"shard": primary}) from None

    async def _forward_once(self, shard, method, path, headers, body):
        port = self.supervisor.shard_port(shard)
        if port is None:
            raise ShardUnavailableError(f"shard {shard} is not serving")
        inc_counter(f"service.cluster.forward.{shard}")
        return await do_forward(port, method, path, headers, body,
                                timeout=self.forward_timeout)

    async def _forward_hedged(self, primary, backup, method, path,
                              headers, body):
        """Primary forward, hedged to ``backup`` past the latency budget.

        First completed *successful* forward wins; the loser is
        cancelled. Both failing re-raises the primary's error into the
        normal failover path.
        """
        first = asyncio.ensure_future(self._forward_once(
            primary, method, path, headers, body))
        done, _ = await asyncio.wait({first}, timeout=self.hedge_budget)
        if done:
            return first.result()  # fast path; raises into failover
        inc_counter("service.cluster.hedges")
        second = asyncio.ensure_future(self._forward_once(
            backup, method, path, headers, body))
        pending = {first, second}
        failure: ShardUnavailableError | None = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED)
                for task in done:
                    try:
                        result = task.result()
                    except ShardUnavailableError as exc:
                        loser = primary if task is first else backup
                        self.supervisor.note_failure(loser)
                        failure = failure or exc
                        continue
                    if task is second:
                        inc_counter("service.cluster.hedge_wins")
                    return result
            raise failure if failure is not None else ShardUnavailableError(
                f"hedged forward to shards {primary}/{backup} failed")
        finally:
            for task in (first, second):
                if not task.done():
                    task.cancel()

    # ------------------------------------------------------------------ #
    def _health(self, path: str):
        table = self.supervisor.table()
        degraded = self.supervisor.degraded_partitions()
        set_gauge("service.cluster.degraded", float(len(degraded)))
        doc = {
            "status": "ok" if not degraded else "degraded",
            "role": "router",
            "uptime_seconds": round(time.monotonic() - self._t0, 3),
            "shards": table,
            "backoff_model": self.supervisor.backoff_model(),
            "draining": self._draining,
        }
        headers = {"content-type": "application/json; charset=utf-8"}
        if path == "/health":
            return (200,
                    headers,
                    (json.dumps(doc, sort_keys=True) + "\n").encode())
        if degraded or self._draining:
            doc["error"] = "not_ready"
            doc["reasons"] = (["draining"] if self._draining else []) + [
                f"shard {i} {table[i]['state']}: keyspace partition "
                f"{i}/{self.supervisor.n_shards} degraded" for i in degraded]
            retry = self.supervisor.retry_after_hint()
            headers["retry-after"] = str(max(1, int(retry + 0.999)))
            return (503,
                    headers,
                    (json.dumps(doc, sort_keys=True) + "\n").encode())
        return (200,
                headers,
                (json.dumps(doc, sort_keys=True) + "\n").encode())

    def _metrics_text(self) -> str:
        """Router-process metrics plus per-shard labeled aggregates.

        The labeled families are synthesized from the supervisor's
        cached shard health docs, so one scrape of the router covers the
        fleet: state, restarts, request and blob counts per shard.
        """
        out = [render_run(trace.get_run())]
        rows = self.supervisor.table()
        fams = [
            ("service.cluster.shard.state", "gauge", "state",
             "supervision state code (0 stopped..5 dead)"),
            ("service.cluster.shard.restarts", "counter", "restarts",
             "respawns of this shard slot"),
            ("service.cluster.shard.requests", "gauge", "requests",
             "requests served, from the shard's own /health"),
            ("service.cluster.shard.blobs", "gauge", "blobs",
             "blobs visible to the shard's store"),
        ]
        from repro.service.supervise import STATE_CODES
        for series, kind, field, help_text in fams:
            name = sanitize_metric_name(series, "repro_")
            if kind == "counter":
                name += "_total"
            out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {kind}")
            for row in rows:
                value = (STATE_CODES[row["state"]] if field == "state"
                         else row.get(field))
                if value is None:
                    continue
                out.append(f'{name}{{shard="{row["index"]}"}} '
                           f"{float(value):g}")
        return "\n".join(out) + "\n"
