"""Codec-facing request handlers (no HTTP in here).

Each ``do_*`` function takes a validated request dataclass plus the
service's shared state (blob store, fault injector, deadline) and
returns a JSON-ready response dict, raising only the service exception
vocabulary (:data:`repro.service.schemas.SERVICE_ERRORS`) or the codec
decode vocabulary (``DECODE_ERRORS``) — the DEC-003 lint rule holds this
module to exactly those catches. The app layer maps exceptions to HTTP
statuses.

Every stored blob is a *chunked* container (even single-chunk requests)
so decompression always has per-section CRCs to salvage against, and the
request deadline propagates into :func:`repro.parallel.compress_chunked`
— an admitted request whose client stopped waiting is cancelled, not
computed for nobody.
"""

from __future__ import annotations

import numpy as np

from repro import compressor_for
from repro.encoding.container import DECODE_ERRORS
from repro.faults import FaultInjector
from repro.obs import add_bytes, inc_counter, observe_latency, span
from repro.parallel import (
    DeadlineExceededError,
    compress_chunked,
    decompress_chunked,
)
from repro.service.blobstore import BlobStore
from repro.service.schemas import (
    CodecFailureError,
    CompressRequest,
    DeadlineError,
    DecompressRequest,
    EstimateRequest,
    encode_array,
)

__all__ = ["do_compress", "do_decompress", "do_estimate"]


def _run_codec(fn, codec: str, *args, **kwargs):
    """Run codec work, translating failures into the service vocabulary.

    ``DeadlineExceededError`` becomes a 504; anything else the codec
    throws (worker crash, exhausted retries, bad numerics) becomes a 500
    ``codec_failure`` that the app layer feeds to the codec's breaker.
    """
    try:
        return fn(*args, **kwargs)
    except DeadlineExceededError as exc:
        raise DeadlineError(f"codec {codec}: {exc}") from exc
    except DECODE_ERRORS as exc:
        raise CodecFailureError(
            f"codec {codec} failed: {type(exc).__name__}: {exc}") from exc
    except (RuntimeError, ArithmeticError, TypeError, MemoryError) as exc:
        raise CodecFailureError(
            f"codec {codec} failed: {type(exc).__name__}: {exc}") from exc


def do_compress(req: CompressRequest, store: BlobStore, *,
                deadline: float | None = None,
                faults: FaultInjector | None = None) -> dict:
    """Compress, store under the content address, return key + stats."""
    with span("service.compress", codec=req.codec):
        blob = _run_codec(
            compress_chunked, req.codec, req.array, req.codec,
            n_chunks=req.chunks, mask=req.mask, deadline=deadline,
            faults=faults, **req.eb)
        key = store.put(blob)
        add_bytes(len(blob))
    inc_counter("service.compress.ok")
    raw = req.array.nbytes
    observe_latency("service.compress.ratio", raw / max(len(blob), 1))
    return {
        "key": key,
        "codec": req.codec,
        "raw_bytes": raw,
        "compressed_bytes": len(blob),
        "ratio": round(raw / max(len(blob), 1), 4),
        "shape": list(req.array.shape),
        "dtype": req.array.dtype.str,
    }


def do_decompress(req: DecompressRequest, store: BlobStore, *,
                  deadline: float | None = None) -> dict:
    """Fetch + decode a stored blob; damaged blobs degrade to salvage.

    The store digest-verifies on read. A corrupt blob does not 500: when
    the request allows salvage (the default) the damaged bytes are decoded
    in salvage mode — missing/damaged chunks come back NaN-filled with a
    section-level report — and the response is flagged ``salvaged`` (the
    app layer sends 206). ``salvage=false`` surfaces the 502 instead.
    """
    from repro.service.schemas import BlobCorruptError

    salvaged = False
    report = None
    try:
        blob = store.get(req.key)
    except BlobCorruptError:
        if not req.salvage:
            raise
        inc_counter("service.decompress.salvage_attempts")
        blob = store.fetch_raw(req.key)
        salvaged = True
    with span("service.decompress", key=req.key[:12]):
        add_bytes(len(blob))
        if salvaged:
            try:
                array, report = _run_codec(
                    decompress_chunked, "chunked", blob, salvage=True,
                    deadline=deadline)
            except DECODE_ERRORS as exc:
                # even salvage mode could not parse the outer container
                raise BlobCorruptError(
                    f"blob {req.key!r} is damaged beyond salvage: {exc}",
                    detail={"key": req.key}) from exc
        else:
            array = _run_codec(decompress_chunked, "chunked", blob,
                               deadline=deadline)
    inc_counter("service.decompress.ok")
    doc = {"array": encode_array(array), "salvaged": salvaged}
    if report is not None:
        doc["salvage_report"] = report.to_dict()
    return doc


def do_estimate(req: EstimateRequest, *, deadline: float | None = None) -> dict:
    """Cheap compressibility probe: compress a leading slab, extrapolate.

    Runs entirely in-process on at most ``sample_budget`` elements (a
    contiguous leading slab, preserving the spatial smoothness the
    predictor exploits), so it keeps serving while pools are broken or a
    codec's breaker is open — exactly the degraded-mode role the endpoint
    exists for.
    """
    arr = req.array
    per_row = int(np.prod(arr.shape[1:])) if arr.ndim > 1 else 1
    rows = max(1, min(arr.shape[0], -(-req.sample_budget // max(per_row, 1))))
    sample = np.ascontiguousarray(arr[:rows])
    mask = None if req.mask is None else np.ascontiguousarray(req.mask[:rows])
    with span("service.estimate", codec=req.codec):
        kwargs = dict(req.eb)
        if mask is not None:
            kwargs["mask"] = mask
        blob = _run_codec(
            lambda: compressor_for(req.codec).compress(sample, **kwargs),
            req.codec)
    ratio = sample.nbytes / max(len(blob), 1)
    inc_counter("service.estimate.ok")
    return {
        "codec": req.codec,
        "sampled_elements": int(sample.size),
        "total_elements": int(arr.size),
        "sample_ratio": round(ratio, 4),
        "estimated_compressed_bytes": int(arr.nbytes / max(ratio, 1e-9)),
    }
