"""Per-codec circuit breakers with a closed / open / half-open lifecycle.

Same consecutive-failure shape as the sweep driver's
:class:`repro.experiments.sweep.CircuitBreaker`, extended for a live
service: an open breaker *recovers*. After ``cooldown`` seconds the
breaker admits one probe request (half-open); a success closes it, a
failure re-opens it for another cooldown. The clock is injectable so the
chaos drill can advance time deterministically instead of sleeping.

State transitions publish gauges (``service.breaker.<codec>`` is 0
closed / 0.5 half-open / 1 open) so ``/metrics`` and the drill can watch
recovery without touching internals.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs import inc_counter, set_gauge

__all__ = ["CodecBreaker", "BreakerBoard"]

_STATE_GAUGE = {"closed": 0.0, "half_open": 0.5, "open": 1.0}


class CodecBreaker:
    """Consecutive-failure breaker for one codec."""

    def __init__(self, codec: str, *, threshold: int = 3,
                 cooldown: float = 30.0,
                 clock: Callable[[], float] | None = None) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.codec = codec
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.clock = clock or time.monotonic
        self.state = "closed"
        self.consecutive = 0
        self.opened_at: float | None = None
        self._lock = threading.Lock()
        self._publish()

    # ------------------------------------------------------------------ #
    def _publish(self) -> None:
        set_gauge(f"service.breaker.{self.codec}", _STATE_GAUGE[self.state])

    def _tick(self) -> None:
        """Open -> half-open once the cooldown has elapsed (lock held)."""
        if (self.state == "open" and self.opened_at is not None
                and self.clock() - self.opened_at >= self.cooldown):
            self.state = "half_open"
            inc_counter(f"service.breaker.{self.codec}.half_open")
            self._publish()

    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """May a request for this codec proceed right now?

        Closed: yes. Open: no, until the cooldown elapses. Half-open:
        admits exactly one probe (further calls see open-like denial
        until the probe reports back).
        """
        with self._lock:
            self._tick()
            if self.state == "closed":
                return True
            if self.state == "half_open":
                # one probe at a time: mark it taken by moving opened_at
                # forward so a second concurrent caller stays shut out.
                self.state = "probing"
                return True
            return False

    def retry_after(self) -> float:
        """Seconds until the next probe would be admitted (0 if now)."""
        with self._lock:
            if self.state in ("closed", "half_open"):
                return 0.0
            if self.opened_at is None:
                return self.cooldown
            return max(0.0, self.cooldown - (self.clock() - self.opened_at))

    def record(self, ok: bool) -> None:
        """Report the outcome of an admitted request."""
        with self._lock:
            if ok:
                if self.state != "closed":
                    inc_counter(f"service.breaker.{self.codec}.closed")
                self.state = "closed"
                self.consecutive = 0
                self.opened_at = None
            else:
                self.consecutive += 1
                if self.state == "probing" or self.consecutive >= self.threshold:
                    if self.state != "open":
                        inc_counter(f"service.breaker.{self.codec}.tripped")
                    self.state = "open"
                    self.opened_at = self.clock()
            self._publish()

    def snapshot(self) -> dict:
        with self._lock:
            self._tick()
            state = "half_open" if self.state == "probing" else self.state
            return {
                "state": state,
                "consecutive_failures": self.consecutive,
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown,
                "retry_after": round(max(
                    0.0, self.cooldown - (self.clock() - self.opened_at))
                    if self.state in ("open", "probing") and self.opened_at is not None
                    else 0.0, 3),
            }


class BreakerBoard:
    """Lazily-created breaker per codec, shared across handler threads."""

    def __init__(self, *, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] | None = None) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self._breakers: dict[str, CodecBreaker] = {}
        self._lock = threading.Lock()

    def for_codec(self, codec: str) -> CodecBreaker:
        with self._lock:
            breaker = self._breakers.get(codec)
            if breaker is None:
                breaker = CodecBreaker(
                    codec, threshold=self.threshold, cooldown=self.cooldown,
                    clock=self.clock)
                self._breakers[codec] = breaker
            return breaker

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            breakers = dict(self._breakers)
        return {codec: b.snapshot() for codec, b in sorted(breakers.items())}

    def any_open(self) -> bool:
        return any(s["state"] != "closed" for s in self.snapshot().values())
