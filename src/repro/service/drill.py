"""Deterministic chaos drill: replay a seeded fault schedule, assert invariants.

``python -m repro.service drill --seed 9`` starts live in-process servers
and drives them through four phases over real HTTP (plus an opt-in
``shardkill`` cluster phase — see below):

* **soup** — a mixed seeded schedule (worker crashes, blob I/O errors,
  client aborts, handler stalls) against sequential requests. The drill
  *predicts* every response from the same pure fault functions the server
  consults — ``(seed, kind, index)`` — and asserts predicted == actual
  status/reason for every request.
* **breaker** — trips the ``cliz`` breaker with an injected worker crash,
  asserts degraded mode (503 ``breaker_open`` with Retry-After, while
  ``/estimate`` and healthy codecs keep serving and ``/ready`` reports
  503), then advances the injected clock past the cooldown and asserts
  the half-open probe recovers to closed — bounded recovery, no sleeping.
* **salvage** — flips one bit of a stored blob on disk, asserts
  decompression degrades to 206 + salvage report (or 502 when salvage is
  declined) and that digest verification confines the damage to exactly
  the blob the drill corrupted — zero collateral store corruption.
* **overload** — fills the bounded queue with stalled requests and
  asserts the overflow sheds with 429 ``queue_full``, exhausts a frozen
  token bucket for 429 ``rate_limited``, and forces a 504 by stalling
  past an explicit ``X-Deadline``.
* **shardkill** (``--phases shardkill``; not in the default set because
  it spawns real shard processes) — starts a two-shard supervised
  cluster, SIGKILLs the seed-chosen victim shard *mid-request*, and
  asserts: the in-flight request on the dead shard maps to 503
  ``not_ready`` + Retry-After (never a raw connection reset); reads of
  victim-owned keys fail over to the sibling; a stalled victim gets
  hedged within the latency budget; ``/ready`` reports the degraded
  keyspace partition while the shard is down; the supervisor restarts it
  within the modeled backoff bound; and a full-store digest sweep shows
  zero collateral corruption afterwards.

Everything the drill decides is a pure function of the seed (the clock is
injected and advanced manually; concurrent batches are order-normalized),
so re-running with the same seed produces a byte-identical event log —
CI runs it twice and compares digests. The report JSON carries the event
log, per-invariant verdicts, and a scrape of the live ``/metrics``
exporter proving the queue/breaker/shed gauges are exported.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.faults import FaultInjector, parse_fault_spec
from repro.obs import trace
from repro.obs.server import MetricsServer
from repro.service.app import ServiceConfig, ServiceServer
from repro.service.blobstore import BlobStore, shard_for_key
from repro.service.cluster import ClusterConfig, ClusterServer
from repro.service.schemas import encode_array

__all__ = ["DrillClock", "run_drill", "main"]

_SOUP_STEPS = 30
_BREAKER_COOLDOWN = 60.0
_CLUSTER_SHARDS = 2
_VICTIM_STALL = 0.6  # seconds every victim POST stalls (>> hedge budget)
_HEDGE_BUDGET = 0.15


class DrillClock:
    """A monotonic clock the drill advances by hand (determinism)."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# ---------------------------------------------------------------------- #
def _request(port: int, method: str, path: str, doc: dict | None = None,
             headers: dict | None = None):
    """One HTTP exchange; returns (status | 'aborted', body-dict, headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    body = None if doc is None else json.dumps(doc).encode("utf-8")
    try:
        conn.request(method, path, body=body,
                     headers=headers or {})
        resp = conn.getresponse()
        payload = resp.read()
        parsed = json.loads(payload) if payload else {}
        return resp.status, parsed, {k.lower(): v for k, v in resp.getheaders()}
    except (http.client.BadStatusLine, http.client.RemoteDisconnected,
            ConnectionError, OSError):
        return "aborted", {}, {}
    finally:
        conn.close()


def _field(step: int, shape=(6, 10, 20)) -> np.ndarray:
    """A small smooth climate-ish field, varied per step (distinct keys)."""
    z, y, x = np.meshgrid(np.arange(shape[0]), np.arange(shape[1]),
                          np.arange(shape[2]), indexing="ij")
    return (np.sin(0.2 * x + 0.1 * step) * np.cos(0.3 * y)
            + 0.05 * z).astype(np.float32)


def _compress_doc(step: int, codec: str) -> dict:
    return {"codec": codec, "array": encode_array(_field(step)),
            "rel_eb": 1e-3, "chunks": 2}


class _Check:
    """Accumulates invariant verdicts; any failure fails the drill."""

    def __init__(self) -> None:
        self.failures: list[str] = []
        self.passed = 0

    def expect(self, ok: bool, what: str) -> None:
        if ok:
            self.passed += 1
        else:
            self.failures.append(what)

    def status(self, label, actual, expected, reason=None, body=None) -> None:
        self.expect(actual == expected,
                    f"{label}: expected {expected}, got {actual} "
                    f"({(body or {}).get('error')})")
        if reason is not None and actual == expected:
            self.expect((body or {}).get("error") == reason,
                        f"{label}: expected reason {reason!r}, "
                        f"got {(body or {}).get('error')!r}")


# ---------------------------------------------------------------------- #
def _soup_phase(seed: int, root: Path, events: list, check: _Check) -> dict:
    """Mixed fault soup: model-predicted status for every request."""
    spec = (f"seed={seed};crash:p=0.3;bloberr:p=0.15;abort:p=0.15;"
            "stall:p=0.2:delay=0.02")
    injector = parse_fault_spec(spec)
    clock = DrillClock()
    server = ServiceServer(ServiceConfig(
        store_root=root / "soup", faults=injector, clock=clock,
        max_queue=4, rate=1000.0, burst=100000,
        breaker_threshold=10_000)).start()  # breakers tested in their own phase
    counts = {"aborted": 0, "codec_failure": 0, "blob_io": 0, "ok": 0}
    try:
        keys: list[str] = []
        op_counter = 0  # mirrors the blob store's op index
        index = 0  # mirrors the server's request sequence
        for step in range(_SOUP_STEPS):
            if step % 5 == 4 and keys:
                action, doc = "/decompress", {"key": keys[-1]}
            elif step % 3 == 2:
                action, doc = "/estimate", _compress_doc(step, "cliz")
            else:
                codec = "cliz" if step % 2 == 0 else "sz3"
                action, doc = "/compress", _compress_doc(step, codec)

            # The model: same pure functions the server consults.
            if injector.abort_request(index):
                expected, reason = "aborted", None
                counts["aborted"] += 1
            elif action == "/estimate":
                expected, reason = 200, None
            elif action == "/compress":
                if injector.job_faults("service.request",
                                       index).crash_attempts > 0:
                    expected, reason = 500, "codec_failure"
                    counts["codec_failure"] += 1
                else:
                    fails = injector.blob_error("write", op_counter)
                    op_counter += 1
                    if fails:
                        expected, reason = 503, "blob_io"
                        counts["blob_io"] += 1
                    else:
                        expected, reason = 200, None
            else:  # /decompress of a known-good key
                fails = injector.blob_error("read", op_counter)
                op_counter += 1
                if fails:
                    expected, reason = 503, "blob_io"
                    counts["blob_io"] += 1
                else:
                    expected, reason = 200, None

            status, body, _ = _request(server.port, "POST", action, doc,
                                       {"X-Client": "soup"})
            if expected == "aborted":
                check.status(f"soup[{index}] {action}", status, "aborted")
            else:
                check.status(f"soup[{index}] {action}", status, expected,
                             reason, body)
            if status == 200:
                counts["ok"] += 1
                if action == "/compress":
                    keys.append(body["key"])
            events.append({"phase": "soup", "index": index, "path": action,
                           "expected": expected, "status": status,
                           "reason": (body or {}).get("error")})
            index += 1

        intact = server.store.verify_all()
        check.expect(all(intact.values()),
                     f"soup: blob store corruption: "
                     f"{[k for k, ok in intact.items() if not ok]}")
        check.expect(counts["aborted"] > 0 and counts["codec_failure"] > 0
                     and counts["blob_io"] > 0 and counts["ok"] > 5,
                     f"soup: schedule did not exercise all fault kinds "
                     f"({counts})")
        health, body, _ = _request(server.port, "GET", "/health")
        check.status("soup /health", health, 200)
        check.expect(body.get("requests") == _SOUP_STEPS,
                     f"soup: /health reports {body.get('requests')} requests, "
                     f"expected {_SOUP_STEPS}")
    finally:
        server.stop()
    return {"spec": spec, "counts": counts}


def _breaker_phase(seed: int, root: Path, events: list, check: _Check) -> dict:
    """Trip, degrade, and recover the cliz breaker on an injected clock."""
    clock = DrillClock()
    injector = parse_fault_spec(f"seed={seed};crash:p=1:only=0")
    server = ServiceServer(ServiceConfig(
        store_root=root / "breaker", faults=injector, clock=clock,
        max_queue=4, rate=1000.0, burst=100000, breaker_threshold=1,
        breaker_cooldown=_BREAKER_COOLDOWN)).start()

    def post(label, path, doc, expected, reason=None, headers=None):
        status, body, hdrs = _request(server.port, "POST", path, doc,
                                      headers or {"X-Client": "breaker"})
        check.status(label, status, expected, reason, body)
        events.append({"phase": "breaker", "label": label, "path": path,
                       "expected": expected, "status": status,
                       "reason": (body or {}).get("error")})
        return body, hdrs

    try:
        # request 0: crash clause (only=0) kills the dispatch -> 500 + trip
        post("breaker trip", "/compress", _compress_doc(0, "cliz"),
             500, "codec_failure")
        status, body, _ = _request(server.port, "GET", "/ready")
        check.status("breaker /ready while open", status, 503, "not_ready",
                     body)
        check.expect(body.get("breakers", {}).get("cliz", {}).get("state")
                     == "open", "breaker: /ready does not show cliz open")
        # request 1: shed at the gate, machine-readable + Retry-After
        body, hdrs = post("breaker shed", "/compress",
                          _compress_doc(1, "cliz"), 503, "breaker_open")
        check.expect("retry-after" in hdrs,
                     "breaker: 503 is missing Retry-After")
        check.expect(0 < float(body.get("retry_after", -1))
                     <= _BREAKER_COOLDOWN,
                     f"breaker: retry_after {body.get('retry_after')} outside "
                     f"(0, {_BREAKER_COOLDOWN}]")
        # requests 2-3: degraded mode still serves estimate + healthy codecs
        post("breaker degraded estimate", "/estimate",
             _compress_doc(2, "cliz"), 200)
        post("breaker healthy codec", "/compress", _compress_doc(3, "sz3"),
             200)
        # recovery: advance past the cooldown; probe succeeds; closed again
        clock.advance(_BREAKER_COOLDOWN + 0.001)
        post("breaker probe", "/compress", _compress_doc(4, "cliz"), 200)
        post("breaker recovered", "/compress", _compress_doc(5, "cliz"), 200)
        status, body, _ = _request(server.port, "GET", "/ready")
        check.status("breaker /ready recovered", status, 200)
        check.expect(body.get("breakers", {}).get("cliz", {}).get("state")
                     == "closed", "breaker: cliz did not close after probe")
    finally:
        server.stop()
    return {"cooldown": _BREAKER_COOLDOWN}


def _salvage_phase(seed: int, root: Path, events: list, check: _Check) -> dict:
    """Bit rot on disk: digest-verified reads degrade to salvage, not 500s."""
    server = ServiceServer(ServiceConfig(
        store_root=root / "salvage", faults=FaultInjector([], seed=seed),
        max_queue=4, rate=1000.0, burst=100000)).start()

    def log(label, path, status, expected, body):
        events.append({"phase": "salvage", "label": label, "path": path,
                       "expected": expected, "status": status,
                       "reason": (body or {}).get("error")})

    try:
        doc = {"codec": "cliz", "array": encode_array(_field(7)),
               "rel_eb": 1e-3, "chunks": 4}
        status, body, _ = _request(server.port, "POST", "/compress", doc)
        check.status("salvage compress", status, 200)
        log("salvage compress", "/compress", status, 200, body)
        key = body["key"]

        status, body, _ = _request(server.port, "POST", "/decompress",
                                   {"key": key})
        check.status("salvage clean decompress", status, 200)
        check.expect(body.get("salvaged") is False,
                     "salvage: clean blob flagged as salvaged")
        log("clean decompress", "/decompress", status, 200, body)

        server.store.corrupt(key)  # one flipped bit, mid-blob, on disk

        status, body, _ = _request(server.port, "POST", "/decompress",
                                   {"key": key})
        check.status("salvage degraded decompress", status, 206, None, body)
        check.expect(body.get("salvaged") is True
                     and body.get("salvage_report", {}).get("failures"),
                     "salvage: 206 response lacks a salvage report")
        log("salvaged decompress", "/decompress", status, 206, body)

        status, body, _ = _request(server.port, "POST", "/decompress",
                                   {"key": key, "salvage": False})
        check.status("salvage declined", status, 502, "blob_corrupt", body)
        log("strict decompress", "/decompress", status, 502, body)

        status, body, _ = _request(server.port, "POST", "/decompress",
                                   {"key": "ab" * 20})
        check.status("salvage unknown key", status, 404, "not_found", body)
        log("unknown key", "/decompress", status, 404, body)

        intact = server.store.verify_all()
        damaged = sorted(k for k, ok in intact.items() if not ok)
        check.expect(damaged == [key],
                     f"salvage: damage not confined to the corrupted blob "
                     f"(damaged={damaged})")
    finally:
        server.stop()
    return {"corrupted_key": key}


def _overload_phase(seed: int, root: Path, events: list, check: _Check) -> dict:
    """Bounded queue, frozen token bucket, and explicit deadlines shed load."""
    clock = DrillClock()
    server = ServiceServer(ServiceConfig(
        store_root=root / "overload", faults=FaultInjector([], seed=seed),
        clock=clock, max_queue=2, rate=1.0, burst=4,
        default_deadline=30.0)).start()
    try:
        # fill the queue with two stalled requests, then shed the overflow
        stalled: list = [None, None]

        def slow(i):
            stalled[i] = _request(server.port, "POST", "/estimate",
                                  _compress_doc(20 + i, "cliz"),
                                  {"X-Client": f"fill{i}",
                                   "X-Drill-Stall": "0.8"})

        threads = [threading.Thread(target=slow, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:  # GET never consumes an index
            _, body, _ = _request(server.port, "GET", "/health")
            if body.get("queue", {}).get("depth", 0) >= 2:
                break
            time.sleep(0.02)
        status, body, hdrs = _request(server.port, "POST", "/estimate",
                                      _compress_doc(22, "cliz"),
                                      {"X-Client": "overflow"})
        check.status("overload queue_full", status, 429, "queue_full", body)
        check.expect("retry-after" in hdrs,
                     "overload: queue_full 429 missing Retry-After")
        events.append({"phase": "overload", "label": "queue_full",
                       "path": "/estimate", "expected": 429, "status": status,
                       "reason": (body or {}).get("error")})
        for t in threads:
            t.join()
        for i, result in enumerate(stalled):
            check.status(f"overload stalled[{i}]", result[0], 200)
        # order-normalized: both stalled entries are identical by design
        events.append({"phase": "overload", "label": "stalled-batch",
                       "statuses": sorted(r[0] for r in stalled)})

        # frozen bucket: burst of 4 tokens, no refill -> requests 5+ shed
        statuses = []
        for i in range(6):
            status, body, hdrs = _request(server.port, "POST", "/estimate",
                                          _compress_doc(30 + i, "cliz"),
                                          {"X-Client": "burst"})
            statuses.append(status)
        check.expect(statuses == [200, 200, 200, 200, 429, 429],
                     f"overload: rate-limit pattern {statuses}")
        check.expect((body or {}).get("error") == "rate_limited",
                     "overload: final shed is not reason rate_limited")
        check.expect("retry-after" in hdrs,
                     "overload: rate_limited 429 missing Retry-After")
        events.append({"phase": "overload", "label": "rate-limit",
                       "statuses": statuses})

        # explicit deadline: stall past it -> 504, work never ran
        status, body, _ = _request(server.port, "POST", "/compress",
                                   _compress_doc(40, "cliz"),
                                   {"X-Client": "deadline",
                                    "X-Deadline": "0.01",
                                    "X-Drill-Stall": "0.1"})
        check.status("overload deadline", status, 504, "deadline_exceeded",
                     body)
        events.append({"phase": "overload", "label": "deadline",
                       "path": "/compress", "expected": 504, "status": status,
                       "reason": (body or {}).get("error")})

        # request hygiene: 400 / 404 / 405 are classified, not 500s
        status, body, _ = _request(server.port, "POST", "/compress",
                                   {"codec": "nope"}, {"X-Client": "bad"})
        check.status("overload bad codec", status, 400, "bad_request", body)
        status, body, _ = _request(server.port, "POST", "/nothing", {})
        check.status("overload unknown path", status, 404, "not_found", body)
        status, body, _ = _request(server.port, "GET", "/compress")
        check.status("overload wrong method", status, 405)
        events.append({"phase": "overload", "label": "hygiene",
                       "statuses": [400, 404, 405]})
    finally:
        server.stop()
    return {}


def _fetch_text(port: int, path: str) -> str:
    """GET a plain-text endpoint (``/metrics`` is not JSON)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        return conn.getresponse().read().decode("utf-8")
    finally:
        conn.close()


def _shardkill_phase(seed: int, root: Path, events: list,
                     check: _Check) -> dict:
    """Kill a shard mid-request; assert classified failure + bounded recovery.

    Every decision is deterministic: the victim is the pure seeded
    ``shardkill`` fault function; blob keys (hence ring ownership) depend
    only on the drilled field contents; round-robin placement follows the
    fixed request sequence. Events record statuses and roles, never
    timings, ports, or pids.
    """
    injector = parse_fault_spec(f"seed={seed};shardkill:p=1")
    victim = injector.shard_kill(0, n_shards=_CLUSTER_SHARDS)
    check.expect(victim is not None, "shardkill: seeded clause did not fire")
    sibling = (victim + 1) % _CLUSTER_SHARDS
    events.append({"phase": "shardkill", "label": "victim-chosen",
                   "n_shards": _CLUSTER_SHARDS})

    cluster = ClusterServer(ClusterConfig(
        n_shards=_CLUSTER_SHARDS, store_root=root / "cluster",
        max_queue=8, rate=1000.0, burst=100000,
        probe_interval=0.1, probe_fail_threshold=3,
        backoff_base=0.5, backoff_cap=1.0,
        start_timeout=20.0, max_restarts=5, restart_window=60.0,
        hedge_budget=_HEDGE_BUDGET, drain_deadline=5.0,
        # the victim stalls every POST: slow enough to hedge around, and
        # a guaranteed in-flight window for the mid-request SIGKILL
        shard_fault_specs={
            victim: f"seed={seed};stall:p=1:delay={_VICTIM_STALL}"},
    )).start()

    def post(label, path, doc, expected, reason=None):
        status, body, hdrs = _request(cluster.port, "POST", path, doc,
                                      {"X-Client": "shardkill"})
        check.status(label, status, expected, reason, body)
        events.append({"phase": "shardkill", "label": label, "path": path,
                       "expected": expected, "status": status,
                       "reason": (body or {}).get("error")})
        return body, hdrs

    try:
        # ---- seed the keyspace until both partitions own a key -------- #
        keys: list[str] = []
        step = 0
        while step < 12 and (
                not keys
                or len({shard_for_key(k, _CLUSTER_SHARDS)
                        for k in keys}) < _CLUSTER_SHARDS):
            body, _ = post(f"compress[{step}]", "/compress",
                           _compress_doc(50 + step, "cliz"), 200)
            if body.get("key"):
                keys.append(body["key"])
            step += 1
        owners = {shard_for_key(k, _CLUSTER_SHARDS) for k in keys}
        check.expect(owners == set(range(_CLUSTER_SHARDS)),
                     f"shardkill: keyspace not spread ({len(owners)} of "
                     f"{_CLUSTER_SHARDS} partitions own a key)")
        vkey = next(k for k in keys
                    if shard_for_key(k, _CLUSTER_SHARDS) == victim)

        # ---- owner routing: everything reads back through the router -- #
        for i, key in enumerate(keys):
            post(f"read[{i}]", "/decompress", {"key": key}, 200)

        # ---- hedging: a stalled owner is outrun by its sibling -------- #
        status, body, hdrs = _request(cluster.port, "POST", "/decompress",
                                      {"key": vkey},
                                      {"X-Client": "shardkill"})
        check.status("hedge", status, 200, None, body)
        served = hdrs.get("x-repro-shard")
        check.expect(served == str(sibling),
                     f"hedge: served by shard {served!r}, expected the "
                     f"sibling (victim stalls {_VICTIM_STALL}s, budget "
                     f"{_HEDGE_BUDGET}s)")
        events.append({"phase": "shardkill", "label": "hedge",
                       "status": status,
                       "served_by": "sibling" if served == str(sibling)
                       else "other"})

        # ---- steer round-robin so the next compress hits the victim --- #
        for attempt in range(_CLUSTER_SHARDS):
            _, hdrs = post(f"steer[{attempt}]", "/compress",
                           _compress_doc(70 + attempt, "cliz"), 200)
            if hdrs.get("x-repro-shard") == str(sibling):
                break

        # ---- SIGKILL the victim mid-request --------------------------- #
        inflight: dict = {}

        def racing():
            inflight["resp"] = _request(
                cluster.port, "POST", "/compress",
                _compress_doc(90, "cliz"), {"X-Client": "race"})

        racer = threading.Thread(target=racing)
        racer.start()
        time.sleep(_VICTIM_STALL / 2)  # surely in flight, surely not done
        t_kill = time.monotonic()
        pid = cluster.supervisor.kill(victim)
        check.expect(pid is not None, "shardkill: no victim process to kill")
        racer.join(timeout=30.0)
        status, body, hdrs = inflight["resp"]
        check.status("kill-inflight", status, 503, "not_ready", body)
        check.expect(status != "aborted",
                     "shardkill: in-flight request saw a raw connection "
                     "reset instead of a classified 503")
        check.expect("retry-after" in hdrs,
                     "shardkill: in-flight 503 is missing Retry-After")
        events.append({"phase": "shardkill", "label": "kill-inflight",
                       "expected": 503, "status": status,
                       "reason": (body or {}).get("error"),
                       "retry_after_present": "retry-after" in hdrs})

        # ---- reads of victim-owned keys fail over to the sibling ------ #
        post("failover-read", "/decompress", {"key": vkey}, 200)

        # ---- /ready reports the degraded keyspace --------------------- #
        saw_degraded = False
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            status, body, hdrs = _request(cluster.port, "GET", "/ready")
            if status == 503 and body.get("error") == "not_ready":
                saw_degraded = bool(body.get("reasons"))
                break
            time.sleep(0.02)
        check.expect(saw_degraded,
                     "shardkill: /ready never reported the dead shard's "
                     "keyspace partition as degraded")
        events.append({"phase": "shardkill", "label": "ready-degraded",
                       "expected": 503, "status": 503 if saw_degraded
                       else "never", "reason": "not_ready"})

        # ---- supervisor restarts within the modeled backoff ----------- #
        bound = cluster.supervisor.max_recovery_seconds()
        recovered = False
        while time.monotonic() - t_kill < bound:
            status, body, _ = _request(cluster.port, "GET", "/ready")
            if status == 200:
                recovered = True
                break
            time.sleep(0.05)
        check.expect(recovered,
                     f"shardkill: victim not healthy again within the "
                     f"modeled {bound:.1f}s recovery bound")
        events.append({"phase": "shardkill", "label": "restart",
                       "recovered_within_model": recovered})

        # ---- the reborn shard serves; the whole keyspace reads -------- #
        for i, key in enumerate(keys):
            post(f"post-restart read[{i}]", "/decompress", {"key": key}, 200)

        # ---- zero collateral corruption ------------------------------- #
        intact = BlobStore(root / "cluster").verify_all()
        damaged = sorted(k for k, ok in intact.items() if not ok)
        check.expect(not damaged,
                     f"shardkill: collateral blob corruption: {damaged}")
        check.expect(set(keys) <= set(intact),
                     "shardkill: compressed keys missing from the store")
        events.append({"phase": "shardkill", "label": "verify-all",
                       "damaged": damaged, "keys_present": True})

        # ---- cluster telemetry: one scrape covers the fleet ----------- #
        text = _fetch_text(cluster.port, "/metrics")
        wanted = ["repro_service_cluster_shard_state",
                  "repro_service_cluster_shard_restarts_total",
                  "repro_service_cluster_restarts_total",
                  "repro_service_cluster_hedges_total"]
        missing = [w for w in wanted if w not in text]
        check.expect(not missing,
                     f"shardkill: /metrics missing families: {missing}")
        status, body, _ = _request(cluster.port, "GET", "/health")
        check.status("cluster /health", status, 200)
        check.expect(len(body.get("shards", [])) == _CLUSTER_SHARDS
                     and "backoff_model" in body,
                     "shardkill: /health lacks shard table or backoff model")
        events.append({"phase": "shardkill", "label": "telemetry",
                       "metrics_missing": missing})
        restarts = sum(r["restarts"] for r in cluster.supervisor.table())
    finally:
        cluster.stop()
    return {"n_shards": _CLUSTER_SHARDS, "keys": len(keys),
            "restarts": restarts,
            "backoff_model": cluster.supervisor.backoff_model()}


def _metrics_scrape(check: _Check) -> dict:
    """The live gauges must be visible on the existing /metrics exporter."""
    exporter = MetricsServer(port=0).start()
    try:
        conn = http.client.HTTPConnection("127.0.0.1", exporter.port,
                                          timeout=10)
        conn.request("GET", "/metrics")
        text = conn.getresponse().read().decode("utf-8")
        conn.close()
    finally:
        exporter.stop()
    wanted = ["service_queue_depth", "service_breaker_cliz", "service_shed",
              "service_http_429"]
    missing = [w for w in wanted if w not in text]
    check.expect(not missing, f"/metrics scrape missing gauges: {missing}")
    return {"scraped_bytes": len(text), "missing": missing}


# ---------------------------------------------------------------------- #
#: All drill phases, in run order. The default set excludes ``shardkill``
#: (it spawns real shard processes); select it with ``--phases``.
_PHASE_FNS = {
    "soup": _soup_phase,
    "breaker": _breaker_phase,
    "salvage": _salvage_phase,
    "overload": _overload_phase,
    "shardkill": _shardkill_phase,
}
_DEFAULT_PHASES = ("soup", "breaker", "salvage", "overload")


def run_drill(seed: int = 9, report_path: str | None = None,
              verbose: bool = True,
              phases: tuple[str, ...] | None = None) -> tuple[int, dict]:
    """Run the drill; returns (exit code, report dict).

    ``phases`` selects a subset by name (default: every single-process
    phase; pass ``("shardkill",)`` for the cluster kill drill, or any
    combination — run order always follows :data:`_PHASE_FNS`).
    """
    selected = _DEFAULT_PHASES if phases is None else tuple(phases)
    unknown = [p for p in selected if p not in _PHASE_FNS]
    if unknown or not selected:
        raise ValueError(
            f"unknown drill phases {unknown}; known: {list(_PHASE_FNS)}")
    own_run = trace.get_run() is None
    if own_run:
        trace.start_run(tags={"command": "service.drill", "seed": str(seed)})
    check = _Check()
    events: list[dict] = []
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-drill-") as tmp:
        root = Path(tmp)
        phase_reports = {
            name: fn(seed, root, events, check)
            for name, fn in _PHASE_FNS.items() if name in selected
        }
    if all(p in selected for p in _DEFAULT_PHASES):
        # the gauge families the scrape asserts are spread across the
        # in-process phases (shed/429 come from overload, breaker state
        # from breaker, ...), so only a full default run can satisfy it
        phase_reports["metrics"] = _metrics_scrape(check)
    if own_run:
        trace.end_run()
    event_digest = hashlib.sha256(
        json.dumps(events, sort_keys=True).encode("utf-8")).hexdigest()
    report = {
        "seed": seed,
        "ok": not check.failures,
        "invariants_passed": check.passed,
        "failures": check.failures,
        "phases_run": list(selected),
        "phases": phase_reports,
        "events": events,
        "event_digest": event_digest,
        "wall_seconds": round(time.monotonic() - t0, 3),
    }
    if report_path:
        from repro.runtime import atomic_write

        Path(report_path).parent.mkdir(parents=True, exist_ok=True)
        atomic_write(report_path, json.dumps(report, indent=2,
                                             sort_keys=True) + "\n")
    if verbose:
        print(f"drill seed={seed}: {check.passed} invariant checks passed, "
              f"{len(check.failures)} failed; event digest {event_digest[:16]}")
        for failure in check.failures:
            print(f"  FAIL: {failure}")
    return (0 if not check.failures else 1), report


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-service-drill",
        description="deterministic chaos drill against the live service")
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--report", default=None, metavar="FILE",
                        help="write the drill report JSON here")
    parser.add_argument("--phases", default=None, metavar="P1,P2",
                        help="comma-separated phase subset "
                             f"(known: {','.join(_PHASE_FNS)})")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    phases = None
    if args.phases:
        phases = tuple(p.strip() for p in args.phases.split(",") if p.strip())
    code, _ = run_drill(seed=args.seed, report_path=args.report,
                        verbose=not args.quiet, phases=phases)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
