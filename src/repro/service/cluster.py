"""The sharded compression service: supervisor + router in one handle.

:class:`ClusterServer` is the process-level composition root. It

1. spawns ``n_shards`` shard processes (``python -m repro.service shard
   --index i --shards n ...``), each a full single-process
   :class:`~repro.service.app.ServiceServer` on an ephemeral port with
   ``partition=(i, n)`` scoping its slice of the shared blob-store root;
2. runs a :class:`~repro.service.supervise.ShardSupervisor` probe loop
   over them (crash detection, bounded-backoff restart, crash-loop
   breaker);
3. fronts them with a :class:`~repro.service.router.ClusterRouter`
   speaking the exact single-process API on one port.

Shards report their bound port through a *port file* under
``<store_root>/.cluster/`` (written with ``atomic_write`` by the shard,
so the supervisor never reads a torn value; stale files from a previous
incarnation are unlinked before each spawn). The dot-directory is
invisible to the blob store's listings, so runtime state never pollutes
the keyspace.

Per-shard fault specs (``shard_fault_specs``) let a chaos drill give one
shard a pathological personality — e.g. a 100%-stall clause on the
victim so the router's hedge fires — while its siblings stay honest.
"""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runtime import atomic_write
from repro.service.router import ClusterRouter
from repro.service.supervise import ShardSupervisor

__all__ = ["ClusterConfig", "ClusterServer"]


@dataclass
class ClusterConfig:
    """Tunables for one :class:`ClusterServer`."""

    n_shards: int = 2
    host: str = "127.0.0.1"
    port: int = 0  # router port; shards always bind ephemeral ports
    store_root: str | Path = "blobstore"
    max_queue: int = 8
    rate: float = 50.0
    burst: int = 20
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    default_deadline: float = 30.0
    drain_deadline: float = 10.0
    hedge_budget: float = 0.25
    forward_timeout: float = 60.0
    probe_interval: float = 0.25
    probe_fail_threshold: int = 3
    start_timeout: float = 30.0
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    max_restarts: int = 5
    restart_window: float = 60.0
    #: fault spec string applied to every shard (``--inject-faults``).
    fault_spec: str | None = None
    #: per-shard overrides: index -> spec string (wins over fault_spec).
    shard_fault_specs: dict[int, str] = field(default_factory=dict)


class ClusterServer:
    """Supervised shard fleet + router, with one start/stop lifecycle."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.store_root = Path(self.config.store_root)
        self.run_dir = self.store_root / ".cluster"
        self.supervisor = ShardSupervisor(
            self.config.n_shards,
            spawn=self._spawn_shard,
            port_of=self._port_of,
            probe_interval=self.config.probe_interval,
            probe_fail_threshold=self.config.probe_fail_threshold,
            start_timeout=self.config.start_timeout,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            max_restarts=self.config.max_restarts,
            restart_window=self.config.restart_window,
            drain_deadline=self.config.drain_deadline)
        self.router = ClusterRouter(
            self.supervisor, host=self.config.host, port=self.config.port,
            hedge_budget=self.config.hedge_budget,
            forward_timeout=self.config.forward_timeout)

    # ------------------------------------------------------------------ #
    def _port_file(self, index: int) -> Path:
        return self.run_dir / f"shard-{index}.port"

    def _port_of(self, index: int) -> int | None:
        try:
            text = self._port_file(index).read_text(encoding="ascii").strip()
        except OSError:
            return None
        return int(text) if text.isdigit() else None

    def _shard_fault_spec(self, index: int) -> str | None:
        return self.config.shard_fault_specs.get(index, self.config.fault_spec)

    def _spawn_shard(self, index: int) -> subprocess.Popen:
        cfg = self.config
        port_file = self._port_file(index)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        # a stale port file from the previous incarnation would make the
        # supervisor probe a dead port forever; the shard rewrites it
        # (atomically) once bound.
        port_file.unlink(missing_ok=True)
        cmd = [sys.executable, "-m", "repro.service", "shard",
               "--index", str(index), "--shards", str(cfg.n_shards),
               "--host", cfg.host,
               "--store", str(self.store_root),
               "--port-file", str(port_file),
               "--max-queue", str(cfg.max_queue),
               "--rate", str(cfg.rate), "--burst", str(cfg.burst),
               "--breaker-threshold", str(cfg.breaker_threshold),
               "--breaker-cooldown", str(cfg.breaker_cooldown),
               "--deadline", str(cfg.default_deadline),
               "--drain-deadline", str(cfg.drain_deadline)]
        spec = self._shard_fault_spec(index)
        if spec:
            cmd.extend(["--inject-faults", spec])
        return subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    # ------------------------------------------------------------------ #
    def start(self, *, wait_healthy: float = 30.0) -> "ClusterServer":
        """Spawn shards, start supervision, bind the router.

        Blocks up to ``wait_healthy`` seconds for every shard to answer
        its first probe, so callers get a serving cluster back (pass 0
        to skip the wait).
        """
        self.supervisor.start()
        try:
            if wait_healthy > 0:
                self._await_healthy(wait_healthy)
            self.router.start()
        except Exception:
            self.supervisor.stop()
            raise
        return self

    def _await_healthy(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.supervisor.healthy_shards()) == self.config.n_shards:
                return
            time.sleep(0.05)
        table = self.supervisor.table()
        raise RuntimeError(
            f"cluster not healthy within {timeout}s: "
            + ", ".join(f"shard {r['index']}={r['state']}" for r in table))

    def stop(self) -> None:
        """Drain the router, then the shards. Idempotent."""
        self.router.drain()
        self.router.stop()
        self.supervisor.stop()
        for index in range(self.config.n_shards):
            self._port_file(index).unlink(missing_ok=True)

    @property
    def url(self) -> str:
        return self.router.url

    @property
    def port(self) -> int | None:
        return self.router.port

    def write_run_marker(self) -> None:
        """Drop a human-readable marker of the cluster topology."""
        lines = [f"n_shards={self.config.n_shards}",
                 f"store={self.store_root}"]
        atomic_write(self.run_dir / "topology", "\n".join(lines) + "\n")
