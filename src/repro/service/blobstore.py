"""Content-addressed blob store backing the compression service.

Blobs are keyed by their blake2b-160 digest, so the key *is* the
integrity check: every read re-hashes the bytes and a mismatch raises
:class:`~repro.service.schemas.BlobCorruptError` instead of handing a
silently rotten container to the decoder. Writes commit through
``runtime.atomic_write`` — a crash mid-put leaves either no entry or a
complete one, never a torn blob whose digest can't match. A writer that
died mid-put leaves only a ``.<name>.<pid>.tmp`` file, which listing and
verification skip: a stale temp file is litter, not corruption.

Keyspace partitioning (the sharded cluster): a :class:`KeyRing` places
every shard at ``VNODES`` pseudo-random points on a 64-bit hash ring and
assigns each key to the first shard point at or after the key's own
hash. Ownership is therefore a pure function of ``(key, n_shards)`` —
every router, shard, and drill computes the same answer — and adding a
shard moves only ~``1/n`` of the keyspace (the consistent-hashing
property, asserted by tests). Shards share one store *root* (content
addressing makes concurrent writers safe: same key ⇒ same bytes, and
commits are atomic), while a shard's ``partition=(index, count)`` scopes
which keys it *owns* for routing and verification accounting.

Fault injection: each store carries an op counter; ``bloberr`` clauses
from :mod:`repro.faults` fire on the counter index, so a seeded spec
deterministically fails the N-th store operation regardless of which
request performed it.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import threading
from pathlib import Path

from repro.faults import FaultInjector
from repro.obs import inc_counter, set_gauge
from repro.runtime import atomic_write
from repro.service.schemas import BlobCorruptError, BlobIOError, NotFoundError

__all__ = ["BlobStore", "blob_key", "KeyRing", "shard_for_key"]

_DIGEST_BYTES = 20  # blake2b-160: plenty for content addressing, short keys


def blob_key(data: bytes) -> str:
    """The content address (lowercase hex blake2b-160) for ``data``."""
    return hashlib.blake2b(data, digest_size=_DIGEST_BYTES).hexdigest()


# ---------------------------------------------------------------------- #
# consistent-hash keyspace partitioning

#: Virtual points per shard on the ring. Enough to keep per-shard load
#: within a few percent of fair for small clusters without making ring
#: construction noticeable.
VNODES = 64


def _ring_hash(token: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(token.encode("ascii"), digest_size=8).digest(),
        "big")


class KeyRing:
    """The consistent-hash ring for an ``n_shards``-way keyspace split."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = int(n_shards)
        points: list[tuple[int, int]] = []
        for shard in range(self.n_shards):
            for v in range(VNODES):
                points.append((_ring_hash(f"shard:{shard}#{v}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def owner(self, key: str) -> int:
        """The shard owning ``key``: first ring point at/after its hash."""
        pos = bisect.bisect_left(self._hashes, _ring_hash(f"key:{key}"))
        return self._shards[pos % len(self._shards)]

    def successors(self, key: str) -> list[int]:
        """All shard indices in ring order from ``key`` (owner first).

        The router walks this list when the owner is down: the first
        *healthy* entry serves the read, so failover order is as
        deterministic as ownership itself.
        """
        pos = bisect.bisect_left(self._hashes, _ring_hash(f"key:{key}"))
        out: list[int] = []
        for i in range(len(self._shards)):
            shard = self._shards[(pos + i) % len(self._shards)]
            if shard not in out:
                out.append(shard)
                if len(out) == self.n_shards:
                    break
        return out


_RINGS: dict[int, KeyRing] = {}
_RINGS_LOCK = threading.Lock()


def _ring(n_shards: int) -> KeyRing:
    with _RINGS_LOCK:
        ring = _RINGS.get(n_shards)
        if ring is None:
            ring = _RINGS[n_shards] = KeyRing(n_shards)
        return ring


def shard_for_key(key: str, n_shards: int) -> int:
    """Which of ``n_shards`` shards owns blob ``key`` (pure function)."""
    return _ring(n_shards).owner(key)


class BlobStore:
    """Digest-keyed blob storage under one directory (two-level fanout)."""

    def __init__(self, root, *, faults: FaultInjector | None = None,
                 partition: tuple[int, int] | None = None) -> None:
        if partition is not None:
            index, count = int(partition[0]), int(partition[1])
            if count < 1 or not 0 <= index < count:
                raise ValueError(
                    f"bad partition {partition!r}; need (index, count) "
                    "with 0 <= index < count")
            partition = (index, count)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self.partition = partition
        self._ops = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _next_op(self) -> int:
        with self._lock:
            self._ops += 1
            return self._ops - 1

    def _maybe_fail(self, op: str) -> None:
        if self.faults is not None and self.faults.blob_error(op, self._next_op()):
            inc_counter(f"service.blob.{op}_errors")
            raise BlobIOError(
                f"injected blob {op} failure (fault index {self._ops - 1})")

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / key

    # ------------------------------------------------------------------ #
    def put(self, data: bytes) -> str:
        """Store ``data``; returns its content address. Idempotent."""
        self._maybe_fail("write")
        key = blob_key(data)
        dest = self.path_for(key)
        if not dest.exists():
            try:
                dest.parent.mkdir(parents=True, exist_ok=True)
                atomic_write(dest, data)
            except OSError as exc:
                inc_counter("service.blob.write_errors")
                raise BlobIOError(f"blob store write failed: {exc}") from exc
        inc_counter("service.blob.puts")
        set_gauge("service.blob.count", float(self.count()))
        return key

    def get(self, key: str) -> bytes:
        """Read and digest-verify the blob at ``key``.

        Raises :class:`NotFoundError` for an unknown key and
        :class:`BlobCorruptError` when the stored bytes no longer hash to
        their address — the caller decides whether to salvage-decode the
        damaged bytes (``fetch_raw``) or surface the 502.
        """
        self._maybe_fail("read")
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise NotFoundError(f"no blob {key!r}") from None
        except OSError as exc:
            inc_counter("service.blob.read_errors")
            raise BlobIOError(f"blob store read failed: {exc}") from exc
        inc_counter("service.blob.gets")
        if blob_key(data) != key:
            inc_counter("service.blob.corrupt")
            raise BlobCorruptError(
                f"blob {key!r}: stored bytes do not match their digest",
                detail={"key": key, "nbytes": len(data)})
        return data

    def fetch_raw(self, key: str) -> bytes:
        """The stored bytes without digest verification (salvage path)."""
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            raise NotFoundError(f"no blob {key!r}") from None
        except OSError as exc:
            raise BlobIOError(f"blob store read failed: {exc}") from exc

    # ------------------------------------------------------------------ #
    def owns(self, key: str) -> bool:
        """Does this store's partition own ``key``? (no partition: yes)."""
        if self.partition is None:
            return True
        index, count = self.partition
        return shard_for_key(key, count) == index

    @staticmethod
    def _is_blob_name(name: str) -> bool:
        """Committed blobs only: ``atomic_write`` temp files
        (``.<name>.<pid>.tmp``) from a writer that died mid-put are
        litter a later put cleans up — never corruption."""
        return not name.startswith(".") and not name.endswith(".tmp")

    def keys(self) -> list[str]:
        out = []
        for sub in sorted(self.root.iterdir()) if self.root.exists() else []:
            if sub.is_dir() and not sub.name.startswith("."):
                out.extend(sorted(p.name for p in sub.iterdir()
                                  if p.is_file() and self._is_blob_name(p.name)))
        return out

    def owned_keys(self) -> list[str]:
        """Stored keys this partition owns (== :meth:`keys` unpartitioned)."""
        return [k for k in self.keys() if self.owns(k)]

    def count(self) -> int:
        return len(self.keys())

    def verify_all(self, *, owned_only: bool = False) -> dict[str, bool]:
        """Digest-check every stored blob: key -> intact? (drill invariant).

        A blob committed by a *concurrent* writer is either absent from
        the listing or fully visible (atomic rename), so the walk never
        sees a half-written payload; a key that vanishes between the
        listing and the read (impossible for content-addressed puts, but
        cheap to guard) is simply skipped. ``owned_only`` restricts the
        sweep to this partition's keyspace.
        """
        result = {}
        for key in self.owned_keys() if owned_only else self.keys():
            try:
                data = self.path_for(key).read_bytes()
            except FileNotFoundError:
                continue
            result[key] = blob_key(data) == key
        return result

    def corrupt(self, key: str, *, bit: int = 0) -> None:
        """Flip one bit of a stored blob in place (chaos drills ONLY).

        Deliberately bypasses atomic_write: the drill is simulating bit
        rot on committed data, not a torn write.
        """
        path = self.path_for(key)
        data = bytearray(path.read_bytes())
        if not data:
            raise ValueError(f"blob {key!r} is empty; nothing to corrupt")
        pos = (len(data) // 2) % len(data)
        data[pos] ^= 1 << (bit % 8)
        with open(path, "r+b") as fh:
            fh.seek(pos)
            fh.write(bytes(data[pos:pos + 1]))
            fh.flush()
            os.fsync(fh.fileno())
