"""Content-addressed blob store backing the compression service.

Blobs are keyed by their blake2b-160 digest, so the key *is* the
integrity check: every read re-hashes the bytes and a mismatch raises
:class:`~repro.service.schemas.BlobCorruptError` instead of handing a
silently rotten container to the decoder. Writes commit through
``runtime.atomic_write`` — a crash mid-put leaves either no entry or a
complete one, never a torn blob whose digest can't match.

Fault injection: each store carries an op counter; ``bloberr`` clauses
from :mod:`repro.faults` fire on the counter index, so a seeded spec
deterministically fails the N-th store operation regardless of which
request performed it.
"""

from __future__ import annotations

import hashlib
import os
import threading
from pathlib import Path

from repro.faults import FaultInjector
from repro.obs import inc_counter, set_gauge
from repro.runtime import atomic_write
from repro.service.schemas import BlobCorruptError, BlobIOError, NotFoundError

__all__ = ["BlobStore", "blob_key"]

_DIGEST_BYTES = 20  # blake2b-160: plenty for content addressing, short keys


def blob_key(data: bytes) -> str:
    """The content address (lowercase hex blake2b-160) for ``data``."""
    return hashlib.blake2b(data, digest_size=_DIGEST_BYTES).hexdigest()


class BlobStore:
    """Digest-keyed blob storage under one directory (two-level fanout)."""

    def __init__(self, root, *, faults: FaultInjector | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.faults = faults
        self._ops = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _next_op(self) -> int:
        with self._lock:
            self._ops += 1
            return self._ops - 1

    def _maybe_fail(self, op: str) -> None:
        if self.faults is not None and self.faults.blob_error(op, self._next_op()):
            inc_counter(f"service.blob.{op}_errors")
            raise BlobIOError(
                f"injected blob {op} failure (fault index {self._ops - 1})")

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / key

    # ------------------------------------------------------------------ #
    def put(self, data: bytes) -> str:
        """Store ``data``; returns its content address. Idempotent."""
        self._maybe_fail("write")
        key = blob_key(data)
        dest = self.path_for(key)
        if not dest.exists():
            try:
                dest.parent.mkdir(parents=True, exist_ok=True)
                atomic_write(dest, data)
            except OSError as exc:
                inc_counter("service.blob.write_errors")
                raise BlobIOError(f"blob store write failed: {exc}") from exc
        inc_counter("service.blob.puts")
        set_gauge("service.blob.count", float(self.count()))
        return key

    def get(self, key: str) -> bytes:
        """Read and digest-verify the blob at ``key``.

        Raises :class:`NotFoundError` for an unknown key and
        :class:`BlobCorruptError` when the stored bytes no longer hash to
        their address — the caller decides whether to salvage-decode the
        damaged bytes (``fetch_raw``) or surface the 502.
        """
        self._maybe_fail("read")
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise NotFoundError(f"no blob {key!r}") from None
        except OSError as exc:
            inc_counter("service.blob.read_errors")
            raise BlobIOError(f"blob store read failed: {exc}") from exc
        inc_counter("service.blob.gets")
        if blob_key(data) != key:
            inc_counter("service.blob.corrupt")
            raise BlobCorruptError(
                f"blob {key!r}: stored bytes do not match their digest",
                detail={"key": key, "nbytes": len(data)})
        return data

    def fetch_raw(self, key: str) -> bytes:
        """The stored bytes without digest verification (salvage path)."""
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            raise NotFoundError(f"no blob {key!r}") from None
        except OSError as exc:
            raise BlobIOError(f"blob store read failed: {exc}") from exc

    # ------------------------------------------------------------------ #
    def keys(self) -> list[str]:
        out = []
        for sub in sorted(self.root.iterdir()) if self.root.exists() else []:
            if sub.is_dir():
                out.extend(sorted(p.name for p in sub.iterdir() if p.is_file()))
        return out

    def count(self) -> int:
        return len(self.keys())

    def verify_all(self) -> dict[str, bool]:
        """Digest-check every stored blob: key -> intact? (drill invariant)."""
        result = {}
        for key in self.keys():
            data = self.path_for(key).read_bytes()
            result[key] = blob_key(data) == key
        return result

    def corrupt(self, key: str, *, bit: int = 0) -> None:
        """Flip one bit of a stored blob in place (chaos drills ONLY).

        Deliberately bypasses atomic_write: the drill is simulating bit
        rot on committed data, not a torn write.
        """
        path = self.path_for(key)
        data = bytearray(path.read_bytes())
        if not data:
            raise ValueError(f"blob {key!r} is empty; nothing to corrupt")
        pos = (len(data) // 2) % len(data)
        data[pos] ^= 1 << (bit % 8)
        with open(path, "r+b") as fh:
            fh.seek(pos)
            fh.write(bytes(data[pos:pos + 1]))
            fh.flush()
            os.fsync(fh.fileno())
