"""Synthetic equivalents of the paper's six climate datasets (Table III).

Real CESM/Hurricane-Isabel files are not redistributable, so each generator
synthesizes a field with the *structural properties CliZ exploits*, at
shapes proportional to (but smaller than) the paper's:

=============  =======================  ====  ======  =====================
Name           Paper dims               Mask  Period  Key features
=============  =======================  ====  ======  =====================
SSH            384 x 320 x 1032         Yes   Yes     ocean mask, annual cycle
CESM-T         26 x 1800 x 3600         No    No      rough height axis, smooth lat/lon
RELHUM         26 x 1800 x 3600         No    No      as CESM-T, noisier
SOILLIQ        360 x 15 x 96 x 144      Yes   Yes     ~70% invalid (ocean), 4D
Tsfc           384 x 320 x 360          Yes   Yes     ice mask, strong seasonality
Hurricane-T    100 x 500 x 500          No    No      vortex, no exploitable extras
=============  =======================  ====  ======  =====================

Every generator is deterministic given its seed; masked points carry the
CESM fill value (~1e36), which is what makes mask-unaware compressors
collapse on these datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.topography import roughness, synth_topography, threshold_mask

__all__ = [
    "ClimateField",
    "CESM_FILL_VALUE",
    "ssh",
    "cesm_t",
    "relhum",
    "soilliq",
    "tsfc",
    "hurricane_t",
]

#: CESM's standard missing value for single-precision output.
CESM_FILL_VALUE = np.float32(9.96921e36)


@dataclass
class ClimateField:
    """A synthetic climate dataset plus the metadata CliZ's tuner needs."""

    name: str
    data: np.ndarray  # float32, fill value at masked points
    mask: np.ndarray | None  # True = valid
    axes: tuple[str, ...]  # physical meaning of each axis
    time_axis: int | None
    horiz_axes: tuple[int, int] | None  # (lat, lon) axis indices
    true_period: int | None  # ground truth (for tests); None if aperiodic
    fill_value: float

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def valid_fraction(self) -> float:
        if self.mask is None:
            return 1.0
        return float(self.mask.mean())

    def tuner_kwargs(self) -> dict:
        """Keyword arguments for :class:`repro.core.AutoTuner`."""
        return {"time_axis": self.time_axis, "horiz_axes": self.horiz_axes}


def _smooth_field(shape2d: tuple[int, int], scale: float, seed: int,
                  beta: float = 2.5) -> np.ndarray:
    """Zero-mean smooth random field with amplitude ~scale."""
    f = synth_topography(shape2d, beta=beta, seed=seed)
    f = f - f.mean()
    sd = f.std()
    return f * (scale / sd) if sd > 0 else f


def _seasonal_cycle(rng: np.random.Generator, period: int) -> np.ndarray:
    """A fixed, non-smooth annual waveform (monthly climatology)."""
    base = np.sin(2 * np.pi * np.arange(period) / period)
    wiggle = rng.standard_normal(period) * 0.6
    cycle = base + wiggle
    return cycle - cycle.mean()


def ssh(shape: tuple[int, int, int] = (48, 40, 252), seed: int = 0) -> ClimateField:
    """Sea surface height: (lat, lon, time), ocean mask, annual cycle."""
    nlat, nlon, nt = shape
    period = 12
    rng = np.random.default_rng(seed)
    topo = synth_topography((nlat, nlon), seed=seed)
    valid = threshold_mask(topo, 0.65)  # ocean = lowest 65% of the surface
    rough = roughness(topo)

    base = _smooth_field((nlat, nlon), 0.6, seed + 1)  # gyres / mean dynamic topography
    amp = 0.4 + np.abs(_smooth_field((nlat, nlon), 0.3, seed + 2))
    amp2 = np.abs(_smooth_field((nlat, nlon), 0.2, seed + 3))
    w1 = _seasonal_cycle(rng, period)
    w2 = _seasonal_cycle(rng, period)
    t = np.arange(nt)
    month = t % period
    seasonal = amp[:, :, None] * w1[month][None, None, :] \
        + amp2[:, :, None] * w2[month][None, None, :]
    trend = _smooth_field((nlat, nlon), 0.05, seed + 4)[:, :, None] * (t / max(nt, 1))
    noise_amp = 0.01 * (0.3 + rough)[:, :, None]
    noise = noise_amp * rng.standard_normal((nlat, nlon, nt))
    data = (base[:, :, None] + seasonal + trend + noise).astype(np.float32)
    mask = np.broadcast_to(valid[:, :, None], data.shape).copy()
    data[~mask] = CESM_FILL_VALUE
    return ClimateField("SSH", data, mask, ("lat", "lon", "time"), 2, (0, 1),
                        period, float(CESM_FILL_VALUE))


def cesm_t(shape: tuple[int, int, int] = (26, 90, 180), seed: int = 1) -> ClimateField:
    """Atmosphere temperature: (height, lat, lon), rough along height.

    Matches the paper's §V-B numbers in spirit: mean variation along height
    is orders of magnitude larger than along lat/lon.
    """
    nh, nlat, nlon = shape
    rng = np.random.default_rng(seed)
    topo = synth_topography((nlat, nlon), seed=seed)
    rough = roughness(topo)
    # vertical profile: lapse-rate cooling plus a tropopause kink
    h = np.arange(nh, dtype=np.float64)
    profile = 288.0 - 6.5 * h + 2.0 * np.maximum(h - 0.7 * nh, 0.0) \
        + 1.5 * rng.standard_normal(nh).cumsum() / np.sqrt(max(nh, 1))
    surf = -25.0 * topo + _smooth_field((nlat, nlon), 3.0, seed + 1)
    decay = np.exp(-h / (0.3 * nh))[:, None, None]
    # Topography-coupled small-scale variability (Fig. 5's mechanism):
    # mountainous regions carry convective detail at every height, flat
    # regions are quiet — giving quantization bins a terrain-shaped
    # dispersion pattern that persists across height slices.
    turbulent = rough > np.quantile(rough, 0.75)
    noise_amp = np.where(turbulent, 0.25, 0.01)[None, :, :]
    data = profile[:, None, None] + surf[None, :, :] * decay \
        + noise_amp * rng.standard_normal(shape)
    return ClimateField("CESM-T", data.astype(np.float32), None,
                        ("height", "lat", "lon"), None, (1, 2), None, 0.0)


def relhum(shape: tuple[int, int, int] = (26, 90, 180), seed: int = 2) -> ClimateField:
    """Relative humidity: (height, lat, lon), bounded [0, 100], noisy."""
    nh, nlat, nlon = shape
    rng = np.random.default_rng(seed)
    h = np.arange(nh, dtype=np.float64)
    # humidity layers alternate wet/dry almost independently with height
    # (the paper's "diverse smoothness": rough along height, smooth in-plane)
    profile = 70.0 * np.exp(-h / (0.5 * nh)) + 10.0 \
        + 12.0 * rng.standard_normal(nh)
    layer_pattern = np.stack([
        _smooth_field((nlat, nlon), 8.0, seed + 10 + k, beta=3.0) for k in range(nh)
    ])
    moisture = 20.0 * synth_topography((nlat, nlon), beta=2.8, seed=seed + 1)
    decay = np.exp(-h / (0.4 * nh))[:, None, None]
    noise = 0.3 * rng.standard_normal(shape)
    data = np.clip(
        profile[:, None, None] + moisture[None, :, :] * decay + layer_pattern + noise,
        0.0, 100.0,
    )
    return ClimateField("RELHUM", data.astype(np.float32), None,
                        ("height", "lat", "lon"), None, (1, 2), None, 0.0)


def soilliq(shape: tuple[int, int, int, int] = (60, 6, 32, 48), seed: int = 3) -> ClimateField:
    """Soil liquid water: (time, level, lat, lon), ~70% invalid (ocean)."""
    nt, nlev, nlat, nlon = shape
    period = 12
    rng = np.random.default_rng(seed)
    topo = synth_topography((nlat, nlon), seed=seed)
    land = ~threshold_mask(topo, 0.70)  # land = highest 30% -> ~70% invalid
    base = 25.0 + 20.0 * synth_topography((nlat, nlon), beta=2.0, seed=seed + 1)
    level_decay = np.exp(-np.arange(nlev) / max(nlev / 2.0, 1.0))
    w = _seasonal_cycle(rng, period)
    month = np.arange(nt) % period
    amp = 5.0 + 3.0 * synth_topography((nlat, nlon), beta=2.2, seed=seed + 2)
    data = (
        base[None, None, :, :] * level_decay[None, :, None, None]
        + amp[None, None, :, :] * w[month][:, None, None, None]
        + 0.2 * rng.standard_normal(shape)
    ).astype(np.float32)
    mask = np.broadcast_to(land[None, None, :, :], data.shape).copy()
    data[~mask] = CESM_FILL_VALUE
    return ClimateField("SOILLIQ", data, mask, ("time", "level", "lat", "lon"),
                        0, (2, 3), period, float(CESM_FILL_VALUE))


def tsfc(shape: tuple[int, int, int] = (48, 40, 120), seed: int = 4) -> ClimateField:
    """Snow/ice surface temperature: (lat, lon, time), polar mask, seasonal."""
    nlat, nlon, nt = shape
    period = 12
    rng = np.random.default_rng(seed)
    # ice occupies the top and bottom latitude bands plus high terrain
    topo = synth_topography((nlat, nlon), seed=seed)
    lat_frac = np.abs(np.linspace(-1, 1, nlat))[:, None]
    ice_score = lat_frac + 0.4 * topo
    valid = ice_score > np.quantile(ice_score, 0.55)  # ~45% valid
    base = -15.0 - 20.0 * lat_frac + _smooth_field((nlat, nlon), 2.0, seed + 1)
    amp = 8.0 + 4.0 * lat_frac
    w = _seasonal_cycle(rng, period)
    month = np.arange(nt) % period
    seasonal = amp[:, :, None] * w[month][None, None, :]
    noise = 0.2 * rng.standard_normal(shape)
    data = (base[:, :, None] + seasonal + noise).astype(np.float32)
    mask = np.broadcast_to(valid[:, :, None], data.shape).copy()
    data[~mask] = CESM_FILL_VALUE
    return ClimateField("Tsfc", data, mask, ("lat", "lon", "time"), 2, (0, 1),
                        period, float(CESM_FILL_VALUE))


def hurricane_t(shape: tuple[int, int, int] = (25, 100, 100), seed: int = 5) -> ClimateField:
    """Hurricane-Isabel-style temperature: (height, lat, lon) vortex field."""
    nh, nlat, nlon = shape
    rng = np.random.default_rng(seed)
    y = np.linspace(-1, 1, nlat)[:, None]
    x = np.linspace(-1, 1, nlon)[None, :]
    cy, cx = 0.1, -0.05
    r = np.sqrt((y - cy) ** 2 + (x - cx) ** 2)
    theta = np.arctan2(y - cy, x - cx)
    h = np.arange(nh, dtype=np.float64)
    data = np.empty(shape)
    for k in range(nh):
        hf = k / max(nh - 1, 1)
        eye = -12.0 * np.exp(-(r / (0.12 + 0.1 * hf)) ** 2)  # warm-core inversion
        arms = 2.0 * np.cos(3 * theta - 14 * r + 6 * hf) * np.exp(-r / 0.5)
        data[k] = 288.0 - 55.0 * hf + eye * (1 - hf) + arms
    data += 0.15 * rng.standard_normal(shape)
    return ClimateField("Hurricane-T", data.astype(np.float32), None,
                        ("height", "lat", "lon"), None, (1, 2), None, 0.0)
