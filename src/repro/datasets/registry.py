"""Dataset registry mirroring the paper's Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.fields import (
    ClimateField,
    cesm_t,
    hurricane_t,
    relhum,
    soilliq,
    ssh,
    tsfc,
)

__all__ = ["DatasetInfo", "DATASETS", "load", "table_iii_rows"]


@dataclass(frozen=True)
class DatasetInfo:
    """One row of Table III plus the generator that synthesizes it."""

    name: str
    generator: Callable[..., ClimateField]
    paper_dims: tuple[int, ...]
    paper_axes: tuple[str, ...]
    has_mask: bool
    has_period: bool
    description: str


DATASETS: dict[str, DatasetInfo] = {
    "SSH": DatasetInfo(
        "SSH", ssh, (384, 320, 1032), ("lat", "lon", "time"), True, True,
        "Sea surface height collected once a month",
    ),
    "CESM-T": DatasetInfo(
        "CESM-T", cesm_t, (26, 1800, 3600), ("height", "lat", "lon"), False, False,
        "Atmosphere temperature at a certain time",
    ),
    "RELHUM": DatasetInfo(
        "RELHUM", relhum, (26, 1800, 3600), ("height", "lat", "lon"), False, False,
        "Atmosphere relative humidity at a certain time",
    ),
    "SOILLIQ": DatasetInfo(
        "SOILLIQ", soilliq, (360, 15, 96, 144), ("time", "level", "lat", "lon"), True, True,
        "Liquid water content in the soil collected once a month",
    ),
    "Tsfc": DatasetInfo(
        "Tsfc", tsfc, (384, 320, 360), ("lat", "lon", "time"), True, True,
        "Surface temperature of snow or ice collected once a month",
    ),
    "Hurricane-T": DatasetInfo(
        "Hurricane-T", hurricane_t, (100, 500, 500), ("height", "lat", "lon"), False, False,
        "Atmosphere temperature around Hurricane Isabel at a certain time",
    ),
}


def load(name: str, **kwargs) -> ClimateField:
    """Generate a dataset by registry name (accepts generator kwargs)."""
    try:
        info = DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}") from None
    return info.generator(**kwargs)


def table_iii_rows() -> list[dict]:
    """Table III as dictionaries (paper dims + generated defaults)."""
    rows = []
    for info in DATASETS.values():
        field = info.generator()
        rows.append({
            "name": info.name,
            "paper_dims": info.paper_dims,
            "generated_dims": field.shape,
            "axes": field.axes,
            "mask": "Yes" if info.has_mask else "No",
            "period": "Yes" if info.has_period else "No",
            "valid_fraction": round(field.valid_fraction, 3),
        })
    return rows
