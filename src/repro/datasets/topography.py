"""Synthetic topography and land/ocean masks.

CliZ's mask-map and topography optimizations key on properties of the
Earth's surface: coherent land/ocean regions (for the mask map) and
terrain-correlated local statistics (for quantization-bin classification).
We synthesize terrain by spectral synthesis — filtering white noise with a
power-law ``1/f^beta`` spectrum, the standard fractal-terrain model — and
derive masks by thresholding elevation at a chosen "sea level" so the mask
has the real datasets' large connected regions and ragged coastlines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["synth_topography", "threshold_mask", "roughness"]


def synth_topography(shape: tuple[int, int], beta: float = 2.2,
                     seed: int = 0) -> np.ndarray:
    """Fractal elevation field in [0, 1] with a 1/f^beta spectrum."""
    if len(shape) != 2:
        raise ValueError("topography is generated on a 2D (lat, lon) grid")
    ny, nx = shape
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal((ny, nx))
    fy = np.fft.fftfreq(ny)[:, None]
    fx = np.fft.fftfreq(nx)[None, :]
    freq = np.sqrt(fy ** 2 + fx ** 2)
    freq[0, 0] = 1.0  # keep DC finite
    spectrum = np.fft.fft2(noise) / freq ** (beta / 2.0)
    spectrum[0, 0] = 0.0
    field = np.real(np.fft.ifft2(spectrum))
    lo, hi = field.min(), field.max()
    if hi > lo:
        field = (field - lo) / (hi - lo)
    return field


def threshold_mask(elevation: np.ndarray, valid_fraction: float) -> np.ndarray:
    """Mark the lowest ``valid_fraction`` of the surface as valid (True).

    With ``valid_fraction≈0.7`` this reproduces the paper's SOILLIQ remark:
    about 70% of the Earth is water, so a land-model dataset is ~70%
    invalid (flip the mask for ocean-model datasets).
    """
    if not 0.0 < valid_fraction < 1.0:
        raise ValueError("valid_fraction must be in (0, 1)")
    level = np.quantile(elevation, valid_fraction)
    return elevation <= level


def roughness(elevation: np.ndarray) -> np.ndarray:
    """Terrain roughness: gradient magnitude, normalized to [0, 1].

    Used to modulate per-location noise amplitude — the mechanism behind
    the paper's Fig. 5 observation that quantization-bin statistics follow
    topography across heights.
    """
    gy, gx = np.gradient(elevation)
    g = np.hypot(gy, gx)
    hi = g.max()
    return g / hi if hi > 0 else g
