"""Mask-map region labeling (the paper's Fig. 3(b)).

CESM mask maps carry more than validity: 0 marks invalid (non-water)
points, *positive* integers label the parts of the connected world ocean,
and *negative* integers label inland water bodies (lakes/seas enclosed by
land). This module derives exactly that categorization from a boolean
validity mask via connected-component analysis, so the synthetic datasets
expose the same mask-map structure the paper describes.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["label_mask_regions", "region_summary"]


def label_mask_regions(valid: np.ndarray, *, min_ocean_fraction: float = 0.25) -> np.ndarray:
    """Label a 2D validity mask CESM-style.

    Parameters
    ----------
    valid:
        2D boolean array, True = water (valid for an ocean model).
    min_ocean_fraction:
        Components at least this fraction of all valid points — or touching
        the domain boundary (the map edge wraps the world ocean) — are
        "ocean parts" (positive labels); smaller enclosed components are
        inland water (negative labels).

    Returns an int16 map: 0 invalid, 1..k ocean parts, -1..-m inland water.
    """
    valid = np.asarray(valid)
    if valid.ndim != 2:
        raise ValueError("mask maps are 2D (lat, lon)")
    valid = valid.astype(bool)
    labels, n = ndimage.label(valid)
    out = np.zeros(valid.shape, dtype=np.int16)
    if n == 0:
        return out
    sizes = ndimage.sum_labels(np.ones_like(labels), labels, index=np.arange(1, n + 1))
    total_valid = float(valid.sum())
    touches_edge = np.zeros(n, dtype=bool)
    for border in (labels[0, :], labels[-1, :], labels[:, 0], labels[:, -1]):
        present = np.unique(border)
        present = present[present > 0]
        touches_edge[present - 1] = True
    next_pos, next_neg = 1, -1
    for comp in range(1, n + 1):
        is_ocean = touches_edge[comp - 1] or sizes[comp - 1] >= min_ocean_fraction * total_valid
        if is_ocean:
            out[labels == comp] = next_pos
            next_pos += 1
        else:
            out[labels == comp] = next_neg
            next_neg -= 1
    return out


def region_summary(region_map: np.ndarray) -> dict:
    """Category counts for a labeled mask map (the paper's three classes)."""
    region_map = np.asarray(region_map)
    return {
        "invalid_points": int((region_map == 0).sum()),
        "ocean_parts": int(region_map.max()) if (region_map > 0).any() else 0,
        "inland_bodies": int(-region_map.min()) if (region_map < 0).any() else 0,
        "ocean_points": int((region_map > 0).sum()),
        "inland_points": int((region_map < 0).sum()),
    }
