"""Synthetic climate datasets mirroring the paper's Table III."""

from repro.datasets.fields import (
    CESM_FILL_VALUE,
    ClimateField,
    cesm_t,
    hurricane_t,
    relhum,
    soilliq,
    ssh,
    tsfc,
)
from repro.datasets.registry import DATASETS, DatasetInfo, load, table_iii_rows
from repro.datasets.maskmap import label_mask_regions, region_summary
from repro.datasets.topography import roughness, synth_topography, threshold_mask

__all__ = [
    "ClimateField",
    "CESM_FILL_VALUE",
    "ssh",
    "cesm_t",
    "relhum",
    "soilliq",
    "tsfc",
    "hurricane_t",
    "DATASETS",
    "DatasetInfo",
    "load",
    "table_iii_rows",
    "synth_topography",
    "threshold_mask",
    "roughness",
    "label_mask_regions",
    "region_summary",
]
