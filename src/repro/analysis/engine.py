"""The lint engine: file collection, rule dispatch, suppression filtering.

The engine is import-light and pure-stdlib so it can run in CI before the
numeric dependencies are installed. Rules never see the filesystem — they
get a parsed :class:`ModuleContext` — which is what makes the fixture
corpus in ``tests/analysis`` able to lint snippets *as if* they lived at
an arbitrary repo path (``lint_source(..., relpath=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import ModuleContext, ProjectRule, Rule, all_rules
from repro.analysis.suppressions import scan_suppressions

#: Directories never worth descending into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis",
    "build", "dist", "telemetry",
})


@dataclass
class LintResult:
    """Outcome of one engine run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if any(d.severity == "error" for d in self.diagnostics) else 0


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.parts):
                    yield sub


class LintEngine:
    """Runs registered rules over files, applying config and suppressions."""

    def __init__(self, config: LintConfig | None = None,
                 root: Path | None = None,
                 rules: Sequence[Rule] | None = None) -> None:
        self.config = config or LintConfig()
        self.root = (root or Path.cwd()).resolve()
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()

    # -- path handling -----------------------------------------------------

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- single-module linting --------------------------------------------

    def lint_source(self, source: str, relpath: str) -> LintResult:
        """Lint one source string as if it lived at ``relpath``."""
        result = LintResult(files_checked=1)
        try:
            ctx = ModuleContext.from_source(source, relpath)
        except SyntaxError as exc:
            result.diagnostics.append(Diagnostic(
                rule_id="ENG-001", family="engine", path=relpath,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            ))
            return result
        suppressions = scan_suppressions(source)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                continue
            if not rule.applies_to(relpath):
                continue
            if not self.config.rule_enabled(rule.id, rule.family, relpath):
                continue
            if rule.id not in result.rules_run:
                result.rules_run.append(rule.id)
            for diag in rule.check(ctx):
                supp = suppressions.get(diag.line)
                if supp is not None and supp.matches(diag.rule_id, diag.family):
                    if rule.requires_reason and not supp.reason:
                        result.diagnostics.append(replace(
                            diag,
                            message=diag.message
                            + " [suppression ignored: no '-- <reason>' given]"))
                    else:
                        result.suppressed.append(diag)
                else:
                    result.diagnostics.append(diag)
        return result

    def lint_file(self, path: Path, relpath: str | None = None) -> LintResult:
        rel = relpath if relpath is not None else self.relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            res = LintResult(files_checked=1)
            res.diagnostics.append(Diagnostic(
                rule_id="ENG-002", family="engine", path=rel, line=1, col=0,
                message=f"unreadable file: {exc}",
            ))
            return res
        return self.lint_source(source, rel)

    # -- whole-tree linting -----------------------------------------------

    def run(self, paths: Sequence[Path], *, lint_as: str | None = None) -> LintResult:
        """Lint files/trees plus the project-level rules.

        ``lint_as`` overrides the repo-relative path when exactly one file
        is passed — used by tests and fixtures to place a snippet in an
        arbitrary rule scope.
        """
        total = LintResult()
        files = list(iter_python_files(paths))
        if lint_as is not None and len(files) != 1:
            raise ValueError("--lint-as requires exactly one input file")
        for path in files:
            rel = lint_as if lint_as is not None else self.relpath(path)
            if self.config.excluded(rel):
                continue
            res = self.lint_file(path, relpath=rel)
            total.files_checked += res.files_checked
            total.diagnostics.extend(res.diagnostics)
            total.suppressed.extend(res.suppressed)
            for rid in res.rules_run:
                if rid not in total.rules_run:
                    total.rules_run.append(rid)
        for rule in self.rules:
            if not isinstance(rule, ProjectRule):
                continue
            if not self.config.rule_enabled(rule.id, rule.family):
                continue
            total.rules_run.append(rule.id)
            total.diagnostics.extend(rule.check_project(self.root))
        total.diagnostics.sort(key=Diagnostic.sort_key)
        total.rules_run.sort()
        return total


__all__ = ["LintEngine", "LintResult", "iter_python_files", "SKIP_DIRS"]
