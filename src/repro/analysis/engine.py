"""The lint engine: file collection, rule dispatch, suppression filtering.

The engine is import-light and pure-stdlib so it can run in CI before the
numeric dependencies are installed. Rules never see the filesystem — they
get a parsed :class:`ModuleContext` — which is what makes the fixture
corpus in ``tests/analysis`` able to lint snippets *as if* they lived at
an arbitrary repo path (``lint_source(..., relpath=...)``).

Two passes can run per invocation:

* the **per-file pass** — every :class:`Rule` over every collected file,
  optionally fanned out over ``jobs`` worker processes (results are
  deterministic: workers return per-file results that are merged in
  input order), plus :class:`ProjectRule` checks;
* the **whole-program pass** (``whole_program=True``) — builds one
  :class:`~repro.analysis.project.ProjectModel` over ``src/repro`` and
  runs every :class:`WholeProgramRule` against it. Whole-program
  diagnostics honour the same suppression comments and config overrides,
  and additionally pass through the committed baseline file
  (:mod:`repro.analysis.baseline`) for known-unproven edges.

Files that cannot be parsed (syntax errors, non-UTF-8 bytes, null bytes)
or read never crash the run: each produces a single ``SYNTAX``
diagnostic with the path and line, and linting continues with the next
file — the exit-code contract (0/1/2) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, stale_diagnostics
from repro.analysis.config import LintConfig
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.registry import (
    ModuleContext,
    ProjectRule,
    Rule,
    WholeProgramRule,
    all_rules,
)
from repro.analysis.suppressions import scan_suppressions

#: Directories never worth descending into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".pytest_cache", ".hypothesis",
    "build", "dist", "telemetry",
})


@dataclass
class LintResult:
    """Outcome of one engine run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if any(d.severity == "error" for d in self.diagnostics) else 0

    def merge(self, other: "LintResult") -> None:
        self.files_checked += other.files_checked
        self.diagnostics.extend(other.diagnostics)
        self.suppressed.extend(other.suppressed)
        for rid in other.rules_run:
            if rid not in self.rules_run:
                self.rules_run.append(rid)


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not SKIP_DIRS.intersection(sub.parts):
                    yield sub


def _lint_file_job(item: tuple[str, str, LintConfig, str]) -> "LintResult":
    """Worker-process entry for the ``--jobs`` fan-out (must be picklable)."""
    path, rel, config, root = item
    engine = LintEngine(config=config, root=Path(root))
    return engine.lint_file(Path(path), relpath=rel)


class LintEngine:
    """Runs registered rules over files, applying config and suppressions."""

    def __init__(self, config: LintConfig | None = None,
                 root: Path | None = None,
                 rules: Sequence[Rule] | None = None) -> None:
        self.config = config or LintConfig()
        self.root = (root or Path.cwd()).resolve()
        self.rules: list[Rule] = list(rules) if rules is not None else all_rules()

    # -- path handling -----------------------------------------------------

    def relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- single-module linting --------------------------------------------

    def lint_source(self, source: str, relpath: str) -> LintResult:
        """Lint one source string as if it lived at ``relpath``."""
        result = LintResult(files_checked=1)
        try:
            ctx = ModuleContext.from_source(source, relpath)
        except SyntaxError as exc:
            result.diagnostics.append(Diagnostic(
                rule_id="SYNTAX", family="engine", path=relpath,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            ))
            return result
        except ValueError as exc:
            # ast.parse raises bare ValueError on e.g. null bytes
            result.diagnostics.append(Diagnostic(
                rule_id="SYNTAX", family="engine", path=relpath,
                line=1, col=0,
                message=f"unparseable file: {exc}",
            ))
            return result
        suppressions = scan_suppressions(source)
        for rule in self.rules:
            if isinstance(rule, (ProjectRule, WholeProgramRule)):
                continue
            if not rule.applies_to(relpath):
                continue
            if not self.config.rule_enabled(rule.id, rule.family, relpath):
                continue
            if rule.id not in result.rules_run:
                result.rules_run.append(rule.id)
            for diag in rule.check(ctx):
                supp = suppressions.get(diag.line)
                if supp is not None and supp.matches(diag.rule_id, diag.family):
                    if rule.requires_reason and not supp.reason:
                        result.diagnostics.append(replace(
                            diag,
                            message=diag.message
                            + " [suppression ignored: no '-- <reason>' given]"))
                    else:
                        result.suppressed.append(diag)
                else:
                    result.diagnostics.append(diag)
        return result

    def lint_file(self, path: Path, relpath: str | None = None) -> LintResult:
        rel = relpath if relpath is not None else self.relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            res = LintResult(files_checked=1)
            res.diagnostics.append(Diagnostic(
                rule_id="SYNTAX", family="engine", path=rel, line=1, col=0,
                message=f"unreadable file: {exc}",
            ))
            return res
        return self.lint_source(source, rel)

    # -- whole-tree linting -----------------------------------------------

    def run(self, paths: Sequence[Path], *, lint_as: str | None = None,
            jobs: int = 1, whole_program: bool = False,
            baseline: Baseline | None = None) -> LintResult:
        """Lint files/trees plus the project-level rules.

        ``lint_as`` overrides the repo-relative path when exactly one file
        is passed — used by tests and fixtures to place a snippet in an
        arbitrary rule scope. ``jobs > 1`` fans the per-file pass out over
        worker processes; the whole-program pass (and project rules) stay
        single-shot in this process.
        """
        total = LintResult()
        files = list(iter_python_files(paths))
        if lint_as is not None and len(files) != 1:
            raise ValueError("--lint-as requires exactly one input file")
        work: list[tuple[Path, str]] = []
        for path in files:
            rel = lint_as if lint_as is not None else self.relpath(path)
            if self.config.excluded(rel):
                continue
            work.append((path, rel))
        for res in self._map_files(work, jobs):
            total.merge(res)
        for rule in self.rules:
            if not isinstance(rule, ProjectRule):
                continue
            if not self.config.rule_enabled(rule.id, rule.family):
                continue
            total.rules_run.append(rule.id)
            total.diagnostics.extend(rule.check_project(self.root))
        if whole_program:
            self._run_whole_program(total, baseline)
        total.diagnostics.sort(key=Diagnostic.sort_key)
        total.rules_run.sort()
        return total

    def _map_files(self, work: Sequence[tuple[Path, str]],
                   jobs: int) -> Iterable[LintResult]:
        if jobs <= 1 or len(work) < 2:
            for path, rel in work:
                yield self.lint_file(path, relpath=rel)
            return
        items = [(str(path), rel, self.config, str(self.root))
                 for path, rel in work]
        try:
            from concurrent.futures import ProcessPoolExecutor
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                # map() preserves input order: output is deterministic
                yield from pool.map(_lint_file_job, items, chunksize=8)
        except (OSError, ImportError):   # no usable worker transport
            for path, rel in work:
                yield self.lint_file(path, relpath=rel)

    # -- whole-program pass -------------------------------------------------

    def _run_whole_program(self, total: LintResult,
                           baseline: Baseline | None) -> None:
        from repro.analysis.project import ProjectModel

        model = ProjectModel.build(self.root)
        for relpath, message in model.errors:
            total.diagnostics.append(Diagnostic(
                rule_id="SYNTAX", family="engine", path=relpath, line=1,
                col=0, message=f"unparseable file: {message}"))
        supp_cache: dict[str, dict] = {}
        for mod in model.modules.values():
            supp_cache.setdefault(
                mod.relpath, scan_suppressions(mod.source))
        for rule in self.rules:
            if not isinstance(rule, WholeProgramRule):
                continue
            if not self.config.rule_enabled(rule.id, rule.family):
                continue
            if rule.id not in total.rules_run:
                total.rules_run.append(rule.id)
            for diag in rule.check_program(model):
                if self.config.excluded(diag.path):
                    continue
                if not self.config.rule_enabled(rule.id, rule.family,
                                                diag.path):
                    continue
                supp = supp_cache.get(diag.path, {}).get(diag.line)
                if supp is not None and supp.matches(diag.rule_id,
                                                     diag.family):
                    if rule.requires_reason and not supp.reason:
                        total.diagnostics.append(replace(
                            diag,
                            message=diag.message
                            + " [suppression ignored: no '-- <reason>' "
                              "given]"))
                    else:
                        total.suppressed.append(diag)
                elif baseline is not None and baseline.absorbs(diag):
                    total.suppressed.append(diag)
                else:
                    total.diagnostics.append(diag)
        if baseline is not None:
            total.diagnostics.extend(stale_diagnostics(baseline))


__all__ = ["LintEngine", "LintResult", "iter_python_files", "SKIP_DIRS"]
