"""Reporters: render a LintResult as human text or machine JSON.

The JSON shape (``"version": 1``) is a stable contract consumed by the CI
artifact upload and asserted by ``tests/analysis/test_reporters.py`` —
bump the version if you change it.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.engine import LintResult

JSON_REPORT_VERSION = 1


def render_text(result: LintResult, *, show_suppressed: bool = False) -> str:
    lines = [d.format_text() for d in result.diagnostics]
    if show_suppressed:
        lines += [f"{d.format_text()} [suppressed]" for d in result.suppressed]
    n = len(result.diagnostics)
    lines.append(
        f"{n} finding{'s' if n != 1 else ''} "
        f"({len(result.suppressed)} suppressed) in {result.files_checked} "
        f"file{'s' if result.files_checked != 1 else ''}; "
        f"{len(result.rules_run)} rules ran"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    by_rule = Counter(d.rule_id for d in result.diagnostics)
    payload = {
        "version": JSON_REPORT_VERSION,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "diagnostics": [d.to_json() for d in result.diagnostics],
        "suppressed": [d.to_json() for d in result.suppressed],
        "summary": {
            "total": len(result.diagnostics),
            "suppressed": len(result.suppressed),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=False)


__all__ = ["render_text", "render_json", "JSON_REPORT_VERSION"]
