"""Per-line suppression comments.

Syntax (trailing on the offending line, or on a comment-only line
immediately above it)::

    blob = risky()  # repro-lint: disable=DEC-001
    # repro-lint: disable=DET-001,DET-003 -- fixture clock, not data-affecting
    t = time.time()

``disable=`` takes a comma-separated list of rule ids (``DET-001``) or
whole families (``DET``). Everything after `` -- `` is the human reason;
rules marked ``requires_reason`` (e.g. broad excepts in decoders) are only
suppressed when a non-empty reason is present.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9_,\- ]+?)"
    r"(?:\s+--\s*(?P<reason>.*))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int                 # line the suppression applies to (1-based)
    ids: frozenset[str]       # rule ids and/or family prefixes, upper-cased
    reason: str = ""

    def matches(self, rule_id: str, family: str) -> bool:
        # accept the id ("DET-001"), its prefix ("DET"), or the family name
        return (rule_id.upper() in self.ids
                or rule_id.upper().split("-")[0] in self.ids
                or family.upper() in self.ids)


def _parse_comment(text: str) -> tuple[frozenset[str], str] | None:
    m = _SUPPRESS_RE.search(text)
    if not m:
        return None
    ids = frozenset(
        part.strip().upper() for part in m.group("ids").split(",") if part.strip()
    )
    if not ids:
        return None
    return ids, (m.group("reason") or "").strip()


def scan_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> Suppression for every suppression comment.

    A trailing comment suppresses its own line. A comment-only line
    suppresses the next line (chains of comment lines all target the
    first non-comment line below them).
    """
    out: dict[int, Suppression] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        tokens = []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        parsed = _parse_comment(tok.string)
        if parsed is None:
            continue
        ids, reason = parsed
        lineno = tok.start[0]
        line_text = lines[lineno - 1] if lineno - 1 < len(lines) else ""
        if line_text.strip().startswith("#"):
            # standalone comment: applies to the first code line below
            target = lineno + 1
            while target - 1 < len(lines) and (
                not lines[target - 1].strip()
                or lines[target - 1].strip().startswith("#")
            ):
                target += 1
        else:
            target = lineno
        existing = out.get(target)
        if existing is not None:
            # stacked comments targeting the same code line accumulate
            ids = ids | existing.ids
            reason = "; ".join(r for r in (existing.reason, reason) if r)
        out[target] = Suppression(line=target, ids=ids, reason=reason)
    return out


__all__ = ["Suppression", "scan_suppressions"]
