"""``repro-lint`` / ``python -m repro.analysis`` command line.

Exit codes (CI contract):

* ``0`` — no findings (suppressed findings do not fail the build)
* ``1`` — at least one error-severity finding
* ``2`` — usage or internal error (argparse, unreadable config, bad rule id)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline
from repro.analysis.config import LintConfig, find_pyproject, load_config
from repro.analysis.engine import LintEngine
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the CliZ reproduction: "
                    "determinism, decode-safety, numpy hygiene, observability "
                    "coverage, API consistency, repo hygiene.",
    )
    p.add_argument("paths", nargs="*", default=["src", "tests"],
                   help="files or directories to lint (default: src tests)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--json", action="store_true",
                   help="shorthand for --format json")
    p.add_argument("--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated rule ids/families to run exclusively")
    p.add_argument("--disable", "--ignore", dest="disable", metavar="IDS",
                   help="comma-separated rule ids/families to turn off "
                        "(--ignore is an alias)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan the per-file pass out over N worker processes "
                        "(whole-program pass stays single-shot)")
    p.add_argument("--whole-program", action="store_true",
                   help="also build the project model over src/repro and "
                        "run the EXC/RES/CONC rule families")
    p.add_argument("--baseline", metavar="FILE",
                   help="baseline file for whole-program findings "
                        "(default: [tool.repro-lint] baseline setting)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any configured baseline file")
    p.add_argument("--config", metavar="PYPROJECT",
                   help="explicit pyproject.toml (default: nearest ancestor)")
    p.add_argument("--no-config", action="store_true",
                   help="ignore [tool.repro-lint] config entirely")
    p.add_argument("--root", metavar="DIR",
                   help="repo root for path scoping (default: config dir or cwd)")
    p.add_argument("--lint-as", metavar="RELPATH",
                   help="lint a single input file as if it lived at RELPATH "
                        "(fixture/testing aid)")
    p.add_argument("--show-suppressed", action="store_true",
                   help="also print suppressed findings (text format)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    return p


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.default_paths) if rule.default_paths else "everywhere"
        lines.append(f"{rule.id}  [{rule.family}]  {rule.description}")
        lines.append(f"    scope: {scope}")
        if rule.requires_reason:
            lines.append("    suppression requires a '-- <reason>'")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        if args.no_config:
            config, pyproject = LintConfig(), None
        else:
            pyproject = Path(args.config) if args.config \
                else find_pyproject(Path.cwd())
            config = load_config(pyproject)
    except (OSError, ValueError) as exc:
        print(f"repro-lint: config error: {exc}", file=sys.stderr)
        return 2
    if args.select:
        config.select = [s.strip() for s in args.select.split(",") if s.strip()]
    if args.disable:
        config.disable += [s.strip() for s in args.disable.split(",") if s.strip()]

    known = {r.id for r in all_rules()} | {r.family for r in all_rules()} \
        | {r.id.split("-")[0] for r in all_rules()}
    for rid in config.select + config.disable:
        if rid.upper() not in {k.upper() for k in known}:
            print(f"repro-lint: unknown rule or family {rid!r} "
                  f"(see --list-rules)", file=sys.stderr)
            return 2

    if args.root:
        root = Path(args.root)
    elif pyproject is not None:
        root = pyproject.parent
    else:
        root = Path.cwd()

    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    baseline = None
    if args.whole_program and not args.no_baseline:
        baseline_path = None
        if args.baseline:
            baseline_path = Path(args.baseline)
        elif config.baseline:
            baseline_path = root / config.baseline
        if baseline_path is not None:
            try:
                baseline = Baseline.load(baseline_path)
            except ValueError as exc:
                print(f"repro-lint: {exc}", file=sys.stderr)
                return 2

    engine = LintEngine(config=config, root=root)
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    try:
        result = engine.run(paths, lint_as=args.lint_as, jobs=args.jobs,
                            whole_program=args.whole_program,
                            baseline=baseline)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json" or args.json:
        report = render_json(result)
    else:
        report = render_text(result, show_suppressed=args.show_suppressed)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        if args.format == "text":
            print(report.splitlines()[-1])
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
