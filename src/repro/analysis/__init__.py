"""repro.analysis — AST-based invariant linter for this repository.

The reproduction's load-bearing conventions — bit-identical determinism
(PAPER.md §V), the ``DECODE_ERRORS`` decode-safety discipline
(docs/ROBUSTNESS.md), and full trace-span coverage of codec entry points
(docs/OBSERVABILITY.md) — are enforced mechanically here instead of by
reviewer folklore. Pure stdlib, no numpy import at lint time: the parent
``repro`` package lazy-loads its codec exports (PEP 562), so importing
``repro.analysis`` works on a bare interpreter (CI's lint job relies on
this and deliberately installs nothing).

Run it::

    python -m repro.analysis src tests          # or the repro-lint script
    python -m repro.analysis --list-rules

Suppress a finding::

    blob = risky()  # repro-lint: disable=DEC-001 -- header probe, re-raised below

Configure in ``pyproject.toml`` under ``[tool.repro-lint]``. See
``docs/STATIC_ANALYSIS.md`` for the rule catalogue and how to add a rule.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.config import LintConfig, Override, find_pyproject, load_config
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintEngine, LintResult, iter_python_files
from repro.analysis.project import ProjectModel
from repro.analysis.registry import (
    ModuleContext,
    ProjectRule,
    Rule,
    WholeProgramRule,
    all_rules,
    get_rule,
    register,
)
from repro.analysis.reporters import JSON_REPORT_VERSION, render_json, render_text
from repro.analysis.suppressions import Suppression, scan_suppressions

__all__ = [
    "Baseline",
    "BaselineEntry",
    "LintConfig",
    "Override",
    "find_pyproject",
    "load_config",
    "Diagnostic",
    "LintEngine",
    "LintResult",
    "iter_python_files",
    "ModuleContext",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "WholeProgramRule",
    "all_rules",
    "get_rule",
    "register",
    "JSON_REPORT_VERSION",
    "render_json",
    "render_text",
    "Suppression",
    "scan_suppressions",
]
