"""Rule plugin registry.

A rule is a class deriving from :class:`Rule` (per-module AST checks) or
:class:`ProjectRule` (whole-repo checks, e.g. "no tracked bytecode"),
registered with the :func:`register` decorator::

    @register
    class BanWallClock(Rule):
        id = "DET-001"
        family = "determinism"
        description = "..."
        default_paths = ("src/repro/core/**",)

        def check(self, ctx):
            yield from ...

``default_paths`` scopes where a rule applies (empty = everywhere);
``[tool.repro-lint]`` overrides can further disable rules per path but
cannot widen a rule beyond its built-in scope — scope is part of the
rule's contract, not user preference.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.config import match_any
from repro.analysis.diagnostics import Diagnostic


@dataclass
class ModuleContext:
    """Everything a per-module rule may inspect about one source file."""

    relpath: str                      # repo-relative posix path used for scoping
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, relpath: str) -> "ModuleContext":
        return cls(relpath=relpath, source=source, tree=ast.parse(source),
                   lines=source.splitlines())


class Rule:
    """Base class for per-module AST rules."""

    id: str = ""
    family: str = ""
    description: str = ""
    rationale: str = ""
    severity: str = "error"
    #: Glob patterns (repo-relative, posix) the rule applies to; empty = all.
    default_paths: tuple[str, ...] = ()
    #: When True, a suppression comment must carry a ``-- reason`` to count.
    requires_reason: bool = False

    def applies_to(self, relpath: str) -> bool:
        return not self.default_paths or match_any(relpath, self.default_paths)

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def diag(self, ctx: ModuleContext, node: ast.AST | None, message: str,
             *, line: int | None = None, col: int | None = None) -> Diagnostic:
        return Diagnostic(
            rule_id=self.id,
            family=self.family,
            path=ctx.relpath,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=col if col is not None else getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that runs once per lint invocation against the repo root."""

    def check_project(self, root) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        return ()


class WholeProgramRule(Rule):
    """A rule that runs once per ``--whole-program`` pass.

    Instead of a single :class:`ModuleContext` it receives the linked
    :class:`repro.analysis.project.ProjectModel` (symbol table + call
    graph) and may emit diagnostics against any module in the model.
    These rules are skipped entirely unless the engine is invoked with
    ``whole_program=True`` — building the model costs one full parse of
    ``src/repro``.
    """

    def check_program(self, model) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def check(self, ctx: ModuleContext) -> Iterable[Diagnostic]:
        return ()

    def pdiag(self, relpath: str, line: int, message: str, *,
              col: int = 0) -> Diagnostic:
        return Diagnostic(rule_id=self.id, family=self.family, path=relpath,
                          line=line, col=col, message=message,
                          severity=self.severity)


_RULES: dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and add a rule to the global registry."""
    inst = cls()
    if not inst.id or not inst.family:
        raise ValueError(f"rule {cls.__name__} must define id and family")
    if inst.id in _RULES:
        raise ValueError(
            f"duplicate rule id {inst.id!r}: {cls.__name__} collides with "
            f"already-registered {type(_RULES[inst.id]).__name__}; every "
            "rule id must be unique across the registry")
    _RULES[inst.id] = inst
    return cls


def all_rules() -> list[Rule]:
    """Registered rules sorted by id. Importing the rules package populates it."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    import repro.analysis.rules  # noqa: F401

    return _RULES[rule_id.upper()]


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield (function_node, ancestor_stack) for every def/async def."""
    stack: list[ast.AST] = []

    def _walk(node: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, list(stack)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                stack.append(child)
                yield from _walk(child)
                stack.pop()
            else:
                yield from _walk(child)

    yield from _walk(tree)


__all__ = [
    "Rule",
    "ProjectRule",
    "WholeProgramRule",
    "ModuleContext",
    "register",
    "all_rules",
    "get_rule",
    "dotted_name",
    "walk_functions",
]
