"""Configuration for the lint engine (``[tool.repro-lint]`` in pyproject.toml).

Example::

    [tool.repro-lint]
    exclude = ["tests/analysis/fixtures/**"]
    disable = []                  # rule ids or families, globally off

    [[tool.repro-lint.overrides]]
    paths = ["src/repro/transfer/**"]
    disable = ["DET"]             # path-scoped: sim clocks are fine here

Config loading degrades gracefully: no pyproject, no ``[tool.repro-lint]``
table, or a Python without :mod:`tomllib` (3.10) all yield the built-in
defaults, so the linter never hard-fails on configuration.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10: stdlib tomllib is 3.11+
    tomllib = None  # type: ignore[assignment]


def match_path(relpath: str, pattern: str) -> bool:
    """fnmatch with ``**`` behaving like "any subpath" (also zero dirs)."""
    if fnmatch.fnmatch(relpath, pattern):
        return True
    # "pkg/**" should also match direct children and the dir itself
    if pattern.endswith("/**"):
        base = pattern[:-3]
        return relpath == base or relpath.startswith(base + "/")
    return False


def match_any(relpath: str, patterns: list[str] | tuple[str, ...]) -> bool:
    return any(match_path(relpath, p) for p in patterns)


@dataclass
class Override:
    """Path-scoped rule adjustment."""

    paths: list[str]
    disable: list[str] = field(default_factory=list)
    select: list[str] = field(default_factory=list)

    def applies_to(self, relpath: str) -> bool:
        return match_any(relpath, self.paths)


@dataclass
class LintConfig:
    """Effective configuration after merging defaults with pyproject."""

    select: list[str] = field(default_factory=list)    # empty = all rules
    disable: list[str] = field(default_factory=list)
    exclude: list[str] = field(default_factory=list)
    overrides: list[Override] = field(default_factory=list)
    #: baseline file for whole-program findings, relative to the config dir
    baseline: str | None = None
    source: str = "<defaults>"

    def rule_enabled(self, rule_id: str, family: str, relpath: str | None = None) -> bool:
        def hits(ids: list[str]) -> bool:
            # a family is addressable by name ("determinism") or id prefix ("DET")
            up = {i.upper() for i in ids}
            return (rule_id.upper() in up or family.upper() in up
                    or rule_id.upper().split("-")[0] in up)

        if self.select and not hits(self.select):
            return False
        if hits(self.disable):
            return False
        if relpath is not None:
            for ov in self.overrides:
                if not ov.applies_to(relpath):
                    continue
                if ov.select and not hits(ov.select):
                    return False
                if hits(ov.disable):
                    return False
        return True

    def excluded(self, relpath: str) -> bool:
        return match_any(relpath, self.exclude)


def _coerce_str_list(value, where: str) -> list[str]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ValueError(f"[tool.repro-lint] {where} must be a list of strings")
    return list(value)


def parse_config(table: dict, source: str = "<inline>") -> LintConfig:
    """Build a LintConfig from an already-parsed ``[tool.repro-lint]`` table."""
    cfg = LintConfig(source=source)
    if "select" in table:
        cfg.select = _coerce_str_list(table["select"], "select")
    if "disable" in table:
        cfg.disable = _coerce_str_list(table["disable"], "disable")
    if "exclude" in table:
        cfg.exclude = _coerce_str_list(table["exclude"], "exclude")
    if "baseline" in table:
        if not isinstance(table["baseline"], str):
            raise ValueError("[tool.repro-lint] baseline must be a string path")
        cfg.baseline = table["baseline"]
    for i, raw in enumerate(table.get("overrides", [])):
        if not isinstance(raw, dict) or "paths" not in raw:
            raise ValueError(f"[tool.repro-lint] overrides[{i}] needs a 'paths' key")
        cfg.overrides.append(Override(
            paths=_coerce_str_list(raw["paths"], f"overrides[{i}].paths"),
            disable=_coerce_str_list(raw.get("disable", []), f"overrides[{i}].disable"),
            select=_coerce_str_list(raw.get("select", []), f"overrides[{i}].select"),
        ))
    return cfg


def load_config(pyproject: Path | None) -> LintConfig:
    """Load ``[tool.repro-lint]`` from a pyproject.toml, tolerating absence."""
    if pyproject is None or not pyproject.is_file() or tomllib is None:
        return LintConfig()
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return LintConfig()
    return parse_config(table, source=str(pyproject))


def find_pyproject(start: Path) -> Path | None:
    """Walk upward from ``start`` looking for a pyproject.toml."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for candidate in [cur, *cur.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


__all__ = [
    "LintConfig",
    "Override",
    "parse_config",
    "load_config",
    "find_pyproject",
    "match_path",
    "match_any",
]
